"""Length-framed JSON wire protocol of the network gateway.

A frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON.  Every payload sits under the process-wide versioned
envelope (:mod:`repro.envelope`): ``{"v": 1, ...}``.

Requests name an operation and (except ``ping``) a tenant::

    {"v": 1, "id": 7, "op": "query",  "tenant": "alpha", "specified": {"0": 3}}
    {"v": 1, "id": 8, "op": "insert", "tenant": "alpha", "record": [1, 2]}
    {"v": 1, "id": 9, "op": "batch",  "tenant": "alpha",
     "queries": [{"specified": {"0": 3}}, {"specified": {"1": 0}}]}
    {"v": 1, "id": 0, "op": "ping"}
    {"v": 1, "id": 1, "op": "stats",  "tenant": "alpha"}
    {"v": 1, "id": 2, "op": "obs"}
    {"v": 1, "id": 3, "op": "health"}

``health`` answers readiness/drain state without touching any tenant
service (a load-balancer probe); ``insert`` may carry an additive
``"idem": "<key>"`` field — a client-stamped idempotency key the
gateway dedupes in a bounded per-tenant window, so a retried write is
re-acknowledged at its original ``(bucket, write_version)`` instead of
being applied twice (the response then carries ``"deduped": true``).

``obs`` serves a live observability snapshot — the labeled metrics
registry plus the per-tenant SLO report (:mod:`repro.obs.slo`) — so a
client can watch error budgets over the same framed protocol it queries
through.

Requests may additionally carry **trace context**: an optional 64-bit
``trace`` id and optional ``parent_span`` id (:func:`trace_fields` /
:func:`parse_trace`).  The server resumes the trace around its
``gateway.request`` span, so one request tree spans both processes.
Both fields are additive — a ``{"v": 1}`` reader that ignores them
interprets the rest of the frame exactly as before, so the schema
version does not change.

Responses echo the request ``id`` and carry either a result or a coded
error::

    {"v": 1, "id": 7, "ok": true,  "result": {...}}
    {"v": 1, "id": 7, "ok": false,
     "error": {"code": "unknown_tenant", "message": "..."}}

Query results embed :meth:`~repro.service.frontend.ServiceResult.to_dict`
(the same versioned schema the ``--json`` CLI prints) augmented with the
record tuples themselves, so a remote client can rebuild a full
:class:`~repro.service.frontend.ServiceResult` and run the serial-replay
staleness verification without server cooperation.

:class:`FrameDecoder` is the incremental parser both ends use: it
tolerates arbitrarily torn frames (bytes arrive in any chunking) and
rejects oversized frames *from the header alone*
(:class:`~repro.errors.FrameTooLargeError`), before any body bytes are
buffered.
"""

from __future__ import annotations

import json
import socket
import struct
from collections.abc import Mapping

from repro.envelope import SCHEMA_VERSION, check_version, versioned
from repro.errors import FrameTooLargeError, ProtocolError
from repro.hashing.fields import FileSystem
from repro.query.partial_match import PartialMatchQuery
from repro.service.frontend import ServiceResult

__all__ = [
    "HEADER",
    "DEFAULT_MAX_FRAME_BYTES",
    "ERROR_CODES",
    "FrameDecoder",
    "encode_frame",
    "recv_frame",
    "request",
    "trace_fields",
    "parse_trace",
    "ok_response",
    "error_response",
    "query_payload",
    "parse_query",
    "result_payload",
    "result_from_payload",
    "check_request",
    "WIRE_VERSION",
]

#: Frame header: one big-endian unsigned 32-bit body length.
HEADER = struct.Struct(">I")

#: Default per-frame cap (1 MiB) — generous for batches, small enough that
#: a hostile length prefix cannot balloon server memory.
DEFAULT_MAX_FRAME_BYTES = 1 << 20

#: The coded failures a response may carry.  ``shed`` / ``rate_limited``
#: are the per-tenant admission outcomes (quota or token bucket);
#: ``draining`` means the gateway is shutting down gracefully and the
#: connection will close after this response.
ERROR_CODES = frozenset(
    {
        "bad_frame",
        "bad_version",
        "bad_request",
        "unknown_op",
        "unknown_tenant",
        "shed",
        "rate_limited",
        "busy",
        "draining",
        "internal",
    }
)


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def encode_frame(payload: Mapping) -> bytes:
    """Serialise one payload as a length-prefixed canonical JSON frame."""
    body = json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return HEADER.pack(len(body)) + body


class FrameDecoder:
    """Incremental frame parser with a bounded buffer.

    Feed it whatever bytes arrived; it returns every completed payload and
    keeps the torn remainder for the next feed.  The body length is
    checked against *max_frame_bytes* as soon as the 4 header bytes are
    available, so the decoder never buffers more than
    ``max_frame_bytes + len(remaining stream chunk)`` bytes.
    """

    def __init__(self, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES):
        if max_frame_bytes < 1:
            raise ProtocolError(
                f"max_frame_bytes must be >= 1, got {max_frame_bytes}"
            )
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()

    @property
    def buffered(self) -> int:
        """Bytes currently held for an incomplete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[dict]:
        """Absorb *data*; return the payloads of every completed frame.

        Raises :class:`~repro.errors.FrameTooLargeError` the moment a
        header declares a body beyond the cap and
        :class:`~repro.errors.ProtocolError` on undecodable JSON.  Either
        error poisons the stream — the connection should be closed.
        """
        self._buffer.extend(data)
        payloads: list[dict] = []
        while True:
            if len(self._buffer) < HEADER.size:
                return payloads
            (length,) = HEADER.unpack_from(self._buffer)
            if length > self.max_frame_bytes:
                raise FrameTooLargeError(length, self.max_frame_bytes)
            end = HEADER.size + length
            if len(self._buffer) < end:
                return payloads
            body = bytes(self._buffer[HEADER.size:end])
            del self._buffer[:end]
            try:
                payload = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise ProtocolError(f"undecodable frame body: {error}") from error
            if not isinstance(payload, dict):
                raise ProtocolError(
                    f"frame body is not a JSON object: {type(payload).__name__}"
                )
            payloads.append(payload)


def recv_frame(
    sock: socket.socket,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> dict | None:
    """Blocking read of exactly one frame; ``None`` on clean EOF.

    Client-side helper (the server uses :class:`FrameDecoder` on its recv
    loop).  EOF in the middle of a frame raises
    :class:`~repro.errors.ProtocolError`.
    """
    header = _recv_exact(sock, HEADER.size)
    if header is None:
        return None
    (length,) = HEADER.unpack(header)
    if length > max_frame_bytes:
        raise FrameTooLargeError(length, max_frame_bytes)
    body = _recv_exact(sock, length)
    if body is None:
        raise ProtocolError("connection closed inside a frame body")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable frame body: {error}") from error
    if not isinstance(payload, dict):
        raise ProtocolError("frame body is not a JSON object")
    return payload


def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
    """Read exactly *count* bytes; ``None`` on EOF before the first byte."""
    chunks = bytearray()
    while len(chunks) < count:
        chunk = sock.recv(count - len(chunks))
        if not chunk:
            return None if not chunks else _torn()
        chunks.extend(chunk)
    return bytes(chunks)


def _torn():
    raise ProtocolError("connection closed inside a frame")


# ----------------------------------------------------------------------
# Envelopes
# ----------------------------------------------------------------------
def request(
    op: str,
    *,
    request_id: int = 0,
    tenant: str | None = None,
    **body: object,
) -> dict:
    """Build one versioned request payload."""
    payload: dict = {"id": request_id, "op": op}
    if tenant is not None:
        payload["tenant"] = tenant
    payload.update(body)
    return versioned(payload)


def trace_fields(
    trace_id: int | None = None, parent_span: int | None = None
) -> dict:
    """The optional trace-context fields of a request, as extra body kwargs.

    >>> trace_fields(7, 3)
    {'trace': 7, 'parent_span': 3}
    >>> trace_fields(None, None)
    {}
    """
    fields: dict = {}
    if trace_id is not None:
        fields["trace"] = int(trace_id)
        if parent_span is not None:
            fields["parent_span"] = int(parent_span)
    return fields


def parse_trace(data: Mapping) -> tuple[int, int | None] | None:
    """Extract ``(trace_id, parent_span)`` from a request, if stamped.

    Returns ``None`` for context-less requests (the backward-compatible
    pre-trace wire shape); raises :class:`~repro.errors.ProtocolError`
    when the fields are present but malformed.
    """
    trace = data.get("trace")
    if trace is None:
        return None
    if not isinstance(trace, int) or isinstance(trace, bool):
        raise ProtocolError(f"trace id must be an integer, got {trace!r}")
    parent = data.get("parent_span")
    if parent is not None and (
        not isinstance(parent, int) or isinstance(parent, bool)
    ):
        raise ProtocolError(
            f"parent_span must be an integer or absent, got {parent!r}"
        )
    return trace, parent


def ok_response(request_id, result: Mapping) -> dict:
    return versioned({"id": request_id, "ok": True, "result": dict(result)})


def error_response(request_id, code: str, message: str) -> dict:
    if code not in ERROR_CODES:
        raise ProtocolError(f"unknown error code {code!r}")
    return versioned(
        {
            "id": request_id,
            "ok": False,
            "error": {"code": code, "message": message},
        }
    )


# ----------------------------------------------------------------------
# Query / result marshalling
# ----------------------------------------------------------------------
def query_payload(query: PartialMatchQuery) -> dict:
    """Wire shape of one query: specified fields keyed by stringed index
    (JSON objects cannot key on integers).

    Values are *hashed bucket coordinates* — the same space
    :meth:`PartialMatchQuery.from_dict` takes — not raw attribute
    values.  A client holding raw values hashes them first (the default
    :class:`~repro.hashing.multikey.MultiKeyHash` is deterministic, so
    both ends agree), exactly like
    :meth:`~repro.storage.parallel_file.PartitionedFile.query` does
    server-side."""
    return {
        "specified": {
            str(index): value for index, value in query.specified_items()
        }
    }


def parse_query(filesystem: FileSystem, body: Mapping) -> PartialMatchQuery:
    """Rebuild a query from its wire shape, validating against *filesystem*.

    Raises :class:`~repro.errors.ProtocolError` on malformed shapes; field
    domain violations surface as the underlying
    :class:`~repro.errors.QueryError`.
    """
    specified = body.get("specified")
    if not isinstance(specified, Mapping):
        raise ProtocolError(
            f"query payload needs a 'specified' object, got {specified!r}"
        )
    parsed: dict[int, int] = {}
    for key, value in specified.items():
        try:
            index = int(key)
        except (TypeError, ValueError):
            raise ProtocolError(
                f"field index {key!r} is not an integer"
            ) from None
        if not isinstance(value, int) or isinstance(value, bool):
            raise ProtocolError(
                f"field {index} value {value!r} is not an integer"
            )
        parsed[index] = value
    return PartialMatchQuery.from_dict(filesystem, parsed)


def result_payload(
    result: ServiceResult, include_records: bool = True
) -> dict:
    """One served result on the wire: ``to_dict()`` plus the records.

    ``records`` (the count) keeps its :meth:`ServiceResult.to_dict`
    meaning; the tuples ride separately under ``record_values`` so the
    client can rebuild a verifiable :class:`ServiceResult`.
    """
    payload = result.to_dict()
    if include_records:
        payload["record_values"] = [list(record) for record in result.records]
    return payload


def result_from_payload(
    query: PartialMatchQuery, payload: Mapping
) -> ServiceResult:
    """Client-side reconstruction of a :class:`ServiceResult`.

    The rebuilt result carries everything
    :meth:`~repro.service.loadgen.LoadReport.verify` needs: status,
    record tuples, the write version and the submit version.
    """
    check_version(payload, where="service result")
    return ServiceResult(
        status=str(payload.get("status", "")),
        query=query,
        records=[
            tuple(record) for record in payload.get("record_values", [])
        ],
        write_version=int(payload.get("write_version", -1)),
        submit_version=int(payload.get("submit_version", 0)),
        coalesced=bool(payload.get("coalesced", False)),
        batched=bool(payload.get("batched", False)),
        cache_hit=str(payload.get("cache_hit", "")),
    )


def check_request(payload: Mapping) -> dict:
    """Envelope-check one inbound request; raises ProtocolError otherwise."""
    data = check_version(payload, where="request")
    op = data.get("op")
    if not isinstance(op, str):
        raise ProtocolError(f"request op must be a string, got {op!r}")
    return data


#: Re-exported for symmetry with the envelope module.
WIRE_VERSION = SCHEMA_VERSION
