"""A gateway client that survives the wire: retry, reconnect, breaker.

:class:`ResilientGatewayClient` wraps :class:`~repro.gateway.client.GatewayClient`
with the client side of the chaos story:

* **bounded retry** — transport failures (timeout, reset, broken frame
  stream) retry under a :class:`~repro.runtime.retry.RetryPolicy`'s
  capped exponential backoff, reconnecting first so each attempt rides a
  fresh connection (and, under the chaos proxy, a fresh fault epoch);
* **a per-client circuit breaker** — consecutive transport failures trip
  the breaker open and further calls fail fast with
  :class:`~repro.errors.CircuitOpenError` until a cooldown admits one
  half-open probe;
* **idempotency keys** — every :meth:`insert` is stamped with a
  client-generated key, so a retry whose original actually committed is
  deduped server-side and re-acknowledged instead of applied twice.

Coded server responses (:class:`GatewayRequestError`) are *not* retried
and count as breaker successes: the server answered — the wire works —
the request itself was bad or shed.

Every logical call runs under one ``client.request`` span that all retry
attempts share, so ``obs tail --trace-id`` shows a retried request as a
single trace with ``chaos.retry`` / ``chaos.fault`` events and the
server-side ``gateway.request`` spans of each attempt underneath.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections.abc import Mapping, Sequence

from repro.errors import (
    CircuitOpenError,
    ConfigurationError,
    ConnectionLostError,
    GatewayTimeoutError,
    ProtocolError,
)
from repro.gateway import protocol
from repro.gateway.client import GatewayClient, GatewayRequestError
from repro.obs import telemetry, trace_span
from repro.runtime.retry import RetryPolicy
from repro.util.numbers import mix64

__all__ = ["CircuitBreaker", "ResilientGatewayClient"]

#: Errors that mean "the transport failed" — retryable, breaker-counted.
TRANSPORT_ERRORS = (GatewayTimeoutError, ConnectionLostError, ProtocolError)

#: Salt deriving each reconnect epoch's trace-seed stream.
_EPOCH_TRACE_SALT = 0x9E3779B97F4A7C15


class CircuitBreaker:
    """Classic closed → open → half-open breaker over consecutive failures.

    Pure state machine: the *clock* is injectable, so tests drive it with
    a manual clock and the chaos harness can keep it effectively disabled
    (a huge threshold) where wall-clock cooldowns would break run
    determinism.

    >>> clock = iter([0.0, 1.0, 2.0]).__next__
    >>> breaker = CircuitBreaker(failure_threshold=1, cooldown_s=10.0,
    ...                          clock=clock)
    >>> breaker.record_failure(); breaker.state
    'open'
    >>> breaker.allow()
    False
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_s: float = 0.25,
        clock=time.monotonic,
    ):
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_s <= 0:
            raise ConfigurationError(
                f"cooldown_s must be positive, got {cooldown_s}"
            )
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self.trips = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May a call proceed right now?

        In the open state the first caller after the cooldown is admitted
        as the half-open probe; everyone else keeps failing fast until
        that probe reports back.
        """
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN:
                if self._clock() - self._opened_at >= self.cooldown_s:
                    self._state = self.HALF_OPEN
                    return True
                return False
            # Half-open: the probe is already in flight.
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = self.CLOSED
            self._failures = 0

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if (
                self._state == self.HALF_OPEN
                or self._failures >= self.failure_threshold
            ):
                if self._state != self.OPEN:
                    self.trips += 1
                self._state = self.OPEN
                self._opened_at = self._clock()


class ResilientGatewayClient:
    """Retrying, reconnecting, breaker-guarded gateway client.

    Construction is lazy — no socket is opened until the first call — so
    a client can be built while its gateway is still booting.  *tenant*
    is required: idempotency and the breaker are per-namespace concerns.

    >>> client = ResilientGatewayClient(host, port, tenant="alpha",
    ...                                 retry=RetryPolicy(max_attempts=5),
    ...                                 timeout_s=2.0)   # doctest: +SKIP
    >>> client.insert((1, 2))                            # doctest: +SKIP
    """

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str,
        fields: Sequence[int] | None = None,
        devices: int | None = None,
        retry: RetryPolicy | None = None,
        timeout_s: float = 5.0,
        breaker: CircuitBreaker | None = None,
        trace_seed: int | None = None,
        idem_prefix: str | None = None,
        max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES,
    ):
        if not tenant:
            raise ConfigurationError("resilient client needs a tenant name")
        self.host = host
        self.port = port
        self.tenant = tenant
        self.fields = tuple(fields) if fields is not None else None
        self.devices = devices
        self.retry = retry or RetryPolicy(
            max_attempts=4, base_delay_ms=5.0, max_delay_ms=100.0
        )
        self.timeout_s = timeout_s
        self.breaker = breaker or CircuitBreaker()
        self.trace_seed = (
            trace_seed
            if trace_seed is not None
            else int.from_bytes(os.urandom(8), "big")
        )
        self.idem_prefix = (
            idem_prefix
            if idem_prefix is not None
            else f"rgc-{self.trace_seed & 0xFFFFFFFF:08x}"
        )
        self.max_frame_bytes = max_frame_bytes
        self._client: GatewayClient | None = None
        self._epoch = 0
        self._writes = itertools.count()
        #: Attempts the most recent successful call took (1 = no retry).
        self.last_attempts = 0
        self.retries = 0
        self.reconnects = 0
        #: Acknowledgements the server served from its dedup window.
        self.deduped = 0

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def _connect(self) -> GatewayClient:
        if self._client is None:
            epoch = self._epoch
            self._epoch += 1
            if epoch:
                self.reconnects += 1
            self._client = GatewayClient(
                self.host,
                self.port,
                tenant=self.tenant,
                fields=self.fields,
                devices=self.devices,
                timeout_s=self.timeout_s,
                max_frame_bytes=self.max_frame_bytes,
                # Each epoch gets its own derived seed so trace ids stay
                # deterministic per (client seed, reconnect count).
                trace_seed=mix64(
                    self.trace_seed ^ ((epoch + 1) * _EPOCH_TRACE_SALT)
                ),
            )
        return self._client

    def _disconnect(self) -> None:
        if self._client is not None:
            self._client.close()
            self._client = None

    @property
    def connected(self) -> bool:
        return self._client is not None

    # ------------------------------------------------------------------
    # The retry loop
    # ------------------------------------------------------------------
    def _call(self, op: str, action):
        """Run *action(client)* with reconnect-retry under the breaker.

        The whole loop lives inside one ``client.request`` span, so every
        attempt (client-side events and the server's remote spans alike)
        lands in a single trace.
        """
        metrics = telemetry().metrics
        labels = {"tenant": self.tenant}
        with trace_span("client.request", op=op, tenant=self.tenant) as span:
            last_error: Exception | None = None
            for attempt in range(1, self.retry.max_attempts + 1):
                if not self.breaker.allow():
                    metrics.add("chaos.breaker_open", labels=labels)
                    span.set_attr("status", "breaker_open")
                    raise CircuitOpenError(
                        f"circuit breaker open for tenant {self.tenant!r} "
                        f"after {self.breaker.failure_threshold} consecutive "
                        "transport failures"
                    ) from last_error
                if attempt > 1:
                    delay_ms = self.retry.delay_before(attempt)
                    if delay_ms:
                        time.sleep(delay_ms / 1000.0)
                    self.retries += 1
                    metrics.add("gateway.retries", labels=labels)
                    span.add_event(
                        "chaos.retry", attempt=attempt, op=op
                    )
                try:
                    client = self._connect()
                    result = action(client)
                except GatewayRequestError:
                    # The server answered: the wire works.  Coded errors
                    # are the caller's problem, not the transport's.
                    self.breaker.record_success()
                    span.set_attr("status", "request_error")
                    raise
                except TRANSPORT_ERRORS as error:
                    last_error = error
                    self.breaker.record_failure()
                    metrics.add("chaos.transport_errors", labels=labels)
                    span.add_event(
                        "chaos.fault",
                        attempt=attempt,
                        kind=type(error).__name__,
                        detail=str(error),
                    )
                    self._disconnect()
                    continue
                self.breaker.record_success()
                self.last_attempts = attempt
                span.set_attr("status", "ok")
                span.set_attr("attempts", attempt)
                return result
            span.set_attr("status", "exhausted")
            metrics.add("chaos.retries_exhausted", labels=labels)
            raise last_error

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def ping(self) -> bool:
        return self._call("ping", lambda client: client.ping())

    def health(self) -> dict:
        return self._call("health", lambda client: client.health())

    def stats(self) -> dict:
        return self._call("stats", lambda client: client.stats())

    def obs(self) -> dict:
        return self._call("obs", lambda client: client.obs())

    def insert(self, record: Sequence[object]) -> tuple[tuple, int]:
        """Exactly-once insert: returns ``(bucket, write_version)``.

        The key is allocated *before* the retry loop, so every attempt of
        this logical write carries the same key — a retry whose original
        actually committed comes back ``deduped`` with the original
        position instead of landing the record twice.
        """
        idem = f"{self.idem_prefix}:{next(self._writes)}"
        body = {"record": list(record), "idem": idem}

        def do_insert(client: GatewayClient) -> dict:
            return client._request("insert", **body)

        result = self._call("insert", do_insert)
        if result.get("deduped"):
            self.deduped += 1
        return tuple(result["bucket"]), int(result["write_version"])

    def query(
        self,
        specified: Mapping[int, int],
        deadline_ms: float | None = None,
    ):
        return self._call(
            "query", lambda client: client.query(specified, deadline_ms)
        )

    def batch(
        self,
        queries: Sequence[Mapping[int, int]],
        deadline_ms: float | None = None,
    ):
        return self._call(
            "batch", lambda client: client.batch(queries, deadline_ms)
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        self._disconnect()

    def __enter__(self) -> "ResilientGatewayClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
