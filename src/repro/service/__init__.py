"""Concurrent query-serving front end.

The paper's declustering only pays off when many requests actually hit
the ``M`` devices at once; this package is the tier that takes that
traffic.  It fronts a :class:`~repro.storage.parallel_file.PartitionedFile`
with:

* :class:`QueryService` (:mod:`repro.service.frontend`) — thread-safe
  execution with in-flight request coalescing over the query algebra and
  the write-aware result cache.  The service API is *futures-first*:
  ``submit`` / ``submit_many`` / ``submit_insert`` return
  :class:`concurrent.futures.Future` objects, and ``execute`` is the
  blocking wrapper.  The network gateway (:mod:`repro.gateway`) consumes
  only the futures surface,
* :class:`AdmissionController` (:mod:`repro.service.admission`) — bounded
  concurrency and queueing with explicit shed/timeout outcomes, reusing
  :class:`~repro.runtime.RetryPolicy` backoff semantics, and
* :class:`LoadGenerator` (:mod:`repro.service.loadgen`) — a deterministic
  closed-loop driver whose :class:`LoadReport` measures throughput and
  latency percentiles and *proves* zero stale reads by serial replay.

``python -m repro serve`` drives the whole tier from the command line
(``python -m repro gateway`` adds the multi-tenant socket front end);
every interaction lands in the ``service.*`` counters and histograms of
the process telemetry registry.
"""

from repro.service.admission import AdmissionController, AdmissionDecision
from repro.service.frontend import QueryService, ServiceConfig, ServiceResult
from repro.service.loadgen import (
    LoadGenerator,
    LoadReport,
    LoadSpec,
    RequestRecord,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "QueryService",
    "ServiceConfig",
    "ServiceResult",
    "LoadGenerator",
    "LoadReport",
    "LoadSpec",
    "RequestRecord",
]
