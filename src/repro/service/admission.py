"""Admission control: bounded concurrency, bounded queue, explicit shed.

The serving tier must degrade *explicitly* under overload: a request either
runs, waits in a bounded queue, or is turned away with a shed/timeout
result — never queued without bound.  :class:`AdmissionController` is the
gate: at most ``max_concurrent`` requests hold a service permit, at most
``queue_limit`` more wait for one, and a request that finds the queue full
retries admission with the capped exponential backoff of a
:class:`~repro.runtime.RetryPolicy` (the same semantics the fault runtime
applies to device reads) before giving up.  A per-request deadline bounds
the whole wait; exceeding it yields a ``timeout`` outcome rather than an
exception.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.runtime.retry import RetryPolicy

__all__ = ["AdmissionController", "AdmissionDecision"]

#: Outcome names — also the suffixes of the ``service.admission.*`` counters.
ADMITTED = "admitted"
SHED = "shed"
TIMEOUT = "timeout"


@dataclass
class AdmissionDecision:
    """How one request fared at the gate."""

    outcome: str  # "admitted" | "shed" | "timeout"
    queue_ms: float = 0.0
    attempts: int = 1

    @property
    def admitted(self) -> bool:
        return self.outcome == ADMITTED


class AdmissionController:
    """A permit gate with a bounded wait queue and retry-with-backoff.

    ``admit`` blocks (up to the deadline) while the queue has room, retries
    per *retry* when the queue itself is full, and returns an explicit
    :class:`AdmissionDecision` either way.  ``release`` returns a permit;
    always pair them (``try/finally``).
    """

    def __init__(
        self,
        max_concurrent: int = 8,
        queue_limit: int = 32,
        retry: RetryPolicy | None = None,
    ):
        if max_concurrent < 1:
            raise ConfigurationError(
                f"max_concurrent must be >= 1, got {max_concurrent}"
            )
        if queue_limit < 0:
            raise ConfigurationError(
                f"queue_limit must be >= 0, got {queue_limit}"
            )
        self.max_concurrent = max_concurrent
        self.queue_limit = queue_limit
        self.retry = retry or RetryPolicy.none()
        self._condition = threading.Condition()
        self._in_service = 0
        self._queued = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def in_service(self) -> int:
        with self._condition:
            return self._in_service

    @property
    def queued(self) -> int:
        with self._condition:
            return self._queued

    # ------------------------------------------------------------------
    # The gate
    # ------------------------------------------------------------------
    def admit(self, deadline_ms: float | None = None) -> AdmissionDecision:
        """Try to obtain a service permit.

        Waits in the bounded queue while a permit is busy; when the queue is
        full, backs off and re-tries per the retry policy.  *deadline_ms*
        bounds the total wall-clock wait (``None`` = wait indefinitely in
        the queue, but still shed on a persistently full queue).
        """
        start = time.perf_counter()
        outcome = SHED
        attempts = 0
        for attempt in range(1, self.retry.max_attempts + 1):
            attempts = attempt
            backoff_s = self.retry.delay_before(attempt) / 1000.0
            if backoff_s:
                if self._past_deadline(start, deadline_ms, after_s=backoff_s):
                    outcome = TIMEOUT
                    break
                time.sleep(backoff_s)
            outcome = self._admit_once(start, deadline_ms)
            if outcome != SHED:
                break
        queue_ms = (time.perf_counter() - start) * 1000.0
        return AdmissionDecision(outcome, queue_ms=queue_ms, attempts=attempts)

    def release(self) -> None:
        """Return a permit and wake the queued waiters.

        Wakes all of them rather than one: a single notify can land on a
        waiter that is about to time out, stranding the permit while other
        waiters sleep.  Queues here are small, so the herd is too.
        """
        with self._condition:
            self._in_service -= 1
            self._condition.notify_all()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _admit_once(self, start: float, deadline_ms: float | None) -> str:
        """One pass through the gate: permit, queue, or full."""
        with self._condition:
            if self._in_service < self.max_concurrent:
                self._in_service += 1
                return ADMITTED
            if self._queued >= self.queue_limit:
                return SHED
            self._queued += 1
            try:
                while self._in_service >= self.max_concurrent:
                    remaining = self._remaining_s(start, deadline_ms)
                    if remaining is not None and remaining <= 0:
                        return TIMEOUT
                    if not self._condition.wait(remaining):
                        return TIMEOUT
                self._in_service += 1
                return ADMITTED
            finally:
                self._queued -= 1

    @staticmethod
    def _remaining_s(start: float, deadline_ms: float | None) -> float | None:
        if deadline_ms is None:
            return None
        return deadline_ms / 1000.0 - (time.perf_counter() - start)

    @classmethod
    def _past_deadline(
        cls, start: float, deadline_ms: float | None, after_s: float = 0.0
    ) -> bool:
        remaining = cls._remaining_s(start, deadline_ms)
        return remaining is not None and remaining <= after_s
