"""The concurrent query-serving front end.

:class:`QueryService` is the layer that turns a partitioned file plus an
executor into something that can take traffic from many threads at once:

* **admission control** — a bounded permit gate with an explicit shed
  path (:mod:`repro.service.admission`), so saturation produces
  ``ServiceResult(status="shed")`` instead of an unbounded queue,
* **request coalescing** — concurrent identical (or subsumed) queries
  share one device round-trip: the first becomes the *leader* and
  fetches, the rest wait on its in-flight entry and filter its
  bucket-grouped result,
* **a write-aware result cache** — the thread-safe
  :class:`~repro.storage.cache.CachedExecutor`, invalidated selectively
  by the file's write notifications, and
* **a futures-first API** — :meth:`QueryService.submit` /
  :meth:`QueryService.submit_many` / :meth:`QueryService.submit_insert`
  return :class:`concurrent.futures.Future` objects (the shape the
  network gateway consumes exclusively); :meth:`QueryService.execute` is
  the blocking wrapper over the same code path, and
* **linearisable reads** — every result carries the file
  :attr:`~repro.storage.parallel_file.WriteNotifier.write_version` it
  reflects, so a request log can be replayed serially and compared
  byte-for-byte (the zero-stale-reads acceptance check, implemented in
  :meth:`repro.service.loadgen.LoadReport.verify`).

Coalescing never serves stale data: a follower only joins a flight whose
snapshot version still equals the file's current write version, so any
write that completed before the follower arrived forces a fresh read.
Everything is observable through ``service.*`` counters and histograms in
the process telemetry registry.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.envelope import SCHEMA_VERSION
from repro.errors import ConfigurationError
from repro.hashing.fields import Bucket
from repro.obs import telemetry, trace_span
from repro.query.algebra import subsumes
from repro.query.partial_match import PartialMatchQuery
from repro.runtime.retry import RetryPolicy
from repro.service.admission import AdmissionController
from repro.storage.cache import CachedExecutor
from repro.storage.parallel_file import PartitionedFile

__all__ = ["ServiceConfig", "ServiceResult", "QueryService"]

#: Result statuses.
OK = "ok"
SHED = "shed"
TIMEOUT = "timeout"


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of one serving front end.

    ``cache_capacity=None`` disables the result cache (every leader fetch
    hits the devices); ``coalesce=False`` disables flight sharing.  The
    ``admission_retry`` policy governs how a request behaves against a
    full queue — its ``max_attempts``/backoff are the shed semantics, the
    same arithmetic the fault runtime applies to device reads.
    """

    max_concurrent: int = 8
    queue_limit: int = 32
    deadline_ms: float | None = None
    admission_retry: RetryPolicy = field(default_factory=RetryPolicy.none)
    cache_capacity: int | None = 64
    coalesce: bool = True
    #: When set, admitted reads drain into micro-batches of at most this
    #: many queries, planned and executed in one array pass through the
    #: batch engine (:class:`~repro.engine.batch.BatchEngine`) instead of
    #: one device round-trip each.  ``None`` keeps the per-query path.
    batch_max_size: int | None = None
    #: How long a batch leader waits for followers before executing a
    #: partial batch.  Zero means "whatever arrived in the same instant".
    batch_window_ms: float = 2.0
    #: Worker threads behind the futures surface (:meth:`QueryService.submit`).
    #: ``None`` sizes the pool to ``max_concurrent + queue_limit`` so the
    #: pool itself never narrows what admission control would admit or
    #: queue; submits beyond that wait in the pool (extra backpressure)
    #: rather than being shed.  Blocking :meth:`QueryService.execute`
    #: callers never touch the pool.
    submit_workers: int | None = None

    def validate(self) -> "ServiceConfig":
        """Fail fast on impossible knob values.

        ``QueryService`` runs this at construction; ``make_gateway`` runs
        it per tenant up front, so a bad serving default is rejected when
        the gateway is built rather than surfacing as per-request wire
        errors once the tenant's lazy service is first touched.
        """
        if self.max_concurrent < 1:
            raise ConfigurationError(
                f"max_concurrent must be >= 1, got {self.max_concurrent}"
            )
        if self.queue_limit < 0:
            raise ConfigurationError(
                f"queue_limit must be >= 0, got {self.queue_limit}"
            )
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ConfigurationError(
                f"deadline_ms must be positive, got {self.deadline_ms}"
            )
        if self.batch_max_size is not None and self.batch_max_size < 1:
            raise ConfigurationError(
                f"batch_max_size must be >= 1, got {self.batch_max_size}"
            )
        if self.batch_window_ms < 0:
            raise ConfigurationError(
                f"batch_window_ms must be >= 0, got {self.batch_window_ms}"
            )
        if self.submit_workers is not None and self.submit_workers < 1:
            raise ConfigurationError(
                f"submit_workers must be >= 1, got {self.submit_workers}"
            )
        return self


@dataclass
class ServiceResult:
    """Outcome of one request against the serving front end."""

    status: str  # "ok" | "shed" | "timeout"
    query: PartialMatchQuery | None = None
    records: list[object] = field(default_factory=list)
    #: File write version the records reflect (the read's linearisation
    #: point); -1 for non-ok outcomes.
    write_version: int = -1
    #: File write version when the request entered the service — the floor
    #: the staleness verification measures against.
    submit_version: int = 0
    #: Did this request share another request's device round-trip?
    coalesced: bool = False
    #: Was this request executed as part of an engine micro-batch?
    batched: bool = False
    #: Cache provenance: "exact" | "subsumption" | "miss" | "" (uncached
    #: leader fetch or non-ok outcome).
    cache_hit: str = ""
    queue_ms: float = 0.0
    total_ms: float = 0.0
    admission_attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.status == OK

    def to_dict(self) -> dict:
        """JSON-ready summary under the process-wide versioned envelope.

        The same ``{"v": 1, ...}`` schema the gateway wire protocol ships
        per request (there augmented with the records themselves).
        """
        return {
            "v": SCHEMA_VERSION,
            "status": self.status,
            "query": self.query.describe() if self.query else None,
            "records": len(self.records),
            "write_version": self.write_version,
            "submit_version": self.submit_version,
            "coalesced": self.coalesced,
            "batched": self.batched,
            "cache_hit": self.cache_hit,
            "queue_ms": round(self.queue_ms, 6),
            "total_ms": round(self.total_ms, 6),
            "admission_attempts": self.admission_attempts,
        }


class _Flight:
    """One in-flight device round-trip that followers may join."""

    def __init__(self, query: PartialMatchQuery, start_version: int):
        self.query = query
        self.start_version = start_version
        self._done = threading.Event()
        self.buckets: dict[Bucket, tuple[object, ...]] | None = None
        self.version: int = -1
        self.error: BaseException | None = None
        #: The leader's trace position, so followers can link their spans
        #: to the request that actually did the device round-trip.
        self.leader_context = None

    def resolve(
        self, buckets: dict[Bucket, tuple[object, ...]], version: int
    ) -> None:
        self.buckets = buckets
        self.version = version
        self._done.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self._done.set()

    def wait(self, timeout_s: float | None) -> bool:
        return self._done.wait(timeout_s)


class _BatchSlot:
    """One request waiting for its micro-batch to execute."""

    __slots__ = (
        "query",
        "buckets",
        "version",
        "hit",
        "error",
        "size",
        "leader_context",
        "_done",
    )

    def __init__(self, query: PartialMatchQuery):
        self.query = query
        self.buckets: dict[Bucket, tuple[object, ...]] | None = None
        self.version: int = -1
        self.hit: str = ""
        self.size: int = 0
        self.leader_context = None
        self.error: BaseException | None = None
        self._done = threading.Event()

    def resolve(
        self,
        buckets: dict[Bucket, tuple[object, ...]],
        version: int,
        hit: str,
        size: int,
    ) -> None:
        self.buckets = buckets
        self.version = version
        self.hit = hit
        self.size = size
        self._done.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self._done.set()

    def wait(self, timeout_s: float | None) -> bool:
        return self._done.wait(timeout_s)


class _MicroBatcher:
    """Drains concurrent admitted reads into engine-sized micro-batches.

    The first request to arrive while no batch is forming becomes the
    *leader*: it waits up to ``batch_window_ms`` for followers (waking
    early the moment ``batch_max_size`` queries have gathered), then
    executes the whole batch in one array pass and resolves every slot.
    Followers just park on their slot.  Unlike coalescing, the queries
    need not overlap at all — the engine dedupes whatever sharing exists.
    """

    def __init__(self, service: "QueryService"):
        self._service = service
        self._cond = threading.Condition(threading.Lock())
        self._pending: list[_BatchSlot] = []
        self._leader_active = False

    def submit(self, query: PartialMatchQuery) -> tuple[_BatchSlot, bool]:
        """Enqueue a request; returns its slot and whether to lead."""
        slot = _BatchSlot(query)
        with self._cond:
            self._pending.append(slot)
            leader = not self._leader_active
            if leader:
                self._leader_active = True
            max_size = self._service.config.batch_max_size
            if max_size is not None and len(self._pending) >= max_size:
                self._cond.notify_all()
        return slot, leader

    def run_leader(self) -> None:
        """Collect the window's arrivals, execute once, resolve all slots."""
        config = self._service.config
        window_s = max(0.0, config.batch_window_ms) / 1000.0
        cutoff = time.perf_counter() + window_s
        with self._cond:
            while (
                config.batch_max_size is None
                or len(self._pending) < config.batch_max_size
            ):
                remaining = cutoff - time.perf_counter()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            max_size = config.batch_max_size or len(self._pending)
            batch = self._pending[:max_size]
            self._pending = self._pending[max_size:]
            # Overflow arrivals already saw an active leader, so none of
            # them will self-promote: this thread stays leader for them.
            overflow = bool(self._pending)
            self._leader_active = overflow
        leader_context = telemetry().tracer.current_context()
        try:
            try:
                resolved = self._service._execute_batch_queries(
                    [slot.query for slot in batch]
                )
            except BaseException as error:
                for slot in batch:
                    slot.fail(error)
                raise
            for slot, (buckets, version, hit) in zip(batch, resolved):
                slot.leader_context = leader_context
                slot.resolve(buckets, version, hit, len(batch))
        finally:
            if overflow:
                self.run_leader()


class QueryService:
    """Thread-safe serving layer over a :class:`PartitionedFile`.

    >>> from repro import FileSystem, FXDistribution
    >>> fs = FileSystem.of(4, 4, m=4)
    >>> pf = PartitionedFile(FXDistribution(fs))
    >>> service = QueryService(pf)
    >>> __ = service.insert((1, 2))
    >>> result = service.execute(pf.query({0: 1}))
    >>> result.status, len(result.records)
    ('ok', 1)
    """

    def __init__(
        self,
        partitioned_file: PartitionedFile,
        config: ServiceConfig | None = None,
    ):
        self.file = partitioned_file
        self.config = (config or ServiceConfig()).validate()
        self.admission = AdmissionController(
            max_concurrent=self.config.max_concurrent,
            queue_limit=self.config.queue_limit,
            retry=self.config.admission_retry,
        )
        self.cache = (
            CachedExecutor(partitioned_file, capacity=self.config.cache_capacity)
            if self.config.cache_capacity is not None
            else None
        )
        self._inflight: dict[PartialMatchQuery, _Flight] = {}
        self._inflight_lock = threading.Lock()
        self._batcher = (
            _MicroBatcher(self)
            if self.config.batch_max_size is not None
            else None
        )
        self._engine = None
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        #: Optional :class:`~repro.durability.wal.WriteAheadLog` writes are
        #: framed into *before* they touch the file (the gateway's
        #: crash-recovery path attaches one per tenant).  ``None`` keeps
        #: the in-memory-only write path.
        self.wal = None

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def insert(self, record, wal_meta=None) -> tuple[Bucket, int]:
        """Insert through the serving layer.

        Returns ``(bucket, write_version)`` — the version is the record's
        position in the global write order, which is what the serial-replay
        verification keys on.  The version comes from the file's atomic
        :meth:`~repro.storage.parallel_file.PartitionedFile.insert_versioned`;
        reading ``file.write_version`` after the insert would attribute a
        concurrent writer's version to this record.

        With a :attr:`wal` attached, the entry is framed into the log
        under the file's mutation lock immediately before the apply, so
        WAL order equals write-version order and entry ``k`` always
        describes version ``k`` — the identity crash recovery replays by.
        *wal_meta* annotates that entry (e.g. an idempotency key).
        """
        wal = self.wal
        if wal is None:
            bucket, version = self.file.insert_versioned(record)
        else:
            # The mutation lock is an RLock, so the nested
            # insert_versioned acquisition below is reentrant.
            with self.file.read_locked():
                wal.append_insert(tuple(record), wal_meta)
                bucket, version = self.file.insert_versioned(record)
        telemetry().metrics.add("service.writes")
        return bucket, version

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def execute(
        self,
        query: PartialMatchQuery,
        deadline_ms: float | None = None,
    ) -> ServiceResult:
        """Serve one partial match query, never raising for overload.

        The blocking wrapper over the futures surface: semantically
        ``submit(query).result()``, but run inline in the caller's thread
        so synchronous callers pay no pool handoff.  *deadline_ms*
        overrides the config default for this request.
        """
        start = time.perf_counter()
        deadline_ms = (
            deadline_ms if deadline_ms is not None else self.config.deadline_ms
        )
        metrics = telemetry().metrics
        metrics.add("service.requests")
        submit_version = self.file.write_version

        decision = self.admission.admit(deadline_ms)
        if not decision.admitted:
            metrics.add(f"service.{decision.outcome}")
            result = ServiceResult(
                status=decision.outcome,
                query=query,
                submit_version=submit_version,
                queue_ms=decision.queue_ms,
                total_ms=(time.perf_counter() - start) * 1000.0,
                admission_attempts=decision.attempts,
            )
            self._observe(metrics, result)
            return result
        try:
            with trace_span(
                "service.request", query=query.describe()
            ) as span:
                result = self._serve(query, start, deadline_ms)
                result.submit_version = submit_version
                result.queue_ms = decision.queue_ms
                result.admission_attempts = decision.attempts
                span.set_attr("status", result.status)
                span.set_attr("coalesced", result.coalesced)
                if result.cache_hit:
                    span.set_attr("cache_hit", result.cache_hit)
        finally:
            self.admission.release()
        result.total_ms = (time.perf_counter() - start) * 1000.0
        if result.ok:
            metrics.add("service.served")
        else:
            metrics.add(f"service.{result.status}")
        self._observe(metrics, result)
        return result

    def search(self, specified, deadline_ms: float | None = None) -> ServiceResult:
        """Convenience: hash raw attribute values and execute."""
        return self.execute(self.file.query(specified), deadline_ms=deadline_ms)

    # ------------------------------------------------------------------
    # Futures surface
    # ------------------------------------------------------------------
    # The coalescing machinery has always been future-shaped internally
    # (a follower parks on the leader's in-flight entry); ``submit`` makes
    # that shape public.  It is the primary service API: the network
    # gateway consumes *only* these methods, and :meth:`execute` /
    # :meth:`execute_many` are the blocking wrappers over the same code
    # path (run inline in the caller's thread, so synchronous callers pay
    # no handoff).
    def submit(
        self,
        query: PartialMatchQuery,
        deadline_ms: float | None = None,
    ) -> "Future[ServiceResult]":
        """Serve *query* asynchronously; returns a resolved-on-completion
        :class:`~concurrent.futures.Future` of the :class:`ServiceResult`.

        The future never carries an overload exception — shed/timeout are
        *results* exactly as for :meth:`execute`; only genuine serving
        failures (device faults escaping the runtime, cancelled flights)
        surface as the future's exception.  Await-friendly: wrap with
        :func:`asyncio.wrap_future` to consume from an event loop.
        """
        return self._submit_traced(
            self.execute, query, deadline_ms=deadline_ms
        )

    def submit_many(
        self,
        queries: list[PartialMatchQuery],
        deadline_ms: float | None = None,
    ) -> "Future[list[ServiceResult]]":
        """Asynchronous :meth:`execute_many`: one engine micro-batch, one
        admission permit, one future resolving to the per-query results."""
        return self._submit_traced(
            self.execute_many, queries, deadline_ms=deadline_ms
        )

    def submit_insert(self, record, wal_meta=None) -> "Future[tuple[Bucket, int]]":
        """Asynchronous :meth:`insert`; resolves to ``(bucket, version)``."""
        return self._submit_traced(self.insert, record, wal_meta=wal_meta)

    def _submit_traced(self, fn, *args, **kwargs) -> "Future":
        """Pool submit that carries the caller's trace context along.

        :class:`contextvars.ContextVar` state does not follow work into
        pool threads, so the caller's trace position (its live span, or a
        remote context the gateway activated) is captured here — in the
        submitting thread — and re-activated around the pooled call.  The
        spans the work opens then parent under the submitting request
        instead of starting orphan traces.
        """
        tracer = telemetry().tracer
        context = tracer.current_context()
        pool = self._submit_pool()
        if context is None:
            return pool.submit(fn, *args, **kwargs)

        def run():
            with tracer.activate(context):
                return fn(*args, **kwargs)

        return pool.submit(run)

    def shutdown(self, wait: bool = True) -> None:
        """Retire the futures worker pool (idempotent).

        Outstanding futures complete when *wait* is true.  The blocking
        surface stays usable afterwards; a later :meth:`submit` raises
        :class:`RuntimeError` as a shut-down executor would.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
            self._retired = True
        if pool is not None:
            pool.shutdown(wait=wait)

    def _submit_pool(self) -> ThreadPoolExecutor:
        """The lazily-created worker pool behind the futures surface."""
        with self._pool_lock:
            if getattr(self, "_retired", False):
                raise RuntimeError(
                    "cannot submit after QueryService.shutdown()"
                )
            if self._pool is None:
                workers = self.config.submit_workers
                if workers is None:
                    workers = self.config.max_concurrent + self.config.queue_limit
                self._pool = ThreadPoolExecutor(
                    max_workers=max(1, workers),
                    thread_name_prefix="service-submit",
                )
            return self._pool

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _serve(
        self, query: PartialMatchQuery, start: float, deadline_ms: float | None
    ) -> ServiceResult:
        if self._batcher is not None:
            return self._serve_batched(query, start, deadline_ms)
        if not self.config.coalesce:
            buckets, version, hit = self._fetch(query)
            telemetry().metrics.add("service.leader_fetches")
            return ServiceResult(
                status=OK,
                query=query,
                records=self._collect(buckets, query),
                write_version=version,
                cache_hit=hit,
            )
        flight, leader = self._join_or_lead(query)
        if leader:
            try:
                buckets, version, hit = self._fetch(query)
            except BaseException as error:
                self._retire(flight)
                flight.fail(error)
                raise
            self._retire(flight)
            flight.resolve(buckets, version)
            telemetry().metrics.add("service.leader_fetches")
            return ServiceResult(
                status=OK,
                query=query,
                records=self._collect(buckets, query),
                write_version=version,
                cache_hit=hit,
            )
        remaining = self._remaining_s(start, deadline_ms)
        if not flight.wait(remaining):
            telemetry().metrics.add("service.coalesce_timeouts")
            return ServiceResult(status=TIMEOUT, query=query)
        if flight.error is not None:
            raise flight.error
        telemetry().metrics.add("service.coalesced")
        self._link_leader(flight.leader_context)
        return ServiceResult(
            status=OK,
            query=query,
            records=self._collect(flight.buckets, query),
            write_version=flight.version,
            coalesced=True,
        )

    def _serve_batched(
        self, query: PartialMatchQuery, start: float, deadline_ms: float | None
    ) -> ServiceResult:
        """Serve through the micro-batcher (one engine pass per batch)."""
        metrics = telemetry().metrics
        slot, leader = self._batcher.submit(query)
        if leader:
            self._batcher.run_leader()
        remaining = self._remaining_s(start, deadline_ms) if not leader else None
        if not slot.wait(remaining):
            metrics.add("service.batch_timeouts")
            return ServiceResult(status=TIMEOUT, query=query, batched=True)
        if slot.error is not None:
            raise slot.error
        metrics.add("service.batched")
        metrics.observe("service.batch_size", float(slot.size))
        if not leader:
            self._link_leader(slot.leader_context)
        return ServiceResult(
            status=OK,
            query=query,
            records=self._collect(slot.buckets, query),
            write_version=slot.version,
            batched=True,
            cache_hit=slot.hit,
        )

    def execute_many(
        self,
        queries: list[PartialMatchQuery],
        deadline_ms: float | None = None,
    ) -> list[ServiceResult]:
        """Serve an explicit batch of queries in one engine pass.

        The whole batch takes a single admission permit (it is one device
        round-trip) and shares one planning/fetch pass; a shed or timeout
        therefore applies to the batch as a unit.  Per-query results are
        parallel to *queries*, each byte-identical to what
        :meth:`execute` would have returned serially at the same snapshot.
        """
        start = time.perf_counter()
        deadline_ms = (
            deadline_ms if deadline_ms is not None else self.config.deadline_ms
        )
        metrics = telemetry().metrics
        metrics.add("service.requests", len(queries))
        submit_version = self.file.write_version
        if not queries:
            return []

        decision = self.admission.admit(deadline_ms)
        if not decision.admitted:
            metrics.add(f"service.{decision.outcome}", len(queries))
            total = (time.perf_counter() - start) * 1000.0
            results = [
                ServiceResult(
                    status=decision.outcome,
                    query=query,
                    submit_version=submit_version,
                    queue_ms=decision.queue_ms,
                    total_ms=total,
                    admission_attempts=decision.attempts,
                    batched=True,
                )
                for query in queries
            ]
            for result in results:
                self._observe(metrics, result)
            return results
        try:
            with trace_span(
                "service.batch_request", queries=len(queries)
            ) as span:
                resolved = self._execute_batch_queries(queries)
                span.set_attr("status", OK)
        finally:
            self.admission.release()
        total = (time.perf_counter() - start) * 1000.0
        metrics.add("service.served", len(queries))
        metrics.add("service.batched", len(queries))
        metrics.observe("service.batch_size", float(len(queries)))
        results = []
        for query, (buckets, version, hit) in zip(queries, resolved):
            result = ServiceResult(
                status=OK,
                query=query,
                records=self._collect(buckets, query),
                write_version=version,
                submit_version=submit_version,
                queue_ms=decision.queue_ms,
                total_ms=total,
                admission_attempts=decision.attempts,
                batched=True,
                cache_hit=hit,
            )
            self._observe(metrics, result)
            results.append(result)
        return results

    def _execute_batch_queries(
        self, queries: list[PartialMatchQuery]
    ) -> list[tuple[dict[Bucket, tuple[object, ...]], int, str]]:
        """Resolve a batch to per-query ``(buckets, version, hit)`` triples.

        With a result cache the batch goes through
        :meth:`~repro.storage.cache.CachedExecutor.lookup_batch` (hits
        resolve from memory, all misses share one engine fetch); without
        one it goes straight to the batch engine.
        """
        if self.cache is not None:
            lookups = self.cache.lookup_batch(queries)
            return [
                (lookup.buckets, lookup.version, lookup.hit)
                for lookup in lookups
            ]
        if self._engine is None:
            from repro.engine.batch import BatchEngine

            self._engine = BatchEngine(self.file)
        per_query, version = self._engine.fetch_buckets(queries)
        return [(buckets, version, "") for buckets in per_query]

    def _join_or_lead(self, query: PartialMatchQuery) -> tuple[_Flight, bool]:
        """Join a compatible in-flight request, or become the leader.

        A flight is joinable only if its query answers ours (identical or
        subsuming) *and* no write has completed since the flight's snapshot
        version — otherwise sharing its result could serve a state older
        than one this request is required to observe.
        """
        current = self.file.write_version
        with self._inflight_lock:
            flight = self._inflight.get(query)
            if flight is not None and flight.start_version == current:
                return flight, False
            for candidate in self._inflight.values():
                if (
                    candidate.start_version == current
                    and subsumes(candidate.query, query)
                ):
                    return candidate, False
            flight = _Flight(query, current)
            flight.leader_context = telemetry().tracer.current_context()
            self._inflight[query] = flight
            return flight, True

    def _retire(self, flight: _Flight) -> None:
        with self._inflight_lock:
            if self._inflight.get(flight.query) is flight:
                del self._inflight[flight.query]

    @staticmethod
    def _link_leader(context) -> None:
        """Stamp the leader's trace position onto the follower's span."""
        if context is None:
            return
        span = telemetry().tracer.current()
        if span is not None:
            span.set_attr("leader_trace", context.trace_id)
            span.set_attr("leader_span", context.span_id)

    def _fetch(
        self, query: PartialMatchQuery
    ) -> tuple[dict[Bucket, tuple[object, ...]], int, str]:
        """Bucket-grouped records for *query* plus their write version."""
        if self.cache is not None:
            lookup = self.cache.lookup(query)
            return lookup.buckets, lookup.version, lookup.hit
        buckets: dict[Bucket, tuple[object, ...]] = {}
        method = self.file.method
        with trace_span(
            "query.execute",
            query=query.describe(),
            qualified=query.qualified_count,
        ) as span:
            buckets_per_device = []
            with self.file.read_locked():
                for device in self.file.devices:
                    assigned = list(
                        method.qualified_on_device(device.device_id, query)
                    )
                    device.read_buckets(assigned)
                    buckets_per_device.append(len(assigned))
                    for bucket in assigned:
                        buckets[bucket] = device.store.records_in(bucket)
                version = self.file.write_version
            span.set_attr("buckets_per_device", buckets_per_device)
        return buckets, version, ""

    @staticmethod
    def _collect(
        buckets: dict[Bucket, tuple[object, ...]], query: PartialMatchQuery
    ) -> list[object]:
        records: list[object] = []
        for bucket, bucket_records in buckets.items():
            if query.matches(bucket):
                records.extend(bucket_records)
        return records

    @staticmethod
    def _observe(metrics, result: ServiceResult) -> None:
        mode = (
            "batched"
            if result.batched
            else ("coalesced" if result.coalesced else "serial")
        )
        metrics.observe(
            "service.latency_ms", result.total_ms, labels={"mode": mode}
        )
        if result.queue_ms:
            metrics.observe("service.queue_ms", result.queue_ms)

    @staticmethod
    def _remaining_s(start: float, deadline_ms: float | None) -> float | None:
        if deadline_ms is None:
            return None
        return max(0.0, deadline_ms / 1000.0 - (time.perf_counter() - start))
