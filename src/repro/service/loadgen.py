"""Deterministic closed-loop load generation and serial-replay verification.

:class:`LoadGenerator` drives a :class:`~repro.service.frontend.QueryService`
with N client threads, each executing a *deterministic* per-client request
log (seeded per ``(seed, client)``, so the same spec always produces the
same queries and writes regardless of scheduling).  Clients are
closed-loop: each issues its next request only after the previous one
completes — the classic saturation-free way to measure a serving tier.

The report does two jobs:

* **performance** — throughput and exact latency percentiles (computed
  from the recorded per-request latencies, nearest-rank), plus per-status
  counts and coalescing totals, and
* **correctness** — :meth:`LoadReport.verify` replays the request log
  serially: all writes in their global write-version order, every
  successful query re-evaluated against the exact write-version prefix its
  result claims (``ServiceResult.write_version``) *and* against the state
  at its submit version.  A mismatch at the result version breaks
  linearisability; a mismatch between those two states is a stale read.
  Zero mismatches is the soak acceptance criterion.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.hashing.multikey import MultiKeyHash
from repro.query.partial_match import PartialMatchQuery
from repro.query.workload import QueryWorkload, WorkloadSpec
from repro.service.frontend import QueryService, ServiceResult

__all__ = ["LoadSpec", "LoadGenerator", "LoadReport", "RequestRecord"]


@dataclass(frozen=True)
class LoadSpec:
    """Shape of one load run.

    ``write_every=k`` makes every k-th request of each client an insert
    (0 = read-only).  ``hot_fraction`` of the queries are drawn from a
    small shared pool of ``hot_pool`` popular queries — the duplicate
    traffic coalescing exists for.
    """

    clients: int = 4
    requests_per_client: int = 50
    seed: int = 0
    spec_probability: float = 0.5
    write_every: int = 0
    hot_fraction: float = 0.0
    hot_pool: int = 4
    deadline_ms: float | None = None

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ConfigurationError(f"clients must be >= 1, got {self.clients}")
        if self.requests_per_client < 1:
            raise ConfigurationError(
                f"requests_per_client must be >= 1, got "
                f"{self.requests_per_client}"
            )
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ConfigurationError(
                f"hot_fraction {self.hot_fraction} outside [0, 1]"
            )
        if self.write_every < 0:
            raise ConfigurationError(
                f"write_every must be >= 0, got {self.write_every}"
            )


@dataclass
class RequestRecord:
    """One completed query request, as the verifier needs it."""

    client: int
    index: int
    query: PartialMatchQuery
    result: ServiceResult
    latency_ms: float


@dataclass
class LoadReport:
    """Everything one load run produced."""

    spec: LoadSpec
    wall_s: float
    requests: list[RequestRecord] = field(default_factory=list)
    #: ``(version, record)`` for every insert, in global write order.
    writes: list[tuple[int, tuple]] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Performance
    # ------------------------------------------------------------------
    @property
    def completed(self) -> int:
        return len(self.requests) + len(self.writes)

    def status_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for request in self.requests:
            counts[request.result.status] = (
                counts.get(request.result.status, 0) + 1
            )
        return counts

    @property
    def coalesced(self) -> int:
        return sum(1 for r in self.requests if r.result.coalesced)

    @property
    def throughput_qps(self) -> float:
        if self.wall_s <= 0:
            return 0.0
        return self.completed / self.wall_s

    def latency_percentile(self, q: float) -> float:
        """Latency at quantile ``q`` in [0, 1] (nearest-rank, exact)."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile {q} outside [0, 1]")
        if not self.requests:
            return 0.0
        ordered = sorted(r.latency_ms for r in self.requests)
        rank = max(0, min(len(ordered) - 1, round(q * (len(ordered) - 1))))
        return ordered[rank]

    def to_dict(self) -> dict:
        counts = self.status_counts()
        return {
            "clients": self.spec.clients,
            "requests": len(self.requests),
            "writes": len(self.writes),
            "wall_s": round(self.wall_s, 6),
            "throughput_qps": round(self.throughput_qps, 3),
            "p50_ms": round(self.latency_percentile(0.50), 6),
            "p95_ms": round(self.latency_percentile(0.95), 6),
            "p99_ms": round(self.latency_percentile(0.99), 6),
            "ok": counts.get("ok", 0),
            "shed": counts.get("shed", 0),
            "timeout": counts.get("timeout", 0),
            "coalesced": self.coalesced,
            "errors": len(self.errors),
        }

    # ------------------------------------------------------------------
    # Correctness: serial replay
    # ------------------------------------------------------------------
    def verify(
        self,
        multikey_hash: MultiKeyHash,
        initial_records: list[tuple] = (),
    ) -> list[str]:
        """Serial-replay check; returns human-readable mismatch messages.

        *initial_records* are the records loaded before the run started
        (versions ``1..len(initial_records)`` if inserted through the same
        file, which the verifier assumes).  For every successful query the
        served records must be byte-identical (as sorted tuples) to a
        serial, uncached evaluation of the request log at the result's
        write version; when the result version predates the submit
        version, the two prefix states must additionally agree for that
        query — disagreement there is precisely a stale read.
        """
        ordered_writes = sorted(self.writes)
        timeline: list[tuple] = list(initial_records)
        base = len(initial_records)
        for position, (version, record) in enumerate(ordered_writes):
            if version != base + position + 1:
                return [
                    f"write log is not a contiguous version sequence at "
                    f"version {version} (expected {base + position + 1}); "
                    "writes bypassed the service?"
                ]
            timeline.append(record)

        def state_at(version: int) -> list[tuple]:
            return timeline[:version]

        def evaluate(query: PartialMatchQuery, version: int) -> list[tuple]:
            return sorted(
                record
                for record in state_at(version)
                if query.matches(multikey_hash.bucket_of(record))
            )

        mismatches: list[str] = []
        for request in self.requests:
            result = request.result
            if not result.ok:
                continue
            served = sorted(tuple(record) for record in result.records)
            expected = evaluate(request.query, result.write_version)
            if served != expected:
                mismatches.append(
                    f"client {request.client} #{request.index} "
                    f"{request.query.describe()}: served {len(served)} "
                    f"records != replay at version {result.write_version} "
                    f"({len(expected)} records)"
                )
                continue
            if result.write_version < result.submit_version:
                at_submit = evaluate(request.query, result.submit_version)
                if served != at_submit:
                    mismatches.append(
                        f"client {request.client} #{request.index} "
                        f"{request.query.describe()}: STALE — result "
                        f"version {result.write_version} predates submit "
                        f"version {result.submit_version} and the states "
                        "differ for this query"
                    )
        return mismatches


class LoadGenerator:
    """Closed-loop, deterministic multi-client driver for a service."""

    def __init__(self, service: QueryService, spec: LoadSpec | None = None):
        self.service = service
        self.spec = spec or LoadSpec()
        self._filesystem = service.file.filesystem

    # ------------------------------------------------------------------
    # Deterministic request logs
    # ------------------------------------------------------------------
    def hot_queries(self) -> list[PartialMatchQuery]:
        """The shared pool of popular queries (deterministic in the seed)."""
        workload = QueryWorkload(
            self._filesystem,
            WorkloadSpec(
                spec_probability=self.spec.spec_probability,
                exclude_trivial=True,
                seed=self.spec.seed * 7919 + 1,
            ),
        )
        return workload.take(max(1, self.spec.hot_pool))

    def client_ops(self, client: int) -> list[tuple[str, object]]:
        """The deterministic op log of one client: ``("query", q)`` and
        ``("insert", record)`` tuples, independent of thread scheduling."""
        spec = self.spec
        rng = random.Random(f"loadgen:{spec.seed}:{client}")
        workload = QueryWorkload(
            self._filesystem,
            WorkloadSpec(
                spec_probability=spec.spec_probability,
                exclude_trivial=True,
                seed=spec.seed * 104729 + client + 1,
            ),
        )
        hot = self.hot_queries()
        ops: list[tuple[str, object]] = []
        for index in range(spec.requests_per_client):
            if spec.write_every and (index + 1) % spec.write_every == 0:
                record = tuple(
                    rng.randrange(4096)
                    for __ in range(self._filesystem.n_fields)
                )
                ops.append(("insert", record))
            elif hot and rng.random() < spec.hot_fraction:
                ops.append(("query", hot[rng.randrange(len(hot))]))
            else:
                ops.append(("query", workload.next_query()))
        return ops

    # ------------------------------------------------------------------
    # The run
    # ------------------------------------------------------------------
    def run(self) -> LoadReport:
        """Execute the whole load: one thread per client, closed loop."""
        spec = self.spec
        logs = [self.client_ops(client) for client in range(spec.clients)]
        per_client_requests: list[list[RequestRecord]] = [
            [] for __ in range(spec.clients)
        ]
        per_client_writes: list[list[tuple[int, tuple]]] = [
            [] for __ in range(spec.clients)
        ]
        errors: list[str] = []
        errors_lock = threading.Lock()
        barrier = threading.Barrier(spec.clients + 1)

        def client_loop(client: int) -> None:
            try:
                barrier.wait()
                for index, (kind, payload) in enumerate(logs[client]):
                    if kind == "insert":
                        __, version = self.service.insert(payload)
                        per_client_writes[client].append((version, payload))
                        continue
                    started = time.perf_counter()
                    result = self.service.execute(
                        payload, deadline_ms=spec.deadline_ms
                    )
                    latency_ms = (time.perf_counter() - started) * 1000.0
                    per_client_requests[client].append(
                        RequestRecord(client, index, payload, result, latency_ms)
                    )
            except BaseException as error:  # soak criterion: zero exceptions
                with errors_lock:
                    errors.append(f"client {client}: {error!r}")

        threads = [
            threading.Thread(
                target=client_loop, args=(client,), name=f"loadgen-{client}"
            )
            for client in range(spec.clients)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        for thread in threads:
            thread.join()
        wall_s = time.perf_counter() - started

        report = LoadReport(spec=spec, wall_s=wall_s, errors=errors)
        for client_requests in per_client_requests:
            report.requests.extend(client_requests)
        for client_writes in per_client_writes:
            report.writes.extend(client_writes)
        return report
