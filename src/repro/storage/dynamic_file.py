"""Dynamic file growth: directory doubling with FX redistribution.

The paper assumes field sizes are powers of two because that is "common for
hash directory files for partitioned or dynamic hashing schemes" [FJNH79,
Lars78, Litw80] — directories that *double* as the file grows.  This module
supplies that missing dynamic: a partitioned file that starts with small
per-field directories and doubles the busiest field's size whenever average
bucket occupancy crosses a threshold, rebuilding the distribution method and
moving only the records whose device assignment changed.

Doubling a field is cheap at the hashing layer (one more bit of the field's
hash value) but reshuffles the bucket-to-device map; the class accounts the
records moved per doubling so experiments can weigh distribution quality
against reorganisation cost.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass

from repro.core.fx import FXDistribution
from repro.distribution.base import DistributionMethod
from repro.errors import ConfigurationError
from repro.hashing.fields import FileSystem
from repro.query.partial_match import PartialMatchQuery
from repro.storage.costs import DeviceCostModel
from repro.storage.device import SimulatedDevice
from repro.util.numbers import mix64

__all__ = ["DoublingEvent", "DynamicPartitionedFile"]

#: Builds a distribution method for the current file-system shape.
MethodFactory = Callable[[FileSystem], DistributionMethod]


@dataclass(frozen=True)
class DoublingEvent:
    """Record of one directory doubling."""

    field_index: int
    old_size: int
    new_size: int
    records_total: int
    records_moved: int

    @property
    def moved_fraction(self) -> float:
        if self.records_total == 0:
            return 0.0
        return self.records_moved / self.records_total


class DynamicPartitionedFile:
    """A partitioned file whose per-field directories double under load.

    Records are raw attribute tuples of non-negative integers; field ``i``'s
    hash uses the low ``log2 F_i`` bits of a seeded splitmix64, so when a
    directory doubles, a bucket ``b`` splits into ``b`` and ``b + F_old``
    (the classic extendible-hashing split) without rehashing from scratch.

    >>> fs = FileSystem.of(2, 2, m=4)
    >>> dyn = DynamicPartitionedFile(fs, max_occupancy=2.0)
    >>> for i in range(64):
    ...     dyn.insert((i, i * 3))
    >>> dyn.filesystem.bucket_count > 4   # directories grew
    True
    """

    def __init__(
        self,
        initial: FileSystem,
        method_factory: MethodFactory | None = None,
        max_occupancy: float = 4.0,
        max_field_size: int = 1 << 20,
        cost_model: DeviceCostModel | None = None,
        seed: int = 0,
    ):
        if max_occupancy <= 0:
            raise ConfigurationError("max_occupancy must be positive")
        self.filesystem = initial
        self.method_factory = method_factory or (
            lambda fs: FXDistribution(fs, policy="theorem9")
        )
        self.max_occupancy = max_occupancy
        self.max_field_size = max_field_size
        self.seed = seed
        self._cost_model = cost_model
        self.method = self.method_factory(initial)
        self.devices = [
            SimulatedDevice(d, cost_model=cost_model)
            for d in range(initial.m)
        ]
        #: Raw records kept for redistribution (the "directory" of the file).
        self._records: list[tuple[int, ...]] = []
        self.doublings: list[DoublingEvent] = []

    # ------------------------------------------------------------------
    # Hashing: low log2(F_i) bits of a seeded 64-bit mix, so growing a
    # field refines the existing partition instead of reshuffling it.
    # ------------------------------------------------------------------
    def bucket_of(self, record: Sequence[int]) -> tuple[int, ...]:
        if len(record) != self.filesystem.n_fields:
            raise ConfigurationError(
                f"record has {len(record)} attributes, file has "
                f"{self.filesystem.n_fields} fields"
            )
        bucket = []
        for i, (value, size) in enumerate(
            zip(record, self.filesystem.field_sizes)
        ):
            bucket.append(self._field_hash(i, value) % size)
        return tuple(bucket)

    def _field_hash(self, field_index: int, value: int) -> int:
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise ConfigurationError(
                f"dynamic file hashes non-negative ints, got {value!r}"
            )
        # Full-width mix once; truncation to the current directory size
        # happens in bucket_of, which is what makes splits refinements.
        # splitmix64 rather than Fibonacci folding: directory growth
        # consumes hash bits from the low end, so the low bits must
        # avalanche too.
        return mix64(value ^ (self.seed * 7919 + field_index))

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, record: Sequence[int]) -> None:
        record = tuple(record)
        bucket = self.bucket_of(record)
        self.devices[self.method.device_of(bucket)].insert(bucket, record)
        self._records.append(record)
        self._maybe_grow()

    def insert_all(self, records: Sequence[Sequence[int]]) -> None:
        for record in records:
            self.insert(record)

    # ------------------------------------------------------------------
    # Growth
    # ------------------------------------------------------------------
    def occupancy(self) -> float:
        """Average records per bucket slot of the current directory."""
        return len(self._records) / self.filesystem.bucket_count

    def _maybe_grow(self) -> None:
        while self.occupancy() > self.max_occupancy:
            field_index = self._pick_field_to_double()
            if field_index is None:
                return
            self._double_field(field_index)

    def _pick_field_to_double(self) -> int | None:
        """Double the smallest growable directory (keeps sizes balanced,
        which maximises the transform toolkit's optimality reach)."""
        candidates = [
            i
            for i, size in enumerate(self.filesystem.field_sizes)
            if size * 2 <= self.max_field_size
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda i: (self.filesystem.field_sizes[i], i))

    def _double_field(self, field_index: int) -> None:
        old_fs = self.filesystem
        sizes = list(old_fs.field_sizes)
        old_size = sizes[field_index]
        sizes[field_index] = old_size * 2
        new_fs = FileSystem.of(*sizes, m=old_fs.m)
        new_method = self.method_factory(new_fs)

        # Re-place every record; count only those whose device changed.
        moved = 0
        new_devices = [
            SimulatedDevice(d, cost_model=self._cost_model)
            for d in range(new_fs.m)
        ]
        self.filesystem = new_fs
        for record in self._records:
            bucket = self.bucket_of(record)
            device = new_method.device_of(bucket)
            new_devices[device].insert(bucket, record)
        for old_device, new_device in zip(self.devices, new_devices):
            # moved = records that left this device (set difference by count
            # is enough because records are immutable tuples)
            old_records = set()
            for bucket in old_device.store.buckets():
                old_records.update(old_device.store.records_in(bucket))
            new_records = set()
            for bucket in new_device.store.buckets():
                new_records.update(new_device.store.records_in(bucket))
            moved += len(old_records - new_records)
        self.method = new_method
        self.devices = new_devices
        self.doublings.append(
            DoublingEvent(
                field_index=field_index,
                old_size=old_size,
                new_size=old_size * 2,
                records_total=len(self._records),
                records_moved=moved,
            )
        )

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def query(self, specified: Mapping[int, int]) -> PartialMatchQuery:
        hashed = {
            i: self._field_hash(i, value) % self.filesystem.field_sizes[i]
            for i, value in specified.items()
        }
        return PartialMatchQuery.from_dict(self.filesystem, hashed)

    def search(self, specified: Mapping[int, int]) -> list[tuple[int, ...]]:
        """All stored records whose hashed attributes match *specified*.

        Uses per-device inverse mapping, then exact-value postfiltering.
        """
        query = self.query(specified)
        results: list[tuple[int, ...]] = []
        for device in self.devices:
            assigned = list(
                self.method.qualified_on_device(device.device_id, query)
            )
            for record in device.read_buckets(assigned):
                if all(record[i] == v for i, v in specified.items()):
                    results.append(record)  # type: ignore[arg-type]
        return results

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def record_count(self) -> int:
        return len(self._records)

    def device_loads(self) -> list[int]:
        return [device.record_count for device in self.devices]

    def total_moved(self) -> int:
        """Records moved across devices over all doublings."""
        return sum(event.records_moved for event in self.doublings)
