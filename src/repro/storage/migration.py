"""Online migration between distribution methods.

Operators re-decluster: a GDM deployment moves to FX, or a searched
transform assignment replaces the round-robin one.  The currency is the
number of buckets that change devices.  Two tools:

* :func:`moved_fraction` — the *exact* fraction of buckets that move,
  computed without enumerating the grid whenever both methods are
  separable over the same group: the pointwise *difference* of two
  separable device maps is itself separable (contribution
  ``c_a(v) ∘ c_b(v)^{-1}``), so "how many buckets agree" is one convolution
  asking how often the difference map hits the identity.
* :class:`Migration` — plans and applies the move on a live
  :class:`~repro.storage.parallel_file.PartitionedFile`, with accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.histograms import evaluator_for
from repro.distribution.base import DistributionMethod, SeparableMethod
from repro.errors import AnalysisError, StorageError
from repro.hashing.fields import Bucket
from repro.storage.parallel_file import PartitionedFile

__all__ = [
    "moved_fraction",
    "Migration",
    "MigrationReport",
    "RedeclusterAnalysis",
    "redecluster_analysis",
]

#: Grid-size ceiling for the enumeration fallback.
ENUMERATION_LIMIT = 1_000_000


class _DifferenceMethod(SeparableMethod):
    """Separable method computing ``device_a(b) ∘ device_b(b)^{-1}``.

    Maps a bucket to 0 exactly when the two wrapped methods agree on it.
    """

    name = ""

    def __init__(self, a: SeparableMethod, b: SeparableMethod):
        super().__init__(a.filesystem)
        self.combine = a.combine
        self._a = a
        self._b = b
        self._m = a.filesystem.m

    def field_contribution(self, field_index: int, value: int) -> int:
        ca = self._a.field_contribution(field_index, value)
        cb = self._b.field_contribution(field_index, value)
        if self.combine == "xor":
            return ca ^ cb
        return (ca - cb) % self._m


def moved_fraction(
    a: DistributionMethod, b: DistributionMethod
) -> float:
    """Exact fraction of buckets placed differently by *a* and *b*.

    O(n·M log M) when both methods are separable over the same group;
    falls back to grid enumeration (bounded) otherwise.

    >>> from repro import FileSystem, FXDistribution, ModuloDistribution
    >>> fs = FileSystem.of(8, 8, m=4)
    >>> moved_fraction(FXDistribution(fs), FXDistribution(fs))
    0.0
    """
    if a.filesystem != b.filesystem:
        raise AnalysisError("methods target different file systems")
    fs = a.filesystem
    if (
        isinstance(a, SeparableMethod)
        and isinstance(b, SeparableMethod)
        and a.combine == b.combine
    ):
        difference = _DifferenceMethod(a, b)
        histogram = evaluator_for(difference).histogram(
            frozenset(range(fs.n_fields))
        )
        agreeing = int(histogram[0])
        return 1.0 - agreeing / fs.bucket_count
    if fs.bucket_count > ENUMERATION_LIMIT:
        raise AnalysisError(
            f"grid of {fs.bucket_count} buckets exceeds the enumeration "
            "limit and the methods are not co-separable"
        )
    moved = sum(1 for bucket in fs.buckets() if a.device_of(bucket) != b.device_of(bucket))
    return moved / fs.bucket_count


@dataclass(frozen=True)
class RedeclusterAnalysis:
    """Cost/benefit of migrating a deployment to a new method.

    ``break_even_queries`` is how many queries must run before the
    per-query saving in expected largest response repays the one-time
    migration cost (both denominated in bucket touches); ``inf`` when the
    target is not actually better.
    """

    moved_fraction: float
    expected_largest_before: float
    expected_largest_after: float
    break_even_queries: float

    @property
    def worthwhile(self) -> bool:
        return self.expected_largest_after < self.expected_largest_before


def redecluster_analysis(
    current: SeparableMethod,
    target: SeparableMethod,
    p: float = 0.5,
) -> RedeclusterAnalysis:
    """Should a deployment migrate?  Exact cost/benefit under the
    independence query model.

    Migration cost: every moved bucket is one read plus one write —
    ``2 * moved_fraction * bucket_count`` touches.  Per-query benefit: the
    drop in expected largest response size (the response-time proxy).
    """
    from repro.analysis.skew import expected_largest_response

    fraction = moved_fraction(current, target)
    before = expected_largest_response(current, p=p)
    after = expected_largest_response(target, p=p)
    migration_cost = 2.0 * fraction * current.filesystem.bucket_count
    saving = before - after
    if saving <= 0.0:
        break_even = float("inf")
    elif migration_cost == 0.0:
        break_even = 0.0
    else:
        break_even = migration_cost / saving
    return RedeclusterAnalysis(
        moved_fraction=fraction,
        expected_largest_before=before,
        expected_largest_after=after,
        break_even_queries=break_even,
    )


@dataclass
class MigrationReport:
    """Outcome of applying one migration to a live file."""

    buckets_moved: int = 0
    records_moved: int = 0
    buckets_in_place: int = 0
    moves: list[tuple[Bucket, int, int]] = field(default_factory=list)

    @property
    def moved_record_fraction(self) -> float:
        total = self.records_moved + self._records_in_place
        if total == 0:
            return 0.0
        return self.records_moved / total

    # internal: records that did not move (set by Migration.apply)
    _records_in_place: int = 0


class Migration:
    """Plan and apply a re-declustering of a live partitioned file.

    >>> from repro import FileSystem, FXDistribution, ModuloDistribution
    >>> fs = FileSystem.of(4, 8, m=4)
    >>> pf = PartitionedFile(ModuloDistribution(fs))
    >>> pf.insert_all([(i, str(i)) for i in range(50)])
    >>> migration = Migration(pf, FXDistribution(fs))
    >>> report = migration.apply()
    >>> pf.method.name
    'fx'
    >>> pf.check_invariants()      # everything sits where FX says
    """

    def __init__(
        self,
        partitioned_file: PartitionedFile,
        target: DistributionMethod,
        wal=None,
    ):
        if target.filesystem != partitioned_file.filesystem:
            raise StorageError(
                "target method targets a different file system"
            )
        self.file = partitioned_file
        self.target = target
        #: Optional :class:`~repro.durability.WriteAheadLog`: each moved
        #: record is logged as an auditable ``move`` entry (replay treats
        #: moves as no-ops — placement is method-derived — but the log
        #: shows exactly what a crashed migration had touched).
        self.wal = wal

    def planned_fraction(self) -> float:
        """Fraction of grid buckets the migration would move (exact)."""
        return moved_fraction(self.file.method, self.target)

    def apply(self) -> MigrationReport:
        """Move every resident bucket to its target device, then switch
        the file's method.

        Planned fully against the pre-move state before any record moves
        (so buckets arriving on a later device are not re-examined), then
        executed bucket-at-a-time — an online migration would interleave
        the execution with queries; the accounting is the same.

        With checksummed stores every bucket read verifies its page, so a
        silently corrupted page aborts the migration with
        :class:`~repro.errors.CorruptPageError` before any record of that
        bucket moves (scrub, then migrate).
        """
        from repro.obs import trace_span

        report = MigrationReport()
        source = self.file.method
        planned_moves: list[tuple[Bucket, int, int]] = []
        for device in self.file.devices:
            for bucket in device.store.buckets():
                origin = source.device_of(bucket)
                if origin != device.device_id:
                    raise StorageError(
                        f"bucket {bucket} found on device {device.device_id}, "
                        f"method says {origin}; file is inconsistent"
                    )
                destination = self.target.device_of(bucket)
                if destination == device.device_id:
                    report.buckets_in_place += 1
                    report._records_in_place += len(
                        device.store.records_in(bucket)
                    )
                else:
                    planned_moves.append(
                        (bucket, device.device_id, destination)
                    )
        with trace_span(
            "migration.apply",
            planned_moves=len(planned_moves),
            target=self.target.name or type(self.target).__name__,
        ) as span:
            for bucket, origin, destination in planned_moves:
                origin_device = self.file.devices[origin]
                records = origin_device.store.records_in(bucket)
                for record in records:
                    origin_device.store.delete(bucket, record)
                    self.file.devices[destination].insert(bucket, record)
                    if self.wal is not None:
                        self.wal.append("move", record)
                report.buckets_moved += 1
                report.records_moved += len(records)
                report.moves.append((bucket, origin, destination))
            self.file.method = self.target
            span.set_attr("buckets_moved", report.buckets_moved)
            span.set_attr("records_moved", report.records_moved)
        return report
