"""B-tree-backed local bucket store.

Drop-in alternative to the hash-directory
:class:`~repro.storage.bucket_store.BucketStore`: bucket addresses are the
B-tree keys (tuples compare lexicographically), so a device additionally
supports ordered traversal and contiguous bucket-range scans — the ordered
"data construction" the authors pursue in the HCB_tree line [PrKi87].
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.hashing.fields import Bucket
from repro.storage.btree import BTree

__all__ = ["BTreeBucketStore"]


class BTreeBucketStore:
    """Bucket-to-records store ordered by bucket address.

    Implements the same interface as
    :class:`~repro.storage.bucket_store.BucketStore` plus
    :meth:`range_records`.
    """

    def __init__(self, t: int = 16):
        self._tree = BTree(t=t)

    # ------------------------------------------------------------------
    # BucketStore interface
    # ------------------------------------------------------------------
    def insert(self, bucket: Bucket, record: object) -> None:
        self._tree.insert(tuple(bucket), record)

    def delete(self, bucket: Bucket, record: object) -> bool:
        return self._tree.delete(tuple(bucket), record)

    def clear(self) -> None:
        self._tree = BTree(t=self._tree.t)

    def records_in(self, bucket: Bucket) -> tuple[object, ...]:
        return self._tree.get(tuple(bucket))

    def has_bucket(self, bucket: Bucket) -> bool:
        return tuple(bucket) in self._tree

    def buckets(self) -> Iterator[Bucket]:
        """Non-empty bucket addresses, in lexicographic order."""
        for key, __ in self._tree.items():
            yield key

    @property
    def record_count(self) -> int:
        return len(self._tree)

    @property
    def bucket_count(self) -> int:
        return self._tree.key_count

    def check_invariants(self) -> None:
        self._tree.check_invariants()

    # ------------------------------------------------------------------
    # Ordered extras
    # ------------------------------------------------------------------
    def range_records(
        self, low: Bucket, high: Bucket
    ) -> Iterator[tuple[Bucket, tuple[object, ...]]]:
        """``(bucket, records)`` for addresses with ``low <= b < high``.

        One contiguous scan instead of per-bucket probes — the payoff of
        ordered local construction when a query's qualified buckets form
        runs in address order.
        """
        yield from self._tree.range(tuple(low), tuple(high))

    @property
    def height(self) -> int:
        """Tree height (levels), for structural diagnostics."""
        return self._tree.height()
