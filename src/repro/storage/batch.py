"""Batch execution: shared bucket reads across a set of queries.

When several partial match queries run together (a report, a batch of
lookups) their qualified bucket sets often overlap.  Serving the batch
query-by-query re-reads the shared buckets once per query; the batch
executor instead reads each (device, bucket) pair once, then fans the
retrieved records back out to every query whose predicate the bucket
satisfies.  The report quantifies the saving — a second-order benefit of
bucket-level declustering the paper's one-query model cannot show.

Planning is the hot part, and :class:`BatchPlanner` runs it on the engine
fast paths: queries are grouped by specification *pattern* so one memoised
:class:`~repro.analysis.histograms.PatternEvaluator` covers every query in
a group, and for separable methods each query's per-device bucket lists are
materialised with the vectorised inverse mapping
(:meth:`~repro.distribution.base.SeparableMethod.qualified_on_device_array`)
instead of a tuple-at-a-time Python loop.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.distribution.base import SeparableMethod
from repro.errors import QueryError
from repro.hashing.fields import Bucket
from repro.query.algebra import subsumes
from repro.query.partial_match import PartialMatchQuery
from repro.storage.parallel_file import PartitionedFile

__all__ = ["BatchReport", "BatchPlan", "BatchPlanner", "BatchExecutor"]


@dataclass
class BatchReport:
    """Outcome of one batch execution."""

    #: records per query, parallel to the submitted query list.
    records_per_query: list[list[object]] = field(default_factory=list)
    #: distinct (device, bucket) reads actually performed.
    bucket_reads: int = 0
    #: reads a query-at-a-time execution would have performed.
    naive_bucket_reads: int = 0
    #: modelled batch wall time: max per-device service time.
    response_time_ms: float = 0.0
    #: distinct buckets each device served in the batch.
    buckets_per_device: list[int] = field(default_factory=list)

    @property
    def reads_saved(self) -> int:
        return self.naive_bucket_reads - self.bucket_reads

    @property
    def sharing_factor(self) -> float:
        """Naive reads over deduplicated reads (1.0 = no overlap)."""
        if self.bucket_reads == 0:
            return 1.0
        return self.naive_bucket_reads / self.bucket_reads


@dataclass
class BatchPlan:
    """The read schedule of one batch, before any device is touched.

    ``needed[d][bucket]`` lists the indices of the queries that need that
    bucket from device ``d``; ``pattern_groups`` records how the planner
    grouped the batch; ``expected_device_loads`` holds each pattern's
    shape-only per-device histogram (device labels permuted by the
    specified values — the *sorted* loads are exact), which operators use
    to predict batch balance without executing anything.
    """

    needed: dict[int, dict[Bucket, list[int]]]
    pattern_groups: dict[frozenset[int], list[int]]
    naive_bucket_reads: int
    expected_device_loads: dict[frozenset[int], list[int]] = field(
        default_factory=dict
    )
    #: Queries that were exact duplicates of an earlier one in the batch
    #: (planned once, fanned out to every duplicate's result).
    duplicates_removed: int = 0
    #: Distinct queries whose buckets were derived by filtering a broader
    #: in-batch query's rows instead of running their own inverse mapping.
    derived_from_subsumer: int = 0

    @property
    def bucket_reads(self) -> int:
        """Distinct (device, bucket) pairs the plan will read."""
        return sum(len(bucket_map) for bucket_map in self.needed.values())


class BatchPlanner:
    """Groups a batch by pattern and enumerates its per-device buckets.

    One planner per distribution method; planning mutates nothing, so a
    planner is safe to share.  Separable methods get the vectorised inverse
    mapping and the memoised evaluator; other methods fall back to the
    generic iterator path with identical results.
    """

    def __init__(self, method):
        self.method = method

    def plan(self, queries: Sequence[PartialMatchQuery]) -> BatchPlan:
        fs = self.method.filesystem
        for query in queries:
            if query.filesystem != fs:
                raise QueryError(
                    "batch contains a query for a different file system"
                )
        from repro.obs import trace_span
        from repro.obs.clock import now as _now

        started = _now()
        separable = isinstance(self.method, SeparableMethod)

        pattern_groups: dict[frozenset[int], list[int]] = {}
        for query_index, query in enumerate(queries):
            pattern_groups.setdefault(query.pattern, []).append(query_index)

        plan = BatchPlan(
            needed={d: {} for d in range(fs.m)},
            pattern_groups=pattern_groups,
            naive_bucket_reads=sum(q.qualified_count for q in queries),
        )
        planned_buckets = 0
        span_cm = trace_span(
            "batch.plan",
            queries=len(queries),
            pattern_groups=len(pattern_groups),
            separable=separable,
        )
        with span_cm as span:
            planned_buckets = self._plan_groups(
                plan, queries, pattern_groups, separable
            )
            span.set_attr("planned_buckets", planned_buckets)
            span.set_attr("bucket_reads", plan.bucket_reads)
            span.set_attr(
                "reads_saved", plan.naive_bucket_reads - plan.bucket_reads
            )
            span.set_attr("duplicates_removed", plan.duplicates_removed)
            span.set_attr(
                "derived_from_subsumer", plan.derived_from_subsumer
            )
        from repro.perf.counters import record_work

        record_work(
            "batch_plan", planned_buckets, _now() - started
        )
        return plan

    def _plan_groups(
        self, plan, queries, pattern_groups, separable
    ) -> int:
        """Enumerate per-device buckets for the batch, planning the least.

        Exact duplicates are collapsed by signature before any inverse
        mapping runs, and a distinct query subsumed by a broader in-batch
        query derives its rows by *filtering* the subsumer's (the
        containment the result cache exploits across requests, applied
        inside one batch) — so only the maximally general distinct queries
        pay for enumeration.  Derived rows ride the subsumer's enumeration
        order; batch record fan-out is unordered across queries, so
        results are unaffected.
        """
        fs = self.method.filesystem
        planned_buckets = 0
        for pattern in pattern_groups:
            if separable:
                from repro.analysis.histograms import evaluator_for
                from repro.errors import AnalysisError

                # One memoised evaluator serves the whole group: its
                # histogram predicts the group's device balance for free.
                try:
                    histogram = evaluator_for(self.method).histogram(pattern)
                except AnalysisError:
                    # Spectral exactness guard tripped (astronomically wide
                    # pattern); the plan still works, just unannotated.
                    pass
                else:
                    plan.expected_device_loads[pattern] = [
                        int(count) for count in histogram
                    ]

        from repro.core.inverse import bucket_strides
        from repro.engine.signature import dedupe_queries

        strides = bucket_strides(fs)
        distinct, slot_of = dedupe_queries(queries, strides)
        plan.duplicates_removed = len(queries) - len(distinct)

        # Most-general-first: a query can only be subsumed by one with a
        # strictly larger qualified set (ties are either equal queries —
        # already deduped — or incomparable), so one forward scan finds
        # every in-batch subsumer.
        order = sorted(
            range(len(distinct)),
            key=lambda slot: -queries[distinct[slot]].qualified_count,
        )
        rows_of: dict[int, list[list[Bucket]]] = {}
        for slot in order:
            query = queries[distinct[slot]]
            subsumer = next(
                (
                    candidate
                    for candidate in order
                    if candidate == slot
                    or (
                        candidate in rows_of
                        and subsumes(queries[distinct[candidate]], query)
                    )
                ),
            )
            if subsumer != slot:
                plan.derived_from_subsumer += 1
                rows_of[slot] = [
                    [
                        bucket
                        for bucket in device_rows
                        if query.matches(bucket)
                    ]
                    for device_rows in rows_of[subsumer]
                ]
                continue
            device_lists: list[list[Bucket]] = []
            for device in range(fs.m):
                if separable:
                    rows = [
                        tuple(row)
                        for row in self.method.qualified_on_device_array(
                            device, query
                        ).tolist()
                    ]
                else:
                    rows = list(
                        self.method.qualified_on_device(device, query)
                    )
                planned_buckets += len(rows)
                device_lists.append(rows)
            rows_of[slot] = device_lists

        # Fan out every submitted query (duplicates included) onto its
        # representative's rows, ascending index order per bucket list.
        for query_index in range(len(queries)):
            slot = slot_of[query_index]
            for device, device_rows in enumerate(rows_of[slot]):
                device_map = plan.needed[device]
                for bucket in device_rows:
                    device_map.setdefault(bucket, []).append(query_index)
        return planned_buckets


class BatchExecutor:
    """Executes query batches against a :class:`PartitionedFile`.

    >>> from repro import FileSystem, FXDistribution
    >>> fs = FileSystem.of(4, 4, m=4)
    >>> pf = PartitionedFile(FXDistribution(fs))
    >>> __ = pf.insert((1, 2))
    >>> batch = BatchExecutor(pf)
    >>> q = pf.query({0: 1})
    >>> report = batch.execute([q, q])     # identical queries share reads
    >>> report.sharing_factor
    2.0
    """

    def __init__(self, partitioned_file: PartitionedFile):
        self.file = partitioned_file

    def plan(self, queries: Sequence[PartialMatchQuery]) -> BatchPlan:
        """Plan the batch without reading anything (see :class:`BatchPlan`)."""
        return BatchPlanner(self.file.method).plan(queries)

    def execute(self, queries: Sequence[PartialMatchQuery]) -> BatchReport:
        plan = self.plan(queries)
        report = BatchReport(
            records_per_query=[[] for __ in queries],
            naive_bucket_reads=plan.naive_bucket_reads,
        )
        for device_id, bucket_map in plan.needed.items():
            device = self.file.devices[device_id]
            buckets = list(bucket_map)
            report.bucket_reads += len(buckets)
            report.buckets_per_device.append(len(buckets))
            report.response_time_ms = max(
                report.response_time_ms,
                device.cost_model.service_time(len(buckets)),
            )
            for bucket in buckets:
                records = device.store.records_in(bucket)
                device.stats.bucket_reads += 1
                device.stats.records_returned += len(records)
                for query_index in bucket_map[bucket]:
                    report.records_per_query[query_index].extend(records)
        return report
