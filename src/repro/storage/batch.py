"""Batch execution: shared bucket reads across a set of queries.

When several partial match queries run together (a report, a batch of
lookups) their qualified bucket sets often overlap.  Serving the batch
query-by-query re-reads the shared buckets once per query; the batch
executor instead reads each (device, bucket) pair once, then fans the
retrieved records back out to every query whose predicate the bucket
satisfies.  The report quantifies the saving — a second-order benefit of
bucket-level declustering the paper's one-query model cannot show.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.hashing.fields import Bucket
from repro.query.partial_match import PartialMatchQuery
from repro.storage.parallel_file import PartitionedFile

__all__ = ["BatchReport", "BatchExecutor"]


@dataclass
class BatchReport:
    """Outcome of one batch execution."""

    #: records per query, parallel to the submitted query list.
    records_per_query: list[list[object]] = field(default_factory=list)
    #: distinct (device, bucket) reads actually performed.
    bucket_reads: int = 0
    #: reads a query-at-a-time execution would have performed.
    naive_bucket_reads: int = 0
    #: modelled batch wall time: max per-device service time.
    response_time_ms: float = 0.0
    #: distinct buckets each device served in the batch.
    buckets_per_device: list[int] = field(default_factory=list)

    @property
    def reads_saved(self) -> int:
        return self.naive_bucket_reads - self.bucket_reads

    @property
    def sharing_factor(self) -> float:
        """Naive reads over deduplicated reads (1.0 = no overlap)."""
        if self.bucket_reads == 0:
            return 1.0
        return self.naive_bucket_reads / self.bucket_reads


class BatchExecutor:
    """Executes query batches against a :class:`PartitionedFile`.

    >>> from repro import FileSystem, FXDistribution
    >>> fs = FileSystem.of(4, 4, m=4)
    >>> pf = PartitionedFile(FXDistribution(fs))
    >>> __ = pf.insert((1, 2))
    >>> batch = BatchExecutor(pf)
    >>> q = pf.query({0: 1})
    >>> report = batch.execute([q, q])     # identical queries share reads
    >>> report.sharing_factor
    2.0
    """

    def __init__(self, partitioned_file: PartitionedFile):
        self.file = partitioned_file

    def execute(self, queries: Sequence[PartialMatchQuery]) -> BatchReport:
        fs = self.file.filesystem
        for query in queries:
            if query.filesystem != fs:
                raise QueryError(
                    "batch contains a query for a different file system"
                )
        method = self.file.method

        # Union of buckets needed per device, and which queries need each.
        needed: dict[int, dict[Bucket, list[int]]] = {
            d: {} for d in range(fs.m)
        }
        naive_reads = 0
        for query_index, query in enumerate(queries):
            naive_reads += query.qualified_count
            for device in range(fs.m):
                for bucket in method.qualified_on_device(device, query):
                    needed[device].setdefault(bucket, []).append(query_index)

        report = BatchReport(
            records_per_query=[[] for __ in queries],
            naive_bucket_reads=naive_reads,
        )
        for device_id, bucket_map in needed.items():
            device = self.file.devices[device_id]
            buckets = list(bucket_map)
            report.bucket_reads += len(buckets)
            report.buckets_per_device.append(len(buckets))
            report.response_time_ms = max(
                report.response_time_ms,
                device.cost_model.service_time(len(buckets)),
            )
            for bucket in buckets:
                records = device.store.records_in(bucket)
                device.stats.bucket_reads += 1
                device.stats.records_returned += len(records)
                for query_index in bucket_map[bucket]:
                    report.records_per_query[query_index].extend(records)
        return report
