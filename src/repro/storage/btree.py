"""A B-tree for the local "data construction" stage.

The paper's two-stage model [PrKi88] pairs *data distribution* (its topic)
with *data construction* — how each device organises its share locally.
The authors' own companion work is a parallel B-tree variant (HCB_tree
[PrKi87]); this module supplies the per-device ordered structure: a classic
CLRS-style B-tree of minimum degree ``t`` mapping comparable keys to lists
of values (duplicate keys allowed), with range scans.

The implementation favours auditability: every invariant the structure
promises (sorted keys, node occupancy bounds, uniform leaf depth, key/child
counts) is checkable via :meth:`BTree.check_invariants`, which the property
tests call after every mutation sequence.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, StorageError

__all__ = ["BTree"]


@dataclass
class _Node:
    leaf: bool
    keys: list = field(default_factory=list)
    values: list = field(default_factory=list)      # list of lists
    children: list = field(default_factory=list)    # list of _Node


class BTree:
    """A B-tree map from comparable keys to lists of values.

    ``t`` is the minimum degree: every node except the root holds between
    ``t - 1`` and ``2t - 1`` keys.

    >>> tree = BTree(t=2)
    >>> for k in [5, 1, 9, 3, 7]:
    ...     tree.insert(k, str(k))
    >>> list(tree.range(3, 8))
    [(3, ('3',)), (5, ('5',)), (7, ('7',))]
    """

    def __init__(self, t: int = 16):
        if t < 2:
            raise ConfigurationError("B-tree minimum degree must be >= 2")
        self.t = t
        self._root = _Node(leaf=True)
        self._size = 0          # number of (key, value) pairs
        self._key_count = 0     # number of distinct keys

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, key) -> tuple:
        """Values stored under *key* (empty tuple when absent)."""
        node = self._root
        while True:
            index = _lower_bound(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                return tuple(node.values[index])
            if node.leaf:
                return ()
            node = node.children[index]

    def __contains__(self, key) -> bool:
        return bool(self.get(key))

    def __len__(self) -> int:
        return self._size

    @property
    def key_count(self) -> int:
        return self._key_count

    def items(self) -> Iterator[tuple]:
        """All ``(key, values)`` pairs in key order."""
        yield from self._walk(self._root)

    def range(self, low, high) -> Iterator[tuple]:
        """``(key, values)`` pairs with ``low <= key < high``, in order.

        The per-device use case: a bucket's records are one key, a run of
        buckets is one contiguous scan.
        """
        yield from self._walk_range(self._root, low, high)

    def height(self) -> int:
        """Number of levels (1 for a lone root leaf)."""
        levels = 1
        node = self._root
        while not node.leaf:
            node = node.children[0]
            levels += 1
        return levels

    # ------------------------------------------------------------------
    # Insertion (single-pass with preemptive splits)
    # ------------------------------------------------------------------
    def insert(self, key, value) -> None:
        """Add one ``(key, value)`` pair; duplicates accumulate per key."""
        root = self._root
        if len(root.keys) == 2 * self.t - 1:
            new_root = _Node(leaf=False, children=[root])
            self._split_child(new_root, 0)
            self._root = new_root
            root = new_root
        self._insert_nonfull(root, key, value)
        self._size += 1

    def _insert_nonfull(self, node: _Node, key, value) -> None:
        while True:
            index = _lower_bound(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index].append(value)
                return
            if node.leaf:
                node.keys.insert(index, key)
                node.values.insert(index, [value])
                self._key_count += 1
                return
            child = node.children[index]
            if len(child.keys) == 2 * self.t - 1:
                self._split_child(node, index)
                if node.keys[index] == key:
                    node.values[index].append(value)
                    return
                if key > node.keys[index]:
                    index += 1
            node = node.children[index]

    def _split_child(self, parent: _Node, index: int) -> None:
        t = self.t
        child = parent.children[index]
        sibling = _Node(leaf=child.leaf)
        sibling.keys = child.keys[t:]
        sibling.values = child.values[t:]
        if not child.leaf:
            sibling.children = child.children[t:]
            child.children = child.children[:t]
        parent.keys.insert(index, child.keys[t - 1])
        parent.values.insert(index, child.values[t - 1])
        child.keys = child.keys[: t - 1]
        child.values = child.values[: t - 1]
        parent.children.insert(index + 1, sibling)

    # ------------------------------------------------------------------
    # Deletion (CLRS cases, value-level first)
    # ------------------------------------------------------------------
    def delete(self, key, value) -> bool:
        """Remove one occurrence of *value* under *key*.

        Returns ``False`` when the pair is absent.  The key disappears from
        the tree once its last value is removed.
        """
        values = self.get(key)
        if value not in values:
            return False
        if len(values) > 1:
            self._remove_one_value(self._root, key, value)
            self._size -= 1
            return True
        self._delete_key(self._root, key)
        if not self._root.leaf and not self._root.keys:
            self._root = self._root.children[0]
        self._size -= 1
        self._key_count -= 1
        return True

    def _remove_one_value(self, node: _Node, key, value) -> None:
        while True:
            index = _lower_bound(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index].remove(value)
                return
            node = node.children[index]

    def _delete_key(self, node: _Node, key) -> None:
        t = self.t
        index = _lower_bound(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            if node.leaf:
                node.keys.pop(index)
                node.values.pop(index)
                return
            left, right = node.children[index], node.children[index + 1]
            if len(left.keys) >= t:
                pred_key, pred_values = self._max_entry(left)
                node.keys[index] = pred_key
                node.values[index] = pred_values
                self._delete_key(left, pred_key)
            elif len(right.keys) >= t:
                succ_key, succ_values = self._min_entry(right)
                node.keys[index] = succ_key
                node.values[index] = succ_values
                self._delete_key(right, succ_key)
            else:
                self._merge_children(node, index)
                self._delete_key(left, key)
            return
        if node.leaf:
            raise StorageError(f"delete: key {key!r} vanished mid-descent")
        child = node.children[index]
        if len(child.keys) == t - 1:
            index = self._fill_child(node, index)
            child = node.children[index] if index < len(node.children) else node.children[-1]
            # after a merge the key may now live in this node
            self._delete_key(node, key)
            return
        self._delete_key(child, key)

    def _fill_child(self, node: _Node, index: int) -> int:
        """Ensure child *index* has >= t keys; returns possibly new index."""
        t = self.t
        if index > 0 and len(node.children[index - 1].keys) >= t:
            self._rotate_from_left(node, index)
            return index
        if (
            index + 1 < len(node.children)
            and len(node.children[index + 1].keys) >= t
        ):
            self._rotate_from_right(node, index)
            return index
        if index + 1 < len(node.children):
            self._merge_children(node, index)
            return index
        self._merge_children(node, index - 1)
        return index - 1

    def _rotate_from_left(self, node: _Node, index: int) -> None:
        child = node.children[index]
        left = node.children[index - 1]
        child.keys.insert(0, node.keys[index - 1])
        child.values.insert(0, node.values[index - 1])
        node.keys[index - 1] = left.keys.pop()
        node.values[index - 1] = left.values.pop()
        if not child.leaf:
            child.children.insert(0, left.children.pop())

    def _rotate_from_right(self, node: _Node, index: int) -> None:
        child = node.children[index]
        right = node.children[index + 1]
        child.keys.append(node.keys[index])
        child.values.append(node.values[index])
        node.keys[index] = right.keys.pop(0)
        node.values[index] = right.values.pop(0)
        if not child.leaf:
            child.children.append(right.children.pop(0))

    def _merge_children(self, node: _Node, index: int) -> None:
        left = node.children[index]
        right = node.children[index + 1]
        left.keys.append(node.keys.pop(index))
        left.values.append(node.values.pop(index))
        left.keys.extend(right.keys)
        left.values.extend(right.values)
        if not left.leaf:
            left.children.extend(right.children)
        node.children.pop(index + 1)

    def _max_entry(self, node: _Node) -> tuple:
        while not node.leaf:
            node = node.children[-1]
        return node.keys[-1], node.values[-1]

    def _min_entry(self, node: _Node) -> tuple:
        while not node.leaf:
            node = node.children[0]
        return node.keys[0], node.values[0]

    # ------------------------------------------------------------------
    # Traversal helpers
    # ------------------------------------------------------------------
    def _walk(self, node: _Node) -> Iterator[tuple]:
        if node.leaf:
            for key, values in zip(node.keys, node.values):
                yield key, tuple(values)
            return
        for i, key in enumerate(node.keys):
            yield from self._walk(node.children[i])
            yield key, tuple(node.values[i])
        yield from self._walk(node.children[-1])

    def _walk_range(self, node: _Node, low, high) -> Iterator[tuple]:
        start = _lower_bound(node.keys, low)
        if node.leaf:
            for i in range(start, len(node.keys)):
                if node.keys[i] >= high:
                    return
                yield node.keys[i], tuple(node.values[i])
            return
        for i in range(start, len(node.keys)):
            yield from self._walk_range(node.children[i], low, high)
            if node.keys[i] >= high:
                return
            if node.keys[i] >= low:
                yield node.keys[i], tuple(node.values[i])
        yield from self._walk_range(node.children[-1], low, high)

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Verify structure: occupancy, ordering, depth, counters."""
        leaf_depths: set[int] = set()
        pair_count = 0
        key_count = 0
        stack = [(self._root, 0, None, None)]
        while stack:
            node, depth, low, high = stack.pop()
            if node is not self._root and len(node.keys) < self.t - 1:
                raise StorageError("underfull node")
            if len(node.keys) > 2 * self.t - 1:
                raise StorageError("overfull node")
            if sorted(node.keys) != node.keys:
                raise StorageError("unsorted keys in node")
            for key, values in zip(node.keys, node.values):
                if low is not None and key <= low:
                    raise StorageError("key below subtree bound")
                if high is not None and key >= high:
                    raise StorageError("key above subtree bound")
                if not values:
                    raise StorageError(f"key {key!r} with no values")
                pair_count += len(values)
                key_count += 1
            if node.leaf:
                if node.children:
                    raise StorageError("leaf with children")
                leaf_depths.add(depth)
                continue
            if len(node.children) != len(node.keys) + 1:
                raise StorageError("child count != key count + 1")
            bounds = [low, *node.keys, high]
            for i, child in enumerate(node.children):
                stack.append((child, depth + 1, bounds[i], bounds[i + 1]))
        if len(leaf_depths) > 1:
            raise StorageError(f"leaves at mixed depths {leaf_depths}")
        if pair_count != self._size:
            raise StorageError(f"size drift: {pair_count} != {self._size}")
        if key_count != self._key_count:
            raise StorageError(
                f"key-count drift: {key_count} != {self._key_count}"
            )


def _lower_bound(keys: list, key) -> int:
    """First index whose key is >= *key* (binary search)."""
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo
