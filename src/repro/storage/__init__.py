"""Simulated parallel storage substrate.

The paper's two-stage model [PrKi88] separates *data distribution* (which
device gets which bucket — the paper's topic and :mod:`repro.core` /
:mod:`repro.distribution` here) from *data construction* (how a device
stores its buckets locally).  This package supplies a concrete, instrumented
realisation of both so the distribution methods can be exercised end to end:

* :mod:`costs` — device service-time models (parallel disks vs main-memory
  nodes, matching the two regimes of section 5.2),
* :mod:`bucket_store` — the per-device local structure (hash directory of
  buckets to records),
* :mod:`device` — one simulated device with access accounting,
* :mod:`parallel_file` — a multi-key hashed file partitioned over M devices,
* :mod:`executor` — partial match execution with inverse mapping and a
  response-time model (max over devices, as for symmetric interconnects).
"""

from repro.storage.batch import (
    BatchExecutor,
    BatchPlan,
    BatchPlanner,
    BatchReport,
)
from repro.storage.btree import BTree
from repro.storage.btree_store import BTreeBucketStore
from repro.storage.bucket_store import BucketStore
from repro.storage.cache import CachedExecutor, CacheStats
from repro.storage.costs import (
    DeviceCostModel,
    DiskCostModel,
    MainMemoryCostModel,
    UnitCostModel,
)
from repro.storage.device import DeviceStats, SimulatedDevice
from repro.storage.dynamic_file import DoublingEvent, DynamicPartitionedFile
from repro.storage.executor import ExecutionResult, QueryExecutor
from repro.storage.migration import Migration, MigrationReport, moved_fraction
from repro.storage.paged_store import PagedBucketStore
from repro.storage.parallel_file import PartitionedFile
from repro.storage.replicated_file import (
    DataUnavailableError,
    ReplicatedExecutionResult,
    ReplicatedFile,
)
from repro.storage.stats import DeviceSnapshot, FileStats, collect_stats
from repro.storage.simulator import (
    ParallelQuerySimulator,
    QueryArrival,
    SimulationReport,
    poisson_arrivals,
)

__all__ = [
    "BucketStore",
    "DeviceCostModel",
    "DiskCostModel",
    "MainMemoryCostModel",
    "UnitCostModel",
    "SimulatedDevice",
    "DeviceStats",
    "PartitionedFile",
    "DynamicPartitionedFile",
    "DoublingEvent",
    "QueryExecutor",
    "ExecutionResult",
    "BTree",
    "BTreeBucketStore",
    "PagedBucketStore",
    "Migration",
    "MigrationReport",
    "moved_fraction",
    "BatchExecutor",
    "BatchPlan",
    "BatchPlanner",
    "BatchReport",
    "CachedExecutor",
    "CacheStats",
    "ReplicatedFile",
    "ReplicatedExecutionResult",
    "DataUnavailableError",
    "ParallelQuerySimulator",
    "QueryArrival",
    "SimulationReport",
    "poisson_arrivals",
    "collect_stats",
    "FileStats",
    "DeviceSnapshot",
]
