"""File-level statistics snapshots.

One call collects everything an operator dashboards about a partitioned
file: per-device record/bucket counts, accumulated busy time, read
counters, page occupancy where the store is page-aware, and balance
aggregates (max/mean ratio and Gini of the record distribution).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.skew import gini
from repro.storage.parallel_file import PartitionedFile
from repro.util.tables import format_table

__all__ = ["DeviceSnapshot", "FileStats", "collect_stats"]


@dataclass(frozen=True)
class DeviceSnapshot:
    """Point-in-time counters of one device."""

    device_id: int
    records: int
    buckets: int
    bucket_reads: int
    records_returned: int
    busy_time_ms: float
    pages: int | None  # None when the local store is not page-aware


@dataclass(frozen=True)
class FileStats:
    """Aggregate statistics of one partitioned file."""

    devices: tuple[DeviceSnapshot, ...]
    total_records: int
    max_over_mean_records: float
    record_gini: float

    def render(self) -> str:
        rows = []
        for snap in self.devices:
            rows.append(
                [
                    snap.device_id,
                    snap.records,
                    snap.buckets,
                    snap.pages if snap.pages is not None else "-",
                    snap.bucket_reads,
                    round(snap.busy_time_ms, 2),
                ]
            )
        table = format_table(
            ["device", "records", "buckets", "pages", "reads", "busy ms"],
            rows,
            title=(
                f"{self.total_records} records; balance max/mean = "
                f"{self.max_over_mean_records:.2f}, gini = "
                f"{self.record_gini:.3f}"
            ),
        )
        return table


def collect_stats(partitioned_file: PartitionedFile) -> FileStats:
    """Snapshot a file's devices and balance aggregates.

    >>> from repro import FileSystem, FXDistribution
    >>> pf = PartitionedFile(FXDistribution(FileSystem.of(4, 4, m=4)))
    >>> pf.insert_all([(i, i) for i in range(40)])
    >>> stats = collect_stats(pf)
    >>> stats.total_records
    40
    """
    snapshots = []
    for device in partitioned_file.devices:
        store = device.store
        pages = store.page_count if hasattr(store, "page_count") else None
        snapshots.append(
            DeviceSnapshot(
                device_id=device.device_id,
                records=device.record_count,
                buckets=store.bucket_count,
                bucket_reads=device.stats.bucket_reads,
                records_returned=device.stats.records_returned,
                busy_time_ms=device.stats.busy_time_ms,
                pages=pages,
            )
        )
    records = [snap.records for snap in snapshots]
    total = sum(records)
    mean = total / len(records) if records else 0.0
    return FileStats(
        devices=tuple(snapshots),
        total_records=total,
        max_over_mean_records=(max(records) / mean) if mean else 0.0,
        record_gini=gini(records) if records else 0.0,
    )
