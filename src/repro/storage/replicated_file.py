"""Replicated partitioned file: dual writes, failure masking, degraded reads.

Pairs :class:`~repro.distribution.replicated.ChainedReplicaScheme` with the
simulated devices: every record is written to its bucket's primary and
backup device; reads go to the primary unless it is marked failed, in which
case the backup serves them.  One device may fail without losing data; a
second failure that hits a primary/backup pair raises
:class:`~repro.errors.DataUnavailableError`.

The interesting measurement is the *degraded* load profile: with chained
placement a failed device's read work lands on its neighbour, roughly
doubling that one device's share rather than (as with full mirroring onto a
single partner) concentrating the entire failed load. The executor reports
per-device bucket counts so experiments can see exactly that.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.distribution.replicated import ChainedReplicaScheme
from repro.errors import DataUnavailableError, StorageError
from repro.hashing.fields import Bucket
from repro.hashing.multikey import MultiKeyHash
from repro.query.partial_match import PartialMatchQuery
from repro.storage.costs import DeviceCostModel
from repro.storage.device import SimulatedDevice
from repro.storage.executor import ExecutionResult
from repro.storage.parallel_file import WriteNotifier
from repro.util.numbers import ceil_div

__all__ = ["DataUnavailableError", "ReplicatedExecutionResult", "ReplicatedFile"]


@dataclass
class ReplicatedExecutionResult(ExecutionResult):
    """Outcome of one query against a (possibly degraded) replicated file.

    Extends the plain :class:`~repro.storage.executor.ExecutionResult` with
    the one quantity replication adds: how many buckets the backups served.
    """

    served_by_backup: int = 0

    def to_dict(self) -> dict:
        data = super().to_dict()
        data["served_by_backup"] = self.served_by_backup
        return data


class ReplicatedFile(WriteNotifier):
    """A partitioned file with one chained backup copy per bucket.

    >>> from repro import FileSystem, FXDistribution
    >>> fs = FileSystem.of(4, 4, m=4)
    >>> rf = ReplicatedFile(ChainedReplicaScheme(FXDistribution(fs)))
    >>> bucket = rf.insert((7, "blue"))
    >>> rf.record_count           # one logical record, two physical copies
    1
    """

    def __init__(
        self,
        scheme: ChainedReplicaScheme,
        multikey_hash: MultiKeyHash | None = None,
        cost_model: DeviceCostModel | None = None,
        store_factory=None,
    ):
        super().__init__()
        self.scheme = scheme
        self.filesystem = scheme.filesystem
        self.multikey_hash = multikey_hash or MultiKeyHash.default(self.filesystem)
        self.devices = [
            SimulatedDevice(
                d,
                cost_model=cost_model,
                store=store_factory() if store_factory else None,
            )
            for d in range(self.filesystem.m)
        ]
        self._failed: set[int] = set()
        self._logical_records = 0

    # ------------------------------------------------------------------
    # Failure control
    # ------------------------------------------------------------------
    def fail_device(self, device: int) -> None:
        """Mark a device failed; its primaries are served by backups."""
        if not 0 <= device < self.filesystem.m:
            raise StorageError(f"no device {device}")
        self._failed.add(device)

    def restore_device(self, device: int) -> None:
        """Bring a failed device back (its data was never dropped here —
        the simulation models unavailability, not media loss)."""
        self._failed.discard(device)

    def lose_device(self, device: int) -> None:
        """Permanent media loss: drop the device's pages *and* mark it
        failed.  Unlike :meth:`fail_device`, the data is gone — only a
        :class:`~repro.durability.DeviceRebuilder` (reconstructing from the
        chained replicas) brings the device back."""
        if not 0 <= device < self.filesystem.m:
            raise StorageError(f"no device {device}")
        self.devices[device].store.clear()
        self._failed.add(device)

    @property
    def failed_devices(self) -> frozenset[int]:
        return frozenset(self._failed)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def insert(self, record: Sequence[object]) -> Bucket:
        return self.insert_versioned(record)[0]

    def insert_versioned(self, record: Sequence[object]) -> tuple[Bucket, int]:
        """:meth:`insert`, also returning the write version this mutation
        was assigned (atomic; reading :attr:`write_version` afterwards is
        racy under concurrent writers)."""
        bucket = self.multikey_hash.bucket_of(record)
        primary, backup = self.scheme.replicas_of(bucket)
        with self.read_locked():
            self.devices[primary].insert(bucket, tuple(record))
            self.devices[backup].insert(bucket, tuple(record))
            self._logical_records += 1
            version = self._publish(bucket)
        return bucket, version

    def insert_all(self, records: Sequence[Sequence[object]]) -> None:
        for record in records:
            self.insert(record)

    def delete(self, record: Sequence[object]) -> bool:
        """Remove one stored copy of *record* from both replicas.

        Both replicas must agree: a record present on exactly one copy
        means the file has silently diverged, which is an invariant
        violation, not a normal miss.
        """
        bucket = self.multikey_hash.bucket_of(record)
        primary, backup = self.scheme.replicas_of(bucket)
        with self.read_locked():
            removed_primary = self.devices[primary].delete(bucket, tuple(record))
            removed_backup = self.devices[backup].delete(bucket, tuple(record))
            if removed_primary != removed_backup:
                raise StorageError(
                    f"replica divergence deleting {record!r}: primary removed "
                    f"{removed_primary}, backup removed {removed_backup}"
                )
            if removed_primary:
                self._logical_records -= 1
                self._publish(bucket)
        return removed_primary

    @property
    def record_count(self) -> int:
        """Logical records (each stored twice physically)."""
        return self._logical_records

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def _serving_device(self, bucket: Bucket) -> tuple[int, bool]:
        """(device, is_backup) that serves *bucket* right now."""
        primary, backup = self.scheme.replicas_of(bucket)
        if primary not in self._failed:
            return primary, False
        if backup not in self._failed:
            return backup, True
        raise DataUnavailableError(
            f"bucket {bucket}: both replicas (devices {primary}, {backup}) "
            "are failed"
        )

    def query(self, specified: Mapping[int, object]) -> PartialMatchQuery:
        hashed = self.multikey_hash.partial_bucket(specified)
        return PartialMatchQuery.from_dict(self.filesystem, hashed)

    def execute(self, query: PartialMatchQuery) -> ReplicatedExecutionResult:
        """Run one partial match query with failure masking.

        Buckets are routed per current failure state, grouped per device
        and served in one batch each (as the plain executor does).
        """
        per_device: dict[int, list[Bucket]] = {
            d: [] for d in range(self.filesystem.m)
        }
        served_by_backup = 0
        for bucket in query.qualified_buckets():
            device, is_backup = self._serving_device(bucket)
            per_device[device].append(bucket)
            served_by_backup += is_backup
        result = ReplicatedExecutionResult(
            query=query, served_by_backup=served_by_backup
        )
        for device_id, buckets in per_device.items():
            device = self.devices[device_id]
            records = device.read_buckets(buckets) if buckets else []
            # a record may be read from the backup copy only; dedupe is not
            # needed because each bucket is read from exactly one replica
            result.records.extend(records)
            result.buckets_per_device.append(len(buckets))
            service = device.cost_model.service_time(len(buckets))
            result.total_service_ms += service
            result.response_time_ms = max(result.response_time_ms, service)
        result.largest_response = max(result.buckets_per_device, default=0)
        bound = ceil_div(query.qualified_count, self.filesystem.m)
        result.strict_optimal = result.largest_response <= bound
        return result

    def search(self, specified: Mapping[int, object]) -> ReplicatedExecutionResult:
        return self.execute(self.query(specified))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def degraded_histogram(self, query: PartialMatchQuery) -> list[int]:
        """Per-device qualified-bucket counts under the current failures."""
        counts = [0] * self.filesystem.m
        for bucket in query.qualified_buckets():
            device, __ = self._serving_device(bucket)
            counts[device] += 1
        return counts

    def state_digest(self) -> str:
        """Canonical digest of the whole file (per-device digests in device
        order); equal digests mean byte-identical replica contents."""
        import hashlib

        digest = hashlib.sha256()
        for device in self.devices:
            digest.update(device.state_digest().encode("ascii"))
        return digest.hexdigest()

    def check_invariants(self) -> None:
        """Every stored bucket must sit on one of its two replica devices."""
        for device in self.devices:
            device.store.check_invariants()
            for bucket in device.store.buckets():
                if device.device_id not in self.scheme.replicas_of(bucket):
                    raise StorageError(
                        f"bucket {bucket} on device {device.device_id}, "
                        f"replicas are {self.scheme.replicas_of(bucket)}"
                    )
