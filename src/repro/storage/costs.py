"""Device service-time models.

Section 5.2 of the paper evaluates response time in two regimes:

* **parallel disks** — the largest response size dominates (seek plus a
  transfer per qualified bucket); CPU address arithmetic is negligible,
* **main-memory databases** — per-bucket CPU time dominates, so the address
  computation and inverse mapping cycle counts matter.

Both regimes share the same interface: the time for one device to serve
``bucket_count`` qualified buckets.  Times are reported in abstract
milliseconds; only ratios are meaningful, matching the paper's analysis.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "DeviceCostModel",
    "DiskCostModel",
    "MainMemoryCostModel",
    "UnitCostModel",
]


class DeviceCostModel(ABC):
    """Service time of one device as a function of its qualified buckets."""

    @abstractmethod
    def service_time(self, bucket_count: int) -> float:
        """Model time (ms) to retrieve *bucket_count* buckets."""

    def _check(self, bucket_count: int) -> None:
        if bucket_count < 0:
            raise ConfigurationError(
                f"bucket count must be non-negative, got {bucket_count}"
            )


@dataclass(frozen=True)
class DiskCostModel(DeviceCostModel):
    """Parallel-disk regime: one average seek, then sequential transfers.

    Defaults are period-plausible (late-80s drives: ~28 ms average
    positioning, ~2 ms to transfer one hash bucket); the paper's conclusions
    depend only on the per-bucket term dominating at large responses.
    """

    seek_ms: float = 28.0
    transfer_ms_per_bucket: float = 2.0

    def service_time(self, bucket_count: int) -> float:
        self._check(bucket_count)
        if bucket_count == 0:
            return 0.0
        return self.seek_ms + self.transfer_ms_per_bucket * bucket_count


@dataclass(frozen=True)
class MainMemoryCostModel(DeviceCostModel):
    """Main-memory regime: pure CPU, parameterised in cycles.

    ``cycles_per_bucket`` covers inverse mapping plus local lookup per
    qualified bucket; ``clock_mhz`` converts to model milliseconds.  Use
    :class:`repro.analysis.cpu_cost.CpuCostModel` to derive the per-bucket
    cycle figure for a concrete distribution method.
    """

    cycles_per_bucket: float = 100.0
    clock_mhz: float = 8.0  # an 8 MHz MC68000

    def service_time(self, bucket_count: int) -> float:
        self._check(bucket_count)
        cycles = self.cycles_per_bucket * bucket_count
        return cycles / (self.clock_mhz * 1000.0)


@dataclass(frozen=True)
class UnitCostModel(DeviceCostModel):
    """One time unit per bucket: service time equals the response size.

    Makes the executor's reported response time literally the paper's
    "largest response size", which tests rely on.
    """

    def service_time(self, bucket_count: int) -> float:
        self._check(bucket_count)
        return float(bucket_count)
