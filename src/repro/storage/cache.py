"""Subsumption-aware, write-aware query result cache.

Partial match workloads are repetitive, and their queries order naturally
by containment: a cached broad result can answer any narrower query locally
(filter by bucket membership) without touching the devices.  This executor
wraps :class:`~repro.storage.executor.QueryExecutor` with an LRU cache keyed
by query and consulted through :func:`repro.query.algebra.subsumes`.

Cache entries store ``(bucket, records)`` pairs, so answering a subsumed
query is a dictionary-free scan of the cached buckets against the narrower
predicate — no rehashing of records required.

Consistency contract
--------------------

The cache is **write-aware**: on construction it subscribes to the file's
:class:`~repro.storage.parallel_file.WriteNotifier`, so every
``PartitionedFile.insert``/``insert_all``/``delete`` automatically drops
exactly the entries whose cached query could match the written record's
bucket (checked through the query algebra:
``subsumes(cached_query, exact-match(bucket))``).  Entries whose cached
query cannot match the bucket are untouched — a write to one region of the
grid does not evict results for disjoint regions.  :meth:`invalidate`
remains as the manual escape hatch for out-of-band mutations that bypass
the file interface (e.g. direct store surgery in tests).

The cache is also **thread-safe**: every probe, fill, eviction and
invalidation happens under one internal lock (the same discipline as
:class:`repro.perf.memo.LRUCache`).  The device fetch on a miss is the one
step that deliberately runs *outside* that lock: notifications are
delivered while the writer holds the file's mutation lock (see
:meth:`~repro.storage.parallel_file.WriteNotifier._publish`), so a lookup
that held the cache lock while waiting for the mutation lock would deadlock
against a writer holding the mutation lock while waiting for the cache
lock.

Zero stale reads follows from two orderings:

1. *Hits.*  A write's invalidation runs before its version is published,
   so once any reader can observe write version ``v``, every entry ``v``
   could have changed is already gone — an exact or subsumption hit never
   serves data that predates a write the caller has seen.
2. *Fills.*  A write that lands between a miss's device fetch (a
   consistent snapshot under the mutation lock) and its fill cannot drop
   the not-yet-inserted entry, so the fill itself re-checks: notifications
   that arrive while any fetch is in flight are recorded, and a fill is
   skipped (the freshly fetched records are still returned — they are a
   valid snapshot at their own version) when a recorded notification newer
   than the fetched snapshot matches the query.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Sequence
from dataclasses import dataclass, field
from threading import RLock
from typing import TYPE_CHECKING

from repro.core.inverse import bucket_strides
from repro.engine.signature import pack_queries, pack_query
from repro.errors import ConfigurationError
from repro.hashing.fields import Bucket
from repro.obs import trace_span
from repro.query.algebra import subsumes
from repro.query.partial_match import PartialMatchQuery
from repro.storage.parallel_file import PartitionedFile

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from repro.engine.batch import BatchEngine

__all__ = ["CacheStats", "CachedExecutor", "CachedLookup"]


@dataclass
class CacheStats:
    """Hit/miss accounting for one cached executor."""

    exact_hits: int = 0
    subsumption_hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Entries dropped by write notifications (not manual ``invalidate``).
    write_invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.exact_hits + self.subsumption_hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return (self.exact_hits + self.subsumption_hits) / self.lookups


@dataclass
class _Entry:
    """One cached result: the qualified buckets with their records.

    Entries are keyed in the cache by the query's packed *signature* (see
    :mod:`repro.engine.signature`) — two cheap machine words instead of a
    tuple hash, computable for a whole batch in one NumPy pass — so the
    query itself lives here for the subsumption scan and write
    invalidation.
    """

    query: PartialMatchQuery | None = None
    buckets: dict[Bucket, tuple[object, ...]] = field(default_factory=dict)
    #: File write version the entry reflects (its linearisation point).
    version: int = 0


@dataclass
class CachedLookup:
    """One resolved lookup: bucket-grouped records plus provenance.

    ``buckets`` holds the *entry*'s buckets (possibly broader than the
    query on a subsumption hit) — callers filter with ``query.matches``.
    ``version`` is the file write version the records reflect; ``hit`` is
    ``"exact"``, ``"subsumption"`` or ``"miss"``.
    """

    query: PartialMatchQuery
    buckets: dict[Bucket, tuple[object, ...]]
    version: int
    hit: str

    def collect(self, query: PartialMatchQuery | None = None) -> list[object]:
        """Records of *query* (default: the looked-up query) from the
        cached buckets."""
        query = query or self.query
        records: list[object] = []
        for bucket, bucket_records in self.buckets.items():
            if query.matches(bucket):
                records.extend(bucket_records)
        return records


class CachedExecutor:
    """LRU, subsumption-aware, write-aware caching front for partial match
    execution.

    Entries are invalidated automatically when the underlying file mutates
    (see the module docstring for the exact contract); the executor is safe
    to share between threads.

    >>> from repro import FileSystem, FXDistribution
    >>> fs = FileSystem.of(4, 4, m=4)
    >>> pf = PartitionedFile(FXDistribution(fs))
    >>> __ = pf.insert((1, 2))
    >>> cached = CachedExecutor(pf, capacity=8)
    >>> broad = PartialMatchQuery.from_dict(fs, {})
    >>> narrow = pf.query({0: 1})
    >>> __ = cached.execute(broad)       # miss: hits the devices
    >>> __ = cached.execute(narrow)      # answered from the broad entry
    >>> cached.stats.subsumption_hits
    1
    >>> __ = pf.insert((1, 3))           # write notification drops the entry
    >>> __ = cached.execute(broad)
    >>> cached.stats.misses
    2
    """

    def __init__(self, partitioned_file: PartitionedFile, capacity: int = 32):
        if capacity < 1:
            raise ConfigurationError("cache capacity must be at least 1")
        self.file = partitioned_file
        self.capacity = capacity
        self.stats = CacheStats()
        #: Keyed by the query's (mask, packed) signature — see
        #: :mod:`repro.engine.signature`; the entry holds the query.
        self._entries: OrderedDict[tuple[int, int], _Entry] = OrderedDict()
        self._strides = bucket_strides(partitioned_file.filesystem)
        self._engine: "BatchEngine | None" = None
        self._lock = RLock()
        #: Misses currently fetching outside the lock; while any are in
        #: flight, write notifications are also recorded in ``_pending_notes``
        #: so the fills can re-check freshness (see module docstring).
        self._fetching = 0
        self._pending_notes: list[tuple[int, Bucket]] = []
        # Write-awareness: drop affected entries on every file mutation.
        # Files without a notifier (duck-typed stand-ins) fall back to the
        # manual invalidate() contract.
        subscribe = getattr(partitioned_file, "subscribe", None)
        self._unsubscribe = subscribe(self._on_write) if subscribe else None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, query: PartialMatchQuery) -> list[object]:
        """Records of *query*'s qualified buckets, cached when possible."""
        return self.lookup(query).collect(query)

    def lookup(self, query: PartialMatchQuery) -> CachedLookup:
        """Resolve *query* to bucket-grouped records with provenance.

        Hit probing and the fill run under the cache lock; the device fetch
        on a miss runs outside it (it takes the file's mutation lock, which
        write notifications are delivered under — holding both here would
        deadlock).  A fill is skipped when a write notification newer than
        the fetched snapshot arrived mid-fetch and matches the query; the
        fetched records are still returned, stamped with their own version.
        """
        signature = pack_query(query, self._strides)
        with self._lock:
            entry = self._entries.get(signature)
            if entry is not None:
                self._entries.move_to_end(signature)
                self.stats.exact_hits += 1
                return CachedLookup(query, entry.buckets, entry.version, "exact")
            for cached_key in reversed(self._entries):
                cached = self._entries[cached_key]
                if subsumes(cached.query, query):
                    self._entries.move_to_end(cached_key)
                    self.stats.subsumption_hits += 1
                    return CachedLookup(
                        query, cached.buckets, cached.version, "subsumption"
                    )
            self.stats.misses += 1
            self._fetching += 1
        try:
            entry = self._fetch(query)
        except BaseException:
            with self._lock:
                self._retire_fetch()
            raise
        with self._lock:
            fresh = not any(
                version > entry.version
                and subsumes(
                    query, PartialMatchQuery.exact(self.file.filesystem, bucket)
                )
                for version, bucket in self._pending_notes
            )
            self._retire_fetch()
            if fresh:
                self._entries[signature] = entry
                if len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1
        return CachedLookup(query, entry.buckets, entry.version, "miss")

    def lookup_batch(
        self, queries: "Sequence[PartialMatchQuery]"
    ) -> list[CachedLookup]:
        """Resolve a whole batch with one lock pass and one device pass.

        Signatures for the batch are computed vectorised
        (:func:`repro.engine.signature.pack_queries`); hits resolve under a
        single acquisition of the cache lock, and every distinct miss is
        fetched together through the batch engine's
        :meth:`~repro.engine.batch.BatchEngine.fetch_buckets` — one
        consistent snapshot, each (device, bucket) pair read once for the
        whole batch.  Per-query results (provenance, stats, freshness
        re-check against mid-fetch writes) match what ``len(queries)``
        serial :meth:`lookup` calls would produce; miss entries group only
        the *non-empty* qualified buckets, which collects identically.
        """
        if not queries:
            return []
        signatures = pack_queries(queries, self._strides)
        results: list[CachedLookup | None] = [None] * len(queries)
        miss_slots: dict[tuple[int, int], list[int]] = {}
        miss_queries: list[PartialMatchQuery] = []
        with self._lock:
            for index, (query, signature) in enumerate(
                zip(queries, signatures)
            ):
                if signature in miss_slots:
                    # Duplicate of an in-batch miss: one fetch serves both.
                    self.stats.misses += 1
                    miss_slots[signature].append(index)
                    continue
                entry = self._entries.get(signature)
                if entry is not None:
                    self._entries.move_to_end(signature)
                    self.stats.exact_hits += 1
                    results[index] = CachedLookup(
                        query, entry.buckets, entry.version, "exact"
                    )
                    continue
                for cached_key in reversed(self._entries):
                    cached = self._entries[cached_key]
                    if subsumes(cached.query, query):
                        self._entries.move_to_end(cached_key)
                        self.stats.subsumption_hits += 1
                        results[index] = CachedLookup(
                            query, cached.buckets, cached.version,
                            "subsumption",
                        )
                        break
                else:
                    self.stats.misses += 1
                    miss_slots[signature] = [index]
                    miss_queries.append(query)
            if miss_queries:
                self._fetching += 1
        if not miss_queries:
            return results
        try:
            bucket_maps, version = self._batch_engine().fetch_buckets(
                miss_queries
            )
        except BaseException:
            with self._lock:
                self._retire_fetch()
            raise
        with self._lock:
            for query, signature, buckets in zip(
                miss_queries, miss_slots, bucket_maps
            ):
                fresh = not any(
                    note_version > version
                    and subsumes(
                        query,
                        PartialMatchQuery.exact(self.file.filesystem, bucket),
                    )
                    for note_version, bucket in self._pending_notes
                )
                if fresh:
                    self._entries[signature] = _Entry(
                        query=query, buckets=buckets, version=version
                    )
                    if len(self._entries) > self.capacity:
                        self._entries.popitem(last=False)
                        self.stats.evictions += 1
                for slot in miss_slots[signature]:
                    results[slot] = CachedLookup(
                        query, buckets, version, "miss"
                    )
            self._retire_fetch()
        return results

    def _batch_engine(self) -> "BatchEngine":
        """The lazily created batch engine behind :meth:`lookup_batch`."""
        if self._engine is None:
            from repro.engine.batch import BatchEngine

            self._engine = BatchEngine(self.file)
        return self._engine

    def _retire_fetch(self) -> None:
        """One in-flight fetch finished (call under the cache lock); once
        none remain, the recorded notification window is drained."""
        self._fetching -= 1
        if self._fetching == 0:
            self._pending_notes.clear()

    def _fetch(self, query: PartialMatchQuery) -> _Entry:
        """Read the query from the devices, keeping per-bucket grouping.

        Runs under the file's mutation lock so the fetched snapshot is a
        well-defined write-version prefix, never a torn mix of a concurrent
        insert.
        """
        entry = _Entry(query=query)
        method = self.file.method
        with trace_span(
            "query.execute",
            query=query.describe(),
            qualified=query.qualified_count,
        ) as span:
            buckets_per_device = []
            with self.file.read_locked():
                for device in self.file.devices:
                    assigned = list(
                        method.qualified_on_device(device.device_id, query)
                    )
                    device.read_buckets(assigned)
                    buckets_per_device.append(len(assigned))
                    for bucket in assigned:
                        entry.buckets[bucket] = device.store.records_in(bucket)
                entry.version = self.file.write_version
            span.set_attr("buckets_per_device", buckets_per_device)
        return entry

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _on_write(self, bucket: Bucket, version: int) -> None:
        """Write notification: drop entries whose query could match
        *bucket* (exactly the entries the write may have changed).

        Runs under the file's mutation lock, before *version* is published.
        While misses are fetching outside the cache lock, the notification
        is also recorded so their fills can re-check freshness.
        """
        exact = PartialMatchQuery.exact(self.file.filesystem, bucket)
        with self._lock:
            affected = [
                cached_key
                for cached_key, cached in self._entries.items()
                if subsumes(cached.query, exact)
            ]
            for cached_key in affected:
                del self._entries[cached_key]
            self.stats.write_invalidations += len(affected)
            if self._fetching:
                self._pending_notes.append((version, bucket))

    def invalidate(self) -> None:
        """Drop every entry.

        Kept as the manual escape hatch for mutations that bypass the file
        interface (writes through ``insert``/``delete`` invalidate
        automatically).  Also drops the batch engine's cached present
        sets, which share this escape-hatch contract.
        """
        with self._lock:
            self._entries.clear()
        if self._engine is not None:
            self._engine.invalidate()

    def close(self) -> None:
        """Detach from the file's write notifications (long-lived files
        outliving short-lived caches should not accumulate listeners)."""
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
