"""Subsumption-aware query result cache.

Partial match workloads are repetitive, and their queries order naturally
by containment: a cached broad result can answer any narrower query locally
(filter by bucket membership) without touching the devices.  This executor
wraps :class:`~repro.storage.executor.QueryExecutor` with an LRU cache keyed
by query and consulted through :func:`repro.query.algebra.subsumes`.

Cache entries store ``(bucket, records)`` pairs, so answering a subsumed
query is a dictionary-free scan of the cached buckets against the narrower
predicate — no rehashing of records required.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.hashing.fields import Bucket
from repro.query.algebra import subsumes
from repro.query.partial_match import PartialMatchQuery
from repro.storage.parallel_file import PartitionedFile

__all__ = ["CacheStats", "CachedExecutor"]


@dataclass
class CacheStats:
    """Hit/miss accounting for one cached executor."""

    exact_hits: int = 0
    subsumption_hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.exact_hits + self.subsumption_hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return (self.exact_hits + self.subsumption_hits) / self.lookups


@dataclass
class _Entry:
    """One cached result: the qualified buckets with their records."""

    buckets: dict[Bucket, tuple[object, ...]] = field(default_factory=dict)


class CachedExecutor:
    """LRU, subsumption-aware caching front for partial match execution.

    Correctness caveat shared by every result cache: entries reflect the
    file at execution time; call :meth:`invalidate` after writes.

    >>> from repro import FileSystem, FXDistribution
    >>> fs = FileSystem.of(4, 4, m=4)
    >>> pf = PartitionedFile(FXDistribution(fs))
    >>> __ = pf.insert((1, 2))
    >>> cached = CachedExecutor(pf, capacity=8)
    >>> broad = PartialMatchQuery.from_dict(fs, {})
    >>> narrow = pf.query({0: 1})
    >>> __ = cached.execute(broad)       # miss: hits the devices
    >>> __ = cached.execute(narrow)      # answered from the broad entry
    >>> cached.stats.subsumption_hits
    1
    """

    def __init__(self, partitioned_file: PartitionedFile, capacity: int = 32):
        if capacity < 1:
            raise ConfigurationError("cache capacity must be at least 1")
        self.file = partitioned_file
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: OrderedDict[PartialMatchQuery, _Entry] = OrderedDict()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, query: PartialMatchQuery) -> list[object]:
        """Records of *query*'s qualified buckets, cached when possible."""
        entry = self._entries.get(query)
        if entry is not None:
            self._entries.move_to_end(query)
            self.stats.exact_hits += 1
            return self._collect(entry, query)
        for cached_query in reversed(self._entries):
            if subsumes(cached_query, query):
                self._entries.move_to_end(cached_query)
                self.stats.subsumption_hits += 1
                return self._collect(self._entries[cached_query], query)
        self.stats.misses += 1
        entry = self._fetch(query)
        self._entries[query] = entry
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return self._collect(entry, query)

    def _fetch(self, query: PartialMatchQuery) -> _Entry:
        """Read the query from the devices, keeping per-bucket grouping."""
        entry = _Entry()
        method = self.file.method
        for device in self.file.devices:
            assigned = list(
                method.qualified_on_device(device.device_id, query)
            )
            device.read_buckets(assigned)
            for bucket in assigned:
                entry.buckets[bucket] = device.store.records_in(bucket)
        return entry

    def _collect(self, entry: _Entry, query: PartialMatchQuery) -> list[object]:
        records: list[object] = []
        for bucket, bucket_records in entry.buckets.items():
            if query.matches(bucket):
                records.extend(bucket_records)
        return records

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop every entry (call after any write to the file)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
