"""Page-structured local bucket storage with overflow chains.

The hash-directory store counts *buckets*; real 1980s devices charged by
*pages*.  In the multi-directory hashing line the paper builds on [PrDa86],
each bucket owns a primary page and a chain of overflow pages; retrieval
cost is the chain length, and deletions leave holes until a compaction run.
This store models exactly that, so device service times can be priced in
page reads rather than bucket touches.

Interface-compatible with :class:`~repro.storage.bucket_store.BucketStore`
plus page-level accounting (:meth:`pages_in`, :attr:`page_count`,
:meth:`average_chain_length`, :meth:`compact`).
"""

from __future__ import annotations

from ast import literal_eval
from collections.abc import Iterable, Iterator

import numpy as np

from repro.errors import ConfigurationError, StorageError
from repro.hashing.fields import Bucket
from repro.storage.bucket_store import content_digest

__all__ = ["PagedBucketStore", "PackedPageStore"]


class _Chain:
    """One bucket's page chain: a list of fixed-capacity pages."""

    __slots__ = ("pages",)

    def __init__(self) -> None:
        self.pages: list[list[object]] = []

    def record_count(self) -> int:
        return sum(len(page) for page in self.pages)


class PagedBucketStore:
    """Bucket-to-records store accounted in pages.

    >>> store = PagedBucketStore(page_capacity=2)
    >>> for i in range(5):
    ...     store.insert((0,), f"r{i}")
    >>> store.pages_in((0,))       # 5 records / 2 per page -> 3 pages
    3
    """

    def __init__(self, page_capacity: int = 4):
        if page_capacity < 1:
            raise ConfigurationError("page capacity must be at least 1")
        self.page_capacity = page_capacity
        self._chains: dict[Bucket, _Chain] = {}
        self._record_count = 0

    # ------------------------------------------------------------------
    # BucketStore interface
    # ------------------------------------------------------------------
    def insert(self, bucket: Bucket, record: object) -> None:
        """Append to the first page with room, else open an overflow page."""
        chain = self._chains.setdefault(tuple(bucket), _Chain())
        for page in chain.pages:
            if len(page) < self.page_capacity:
                page.append(record)
                break
        else:
            chain.pages.append([record])
        self._record_count += 1

    def delete(self, bucket: Bucket, record: object) -> bool:
        """Remove one occurrence; the hole persists until :meth:`compact`."""
        chain = self._chains.get(tuple(bucket))
        if chain is None:
            return False
        for page in chain.pages:
            try:
                page.remove(record)
            except ValueError:
                continue
            self._record_count -= 1
            if chain.record_count() == 0:
                del self._chains[tuple(bucket)]
            return True
        return False

    def clear(self) -> None:
        self._chains.clear()
        self._record_count = 0

    def replace_bucket(self, bucket: Bucket, records: Iterable[object]) -> None:
        """Set the exact contents of *bucket*, laid out densely (the
        repair/rebuild path); empty *records* removes the chain."""
        key = tuple(bucket)
        old = self._chains.pop(key, None)
        if old is not None:
            self._record_count -= old.record_count()
        fresh = list(records)
        if fresh:
            chain = _Chain()
            chain.pages = [
                fresh[i : i + self.page_capacity]
                for i in range(0, len(fresh), self.page_capacity)
            ]
            self._chains[key] = chain
            self._record_count += len(fresh)

    def records_in(self, bucket: Bucket) -> tuple[object, ...]:
        chain = self._chains.get(tuple(bucket))
        if chain is None:
            return ()
        records: list[object] = []
        for page in chain.pages:
            records.extend(page)
        return tuple(records)

    def has_bucket(self, bucket: Bucket) -> bool:
        return tuple(bucket) in self._chains

    def buckets(self) -> Iterator[Bucket]:
        return iter(self._chains)

    @property
    def record_count(self) -> int:
        return self._record_count

    @property
    def bucket_count(self) -> int:
        return len(self._chains)

    def state_digest(self) -> str:
        """Canonical content digest, independent of page layout (a compacted
        and an uncompacted chain holding the same records digest equal)."""
        return content_digest(
            (bucket, self.records_in(bucket)) for bucket in self._chains
        )

    def check_invariants(self) -> None:
        actual = sum(chain.record_count() for chain in self._chains.values())
        if actual != self._record_count:
            raise StorageError(
                f"record count drifted: cached {self._record_count}, "
                f"actual {actual}"
            )
        for bucket, chain in self._chains.items():
            if not chain.pages:
                raise StorageError(f"bucket {bucket} with an empty chain")
            if any(len(page) > self.page_capacity for page in chain.pages):
                raise StorageError(f"overfull page in bucket {bucket}")
            if chain.record_count() == 0:
                raise StorageError(f"empty chain left behind for {bucket}")

    # ------------------------------------------------------------------
    # Page accounting
    # ------------------------------------------------------------------
    def pages_in(self, bucket: Bucket) -> int:
        """Pages that must be read to retrieve one bucket (0 if absent)."""
        chain = self._chains.get(tuple(bucket))
        return len(chain.pages) if chain else 0

    @property
    def page_count(self) -> int:
        """Total pages allocated on this store."""
        return sum(len(chain.pages) for chain in self._chains.values())

    def average_chain_length(self) -> float:
        """Mean pages per non-empty bucket (1.0 = no overflow anywhere)."""
        if not self._chains:
            return 0.0
        return self.page_count / len(self._chains)

    def occupancy(self) -> float:
        """Fraction of allocated page slots actually holding records."""
        pages = self.page_count
        if pages == 0:
            return 0.0
        return self._record_count / (pages * self.page_capacity)

    def compact(self) -> int:
        """Repack every chain densely; returns the number of pages freed.

        The maintenance operation that undoes deletion holes: records are
        re-laid into the minimum number of pages, preserving order.
        """
        freed = 0
        for chain in self._chains.values():
            records: list[object] = []
            for page in chain.pages:
                records.extend(page)
            new_pages = [
                records[i : i + self.page_capacity]
                for i in range(0, len(records), self.page_capacity)
            ]
            freed += len(chain.pages) - len(new_pages)
            chain.pages = new_pages
        return freed


class _PackedPage:
    """One page as serialised bytes: records laid end to end in a buffer.

    ``ends[k]`` is the byte offset one past record *k*'s encoding, so the
    *k*-th record occupies ``buf[ends[k-1]:ends[k]]``.  ``cache`` memoises
    the decoded records; any buffer mutation drops it.
    """

    __slots__ = ("buf", "ends", "cache")

    def __init__(self) -> None:
        self.buf = bytearray()
        self.ends: list[int] = []
        self.cache: tuple[object, ...] | None = None

    def decode(self) -> tuple[object, ...]:
        if self.cache is None:
            start = 0
            records = []
            for end in self.ends:
                records.append(
                    literal_eval(bytes(self.buf[start:end]).decode("utf-8"))
                )
                start = end
            self.cache = tuple(records)
        return self.cache


def _encode_record(record: object) -> bytes:
    return repr(record).encode("utf-8")


class PackedPageStore:
    """Page store whose pages are byte buffers, not lists of objects.

    The zero-copy counterpart of :class:`PagedBucketStore`: each page is a
    ``bytearray`` holding the canonical encodings (``repr``) of its records
    laid end to end.  Because the buffer *is* the stored state, integrity
    machinery can run directly over it — :meth:`page_views` exposes each
    page as a :class:`memoryview` and :meth:`page_array` as a
    ``numpy.frombuffer`` byte array, so CRC and scrub passes touch the
    bytes without decoding (or copying) a single record.  Decoding is lazy
    and memoised per page; mutations drop only the affected page's cache.

    Records must round-trip through ``repr``/``ast.literal_eval`` — true
    for this repository's record convention (tuples of ints and strings)
    and checked at insert time, so a non-literal record fails fast rather
    than corrupting a page.

    Same interface and page accounting as :class:`PagedBucketStore`;
    deletes re-encode the one affected page densely, so chains never carry
    holes (``compact`` only merges underfull pages).

    >>> store = PackedPageStore(page_capacity=2)
    >>> for i in range(5):
    ...     store.insert((0,), (i, "r"))
    >>> store.pages_in((0,))
    3
    >>> store.records_in((0,))[:2]
    ((0, 'r'), (1, 'r'))
    """

    def __init__(self, page_capacity: int = 4):
        if page_capacity < 1:
            raise ConfigurationError("page capacity must be at least 1")
        self.page_capacity = page_capacity
        self._pages: dict[Bucket, list[_PackedPage]] = {}
        self._record_count = 0

    # ------------------------------------------------------------------
    # BucketStore interface
    # ------------------------------------------------------------------
    def insert(self, bucket: Bucket, record: object) -> None:
        encoded = _encode_record(record)
        try:
            decoded = literal_eval(encoded.decode("utf-8"))
        except (ValueError, SyntaxError):
            raise StorageError(
                f"record {record!r} does not round-trip through the "
                f"canonical literal encoding"
            ) from None
        if decoded != record:
            raise StorageError(
                f"record {record!r} decodes to {decoded!r}; refusing a "
                f"lossy encoding"
            )
        chain = self._pages.setdefault(tuple(bucket), [])
        for page in chain:
            if len(page.ends) < self.page_capacity:
                break
        else:
            page = _PackedPage()
            chain.append(page)
        page.buf.extend(encoded)
        page.ends.append(len(page.buf))
        page.cache = None
        self._record_count += 1

    def delete(self, bucket: Bucket, record: object) -> bool:
        """Remove one occurrence, re-encoding the affected page densely."""
        key = tuple(bucket)
        chain = self._pages.get(key)
        if chain is None:
            return False
        for page in chain:
            records = list(page.decode())
            try:
                records.remove(record)
            except ValueError:
                continue
            self._record_count -= 1
            self._repack_page(page, records)
            # Like the tuple-paged store, an emptied page persists until
            # compact() — dropping it would shift where the next insert
            # lands and break layout lockstep with PagedBucketStore.
            if all(not p.ends for p in chain):
                del self._pages[key]
            return True
        return False

    def clear(self) -> None:
        self._pages.clear()
        self._record_count = 0

    def replace_bucket(self, bucket: Bucket, records: Iterable[object]) -> None:
        key = tuple(bucket)
        old = self._pages.pop(key, None)
        if old is not None:
            self._record_count -= sum(len(page.ends) for page in old)
        fresh = list(records)
        if fresh:
            chain: list[_PackedPage] = []
            for i in range(0, len(fresh), self.page_capacity):
                page = _PackedPage()
                self._repack_page(page, fresh[i : i + self.page_capacity])
                chain.append(page)
            self._pages[key] = chain
            self._record_count += len(fresh)

    def records_in(self, bucket: Bucket) -> tuple[object, ...]:
        chain = self._pages.get(tuple(bucket))
        if chain is None:
            return ()
        records: list[object] = []
        for page in chain:
            records.extend(page.decode())
        return tuple(records)

    def has_bucket(self, bucket: Bucket) -> bool:
        return tuple(bucket) in self._pages

    def buckets(self) -> Iterator[Bucket]:
        return iter(self._pages)

    @property
    def record_count(self) -> int:
        return self._record_count

    @property
    def bucket_count(self) -> int:
        return len(self._pages)

    def state_digest(self) -> str:
        return content_digest(
            (bucket, self.records_in(bucket)) for bucket in self._pages
        )

    def check_invariants(self) -> None:
        actual = sum(
            len(page.ends)
            for chain in self._pages.values()
            for page in chain
        )
        if actual != self._record_count:
            raise StorageError(
                f"record count drifted: cached {self._record_count}, "
                f"actual {actual}"
            )
        for bucket, chain in self._pages.items():
            if not chain:
                raise StorageError(f"bucket {bucket} with an empty chain")
            if all(not page.ends for page in chain):
                # Holes persist until compact(), but a chain of *only*
                # holes means the bucket should have been dropped.
                raise StorageError(f"bucket {bucket} holds no records")
            for page in chain:
                if len(page.ends) > self.page_capacity:
                    raise StorageError(f"overfull page in bucket {bucket}")
                if page.ends != sorted(page.ends) or (
                    page.ends[-1] if page.ends else 0
                ) != len(page.buf):
                    raise StorageError(
                        f"page offsets inconsistent in bucket {bucket}"
                    )

    # ------------------------------------------------------------------
    # Zero-copy access
    # ------------------------------------------------------------------
    def page_views(self, bucket: Bucket) -> list[memoryview]:
        """Each page of *bucket* as a :class:`memoryview` (no copying).

        The buffers these views alias are the live stored state — they are
        what checksums should cover, and what corruption would hit.  The
        views are read-only: aliasing is for verification, not mutation
        (damage goes through :meth:`corrupt_bucket` on the checksummed
        subclass).
        """
        chain = self._pages.get(tuple(bucket))
        if chain is None:
            return []
        return [memoryview(page.buf).toreadonly() for page in chain]

    def page_array(self, bucket: Bucket, page_index: int) -> np.ndarray:
        """One page's bytes as a read-only ``uint8`` NumPy view."""
        chain = self._pages.get(tuple(bucket))
        if chain is None or not 0 <= page_index < len(chain):
            raise StorageError(
                f"bucket {tuple(bucket)} has no page {page_index}"
            )
        array = np.frombuffer(chain[page_index].buf, dtype=np.uint8)
        array.flags.writeable = False
        return array

    # ------------------------------------------------------------------
    # Page accounting
    # ------------------------------------------------------------------
    def pages_in(self, bucket: Bucket) -> int:
        chain = self._pages.get(tuple(bucket))
        return len(chain) if chain else 0

    @property
    def page_count(self) -> int:
        return sum(len(chain) for chain in self._pages.values())

    def average_chain_length(self) -> float:
        if not self._pages:
            return 0.0
        return self.page_count / len(self._pages)

    def occupancy(self) -> float:
        """Fraction of record slots in use (slots, not bytes: the page
        model charges reads per page regardless of byte fill)."""
        pages = self.page_count
        if pages == 0:
            return 0.0
        return self._record_count / (pages * self.page_capacity)

    def compact(self) -> int:
        """Merge underfull pages left by deletes; returns pages freed."""
        freed = 0
        for chain in self._pages.values():
            records: list[object] = []
            for page in chain:
                records.extend(page.decode())
            old_pages = len(chain)
            chain.clear()
            for i in range(0, len(records), self.page_capacity):
                page = _PackedPage()
                self._repack_page(page, records[i : i + self.page_capacity])
                chain.append(page)
            freed += old_pages - len(chain)
        return freed

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _repack_page(page: _PackedPage, records: list[object]) -> None:
        """Re-encode *records* as *page*'s new dense contents."""
        page.buf = bytearray()
        page.ends = []
        for record in records:
            page.buf.extend(_encode_record(record))
            page.ends.append(len(page.buf))
        page.cache = tuple(records)
