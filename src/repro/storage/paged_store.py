"""Page-structured local bucket storage with overflow chains.

The hash-directory store counts *buckets*; real 1980s devices charged by
*pages*.  In the multi-directory hashing line the paper builds on [PrDa86],
each bucket owns a primary page and a chain of overflow pages; retrieval
cost is the chain length, and deletions leave holes until a compaction run.
This store models exactly that, so device service times can be priced in
page reads rather than bucket touches.

Interface-compatible with :class:`~repro.storage.bucket_store.BucketStore`
plus page-level accounting (:meth:`pages_in`, :attr:`page_count`,
:meth:`average_chain_length`, :meth:`compact`).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import ConfigurationError, StorageError
from repro.hashing.fields import Bucket
from repro.storage.bucket_store import content_digest

__all__ = ["PagedBucketStore"]


class _Chain:
    """One bucket's page chain: a list of fixed-capacity pages."""

    __slots__ = ("pages",)

    def __init__(self) -> None:
        self.pages: list[list[object]] = []

    def record_count(self) -> int:
        return sum(len(page) for page in self.pages)


class PagedBucketStore:
    """Bucket-to-records store accounted in pages.

    >>> store = PagedBucketStore(page_capacity=2)
    >>> for i in range(5):
    ...     store.insert((0,), f"r{i}")
    >>> store.pages_in((0,))       # 5 records / 2 per page -> 3 pages
    3
    """

    def __init__(self, page_capacity: int = 4):
        if page_capacity < 1:
            raise ConfigurationError("page capacity must be at least 1")
        self.page_capacity = page_capacity
        self._chains: dict[Bucket, _Chain] = {}
        self._record_count = 0

    # ------------------------------------------------------------------
    # BucketStore interface
    # ------------------------------------------------------------------
    def insert(self, bucket: Bucket, record: object) -> None:
        """Append to the first page with room, else open an overflow page."""
        chain = self._chains.setdefault(tuple(bucket), _Chain())
        for page in chain.pages:
            if len(page) < self.page_capacity:
                page.append(record)
                break
        else:
            chain.pages.append([record])
        self._record_count += 1

    def delete(self, bucket: Bucket, record: object) -> bool:
        """Remove one occurrence; the hole persists until :meth:`compact`."""
        chain = self._chains.get(tuple(bucket))
        if chain is None:
            return False
        for page in chain.pages:
            try:
                page.remove(record)
            except ValueError:
                continue
            self._record_count -= 1
            if chain.record_count() == 0:
                del self._chains[tuple(bucket)]
            return True
        return False

    def clear(self) -> None:
        self._chains.clear()
        self._record_count = 0

    def replace_bucket(self, bucket: Bucket, records: Iterable[object]) -> None:
        """Set the exact contents of *bucket*, laid out densely (the
        repair/rebuild path); empty *records* removes the chain."""
        key = tuple(bucket)
        old = self._chains.pop(key, None)
        if old is not None:
            self._record_count -= old.record_count()
        fresh = list(records)
        if fresh:
            chain = _Chain()
            chain.pages = [
                fresh[i : i + self.page_capacity]
                for i in range(0, len(fresh), self.page_capacity)
            ]
            self._chains[key] = chain
            self._record_count += len(fresh)

    def records_in(self, bucket: Bucket) -> tuple[object, ...]:
        chain = self._chains.get(tuple(bucket))
        if chain is None:
            return ()
        records: list[object] = []
        for page in chain.pages:
            records.extend(page)
        return tuple(records)

    def has_bucket(self, bucket: Bucket) -> bool:
        return tuple(bucket) in self._chains

    def buckets(self) -> Iterator[Bucket]:
        return iter(self._chains)

    @property
    def record_count(self) -> int:
        return self._record_count

    @property
    def bucket_count(self) -> int:
        return len(self._chains)

    def state_digest(self) -> str:
        """Canonical content digest, independent of page layout (a compacted
        and an uncompacted chain holding the same records digest equal)."""
        return content_digest(
            (bucket, self.records_in(bucket)) for bucket in self._chains
        )

    def check_invariants(self) -> None:
        actual = sum(chain.record_count() for chain in self._chains.values())
        if actual != self._record_count:
            raise StorageError(
                f"record count drifted: cached {self._record_count}, "
                f"actual {actual}"
            )
        for bucket, chain in self._chains.items():
            if not chain.pages:
                raise StorageError(f"bucket {bucket} with an empty chain")
            if any(len(page) > self.page_capacity for page in chain.pages):
                raise StorageError(f"overfull page in bucket {bucket}")
            if chain.record_count() == 0:
                raise StorageError(f"empty chain left behind for {bucket}")

    # ------------------------------------------------------------------
    # Page accounting
    # ------------------------------------------------------------------
    def pages_in(self, bucket: Bucket) -> int:
        """Pages that must be read to retrieve one bucket (0 if absent)."""
        chain = self._chains.get(tuple(bucket))
        return len(chain.pages) if chain else 0

    @property
    def page_count(self) -> int:
        """Total pages allocated on this store."""
        return sum(len(chain.pages) for chain in self._chains.values())

    def average_chain_length(self) -> float:
        """Mean pages per non-empty bucket (1.0 = no overflow anywhere)."""
        if not self._chains:
            return 0.0
        return self.page_count / len(self._chains)

    def occupancy(self) -> float:
        """Fraction of allocated page slots actually holding records."""
        pages = self.page_count
        if pages == 0:
            return 0.0
        return self._record_count / (pages * self.page_capacity)

    def compact(self) -> int:
        """Repack every chain densely; returns the number of pages freed.

        The maintenance operation that undoes deletion holes: records are
        re-laid into the minimum number of pages, preserving order.
        """
        freed = 0
        for chain in self._chains.values():
            records: list[object] = []
            for page in chain.pages:
                records.extend(page)
            new_pages = [
                records[i : i + self.page_capacity]
                for i in range(0, len(records), self.page_capacity)
            ]
            freed += len(chain.pages) - len(new_pages)
            chain.pages = new_pages
        return freed
