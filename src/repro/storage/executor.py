"""Partial match query execution over a partitioned file.

Execution follows the paper's parallel model: every device independently
performs *inverse mapping* (derives which qualified buckets it holds, via
the method's algebraic solver when available) and serves them locally; with
a symmetric interconnect the query completes when the most-loaded device
finishes, so the modelled response time is the maximum per-device service
time.  The executor reports both the retrieved records and the load/timing
diagnostics the paper's evaluation is built on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.envelope import SCHEMA_VERSION
from repro.hashing.fields import Bucket
from repro.obs import telemetry, trace_span
from repro.query.partial_match import PartialMatchQuery
from repro.storage.parallel_file import PartitionedFile
from repro.util.numbers import ceil_div

__all__ = ["ExecutionResult", "QueryExecutor"]


@dataclass
class ExecutionResult:
    """Outcome and diagnostics of one partial match execution."""

    query: PartialMatchQuery
    records: list[object] = field(default_factory=list)
    #: Qualified buckets assigned to each device (by inverse mapping).
    buckets_per_device: list[int] = field(default_factory=list)
    #: Max of buckets_per_device — the paper's largest response size.
    largest_response: int = 0
    #: Modelled wall time: max over devices of their service time.
    response_time_ms: float = 0.0
    #: Sum over devices (what a single-device system would pay).
    total_service_ms: float = 0.0
    strict_optimal: bool = False
    #: Execution provenance: ``"serial"`` (one query through
    #: :class:`QueryExecutor`) or ``"batched"`` (assembled by the array
    #: engine, :class:`repro.engine.BatchEngine`).  Results are
    #: byte-identical either way; the marker lets ``obs check`` and the
    #: CLI tell which path served a query.
    mode: str = "serial"

    @property
    def speedup(self) -> float:
        """Parallel speedup over serial execution of the same work.

        Degenerate cases are reported honestly: no work at all (both times
        zero) is a neutral 1.0, but non-zero serial work finished in zero
        modelled response time is unbounded speedup, not 1.0.
        """
        if self.response_time_ms == 0.0:
            return float("inf") if self.total_service_ms > 0.0 else 1.0
        return self.total_service_ms / self.response_time_ms

    def to_dict(self) -> dict:
        """JSON-ready summary: every diagnostic, records by count only.

        The single marshalling point shared by the CLI's ``--json`` output,
        the simulator and the fault runtime — subclasses extend it rather
        than re-listing fields.  The leading ``"v"`` is the process-wide
        envelope version (:mod:`repro.envelope`), shared with the gateway
        wire protocol and ``obs export``.
        """
        return {
            "v": SCHEMA_VERSION,
            "query": self.query.describe(),
            "records": len(self.records),
            "buckets_per_device": list(self.buckets_per_device),
            "largest_response": self.largest_response,
            "response_time_ms": round(self.response_time_ms, 6),
            "total_service_ms": round(self.total_service_ms, 6),
            "speedup": round(self.speedup, 6),
            "strict_optimal": self.strict_optimal,
            "mode": self.mode,
        }

    def summary(self) -> str:
        return (
            f"{self.query.describe()}: {len(self.records)} records, "
            f"largest response {self.largest_response}, "
            f"time {self.response_time_ms:.2f} ms "
            f"({'strict optimal' if self.strict_optimal else 'skewed'})"
        )


class QueryExecutor:
    """Executes partial match queries against a :class:`PartitionedFile`."""

    def __init__(self, partitioned_file: PartitionedFile):
        self.file = partitioned_file

    def execute(self, query: PartialMatchQuery) -> ExecutionResult:
        """Run one query through every device and assemble the result."""
        method = self.file.method

        def assigned_to(device_id: int) -> list[Bucket]:
            return list(method.qualified_on_device(device_id, query))

        return self._run(query, query.qualified_count, assigned_to)

    def execute_box(self, box) -> ExecutionResult:
        """Run a :class:`~repro.query.box.BoxQuery` (ranges / IN-lists).

        Requires a separable method (the algebraic box inverse mapping);
        the result's ``query`` field carries the box itself.
        """
        from repro.analysis.box import box_qualified_on_device

        method = self.file.method

        def assigned_to(device_id: int) -> list[Bucket]:
            return list(box_qualified_on_device(method, device_id, box))

        return self._run(box, box.qualified_count, assigned_to)

    def _run(self, query, qualified_count: int, assigned_to) -> ExecutionResult:
        result = ExecutionResult(query=query)
        with trace_span(
            "query.execute", query=query.describe(), qualified=qualified_count
        ) as span:
            for device in self.file.devices:
                assigned = assigned_to(device.device_id)
                records = device.read_buckets(assigned)
                service = device.cost_model.service_time(len(assigned))
                result.records.extend(records)
                result.buckets_per_device.append(len(assigned))
                result.total_service_ms += service
                result.response_time_ms = max(result.response_time_ms, service)
                span.add_event(
                    "device",
                    device=device.device_id,
                    buckets=len(assigned),
                    service_ms=round(service, 6),
                )
            result.largest_response = max(result.buckets_per_device, default=0)
            bound = ceil_div(qualified_count, self.file.filesystem.m)
            result.strict_optimal = result.largest_response <= bound
            # The paper's metric, observed: per-device qualified buckets and
            # the modelled response, straight into the telemetry store.
            span.set_attr("buckets_per_device", list(result.buckets_per_device))
            span.set_attr("largest_response", result.largest_response)
            span.set_attr("strict_optimal", result.strict_optimal)
            span.set_attr("response_ms", round(result.response_time_ms, 6))
        metrics = telemetry().metrics
        metrics.add("query.executed")
        metrics.add("query.buckets_read", sum(result.buckets_per_device))
        metrics.observe("query.response_ms", result.response_time_ms)
        metrics.observe("query.largest_response", result.largest_response)
        return result
