"""Discrete-event simulation of a concurrent partial-match workload.

The paper's response-time analysis is one-query-at-a-time: the largest
response size decides everything.  Real arrays serve a *stream* of queries,
where a skewed distribution hurts twice — the slow query itself, and the
queueing it inflicts on every later query that needs the hot device.  This
simulator quantifies that second-order effect.

Model: each query fans out into one task per device (the device's share of
qualified buckets, from inverse mapping).  Devices are work-conserving FIFO
servers processing one task at a time; a query completes when its last task
does.  Deterministic given the arrival sequence, so results are exactly
reproducible.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.distribution.base import DistributionMethod
from repro.errors import ConfigurationError
from repro.query.partial_match import PartialMatchQuery
from repro.query.workload import QueryWorkload, WorkloadSpec
from repro.storage.costs import DeviceCostModel, UnitCostModel

__all__ = [
    "QueryArrival",
    "SimulatedQuery",
    "SimulationReport",
    "ParallelQuerySimulator",
    "poisson_arrivals",
]


@dataclass(frozen=True)
class QueryArrival:
    """One workload element: a query and its arrival time (ms).

    *query* is a :class:`~repro.query.partial_match.PartialMatchQuery` or,
    for range workloads on separable methods, a
    :class:`~repro.query.box.BoxQuery`.
    """

    query: object
    arrival_ms: float


@dataclass(frozen=True)
class SimulatedQuery:
    """Per-query outcome of a simulation run."""

    arrival_ms: float
    completion_ms: float
    service_ms: float      # response time on an idle array (max task)
    largest_response: int
    #: Fraction of the query's qualified buckets actually served; 1.0
    #: outside the fault runtime (see repro.runtime.simulation).
    completeness: float = 1.0

    @property
    def latency_ms(self) -> float:
        return self.completion_ms - self.arrival_ms

    @property
    def queueing_ms(self) -> float:
        """Time lost to contention beyond the idle-array service time."""
        return self.latency_ms - self.service_ms


@dataclass
class SimulationReport:
    """Aggregate outcome of one simulation run."""

    queries: list[SimulatedQuery] = field(default_factory=list)
    device_busy_ms: list[float] = field(default_factory=list)
    makespan_ms: float = 0.0
    # Fault-runtime tallies; all zero outside repro.runtime.simulation.
    failed_devices: tuple[int, ...] = ()
    retries: int = 0
    timeouts: int = 0
    failovers: int = 0
    lost_buckets: int = 0

    @property
    def mean_latency_ms(self) -> float:
        if not self.queries:
            return 0.0
        return sum(q.latency_ms for q in self.queries) / len(self.queries)

    @property
    def max_latency_ms(self) -> float:
        return max((q.latency_ms for q in self.queries), default=0.0)

    @property
    def mean_queueing_ms(self) -> float:
        if not self.queries:
            return 0.0
        return sum(q.queueing_ms for q in self.queries) / len(self.queries)

    @property
    def throughput_qps(self) -> float:
        """Completed queries per second of makespan."""
        if self.makespan_ms == 0.0:
            return 0.0
        return 1000.0 * len(self.queries) / self.makespan_ms

    def latency_percentile(self, q: float) -> float:
        """Latency at quantile ``q`` in [0, 1] (nearest-rank)."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile {q} outside [0, 1]")
        if not self.queries:
            return 0.0
        ordered = sorted(query.latency_ms for query in self.queries)
        rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[rank]

    def utilisation(self) -> list[float]:
        """Busy fraction per device over the makespan."""
        if self.makespan_ms == 0.0:
            return [0.0] * len(self.device_busy_ms)
        return [busy / self.makespan_ms for busy in self.device_busy_ms]

    @property
    def mean_completeness(self) -> float:
        """Average served fraction over the stream (1.0 = nothing lost)."""
        if not self.queries:
            return 1.0
        return sum(q.completeness for q in self.queries) / len(self.queries)

    def to_dict(self) -> dict:
        """JSON-ready summary shared by the CLI tables and ``--json``."""
        return {
            "queries": len(self.queries),
            "mean_latency_ms": round(self.mean_latency_ms, 6),
            "max_latency_ms": round(self.max_latency_ms, 6),
            "p95_latency_ms": round(self.latency_percentile(0.95), 6),
            "mean_queueing_ms": round(self.mean_queueing_ms, 6),
            "throughput_qps": round(self.throughput_qps, 6),
            "makespan_ms": round(self.makespan_ms, 6),
            "utilisation": [round(u, 6) for u in self.utilisation()],
            "mean_completeness": round(self.mean_completeness, 6),
            "failed_devices": sorted(self.failed_devices),
            "retries": self.retries,
            "timeouts": self.timeouts,
            "failovers": self.failovers,
            "lost_buckets": self.lost_buckets,
        }


class ParallelQuerySimulator:
    """FIFO per-device simulation of a query stream under one method.

    >>> from repro import FileSystem, FXDistribution, PartialMatchQuery
    >>> fs = FileSystem.of(4, 4, m=4)
    >>> sim = ParallelQuerySimulator(FXDistribution(fs))
    >>> q = PartialMatchQuery.full_scan(fs)
    >>> report = sim.run([QueryArrival(q, 0.0), QueryArrival(q, 0.0)])
    >>> len(report.queries)
    2
    """

    def __init__(
        self,
        method: DistributionMethod,
        cost_model: DeviceCostModel | None = None,
        speed_factors: list[float] | None = None,
    ):
        self.method = method
        self.cost_model = cost_model or UnitCostModel()
        m = method.filesystem.m
        if speed_factors is None:
            speed_factors = [1.0] * m
        if len(speed_factors) != m or any(f <= 0 for f in speed_factors):
            raise ConfigurationError(
                f"need {m} positive speed factors, got {speed_factors!r}"
            )
        #: Relative device speeds; the paper assumes a symmetric array
        #: (all 1.0).  A factor of 0.5 models a half-speed straggler.
        self.speed_factors = list(speed_factors)

    def run(self, arrivals: Iterable[QueryArrival]) -> SimulationReport:
        """Process *arrivals* (sorted by time internally) to completion."""
        from repro.obs import telemetry, trace_span

        ordered = sorted(arrivals, key=lambda a: a.arrival_ms)
        m = self.method.filesystem.m
        device_free_at = [0.0] * m
        device_busy = [0.0] * m
        report = SimulationReport(device_busy_ms=[0.0] * m)

        with trace_span(
            "simulate.run",
            method=self.method.name or type(self.method).__name__,
            queries=len(ordered),
        ) as span:
            self._run_stream(ordered, device_free_at, device_busy, report)
            span.set_attr("makespan_ms", round(report.makespan_ms, 6))
            span.set_attr(
                "mean_latency_ms", round(report.mean_latency_ms, 6)
            )
        metrics = telemetry().metrics
        for simulated in report.queries:
            metrics.observe("simulate.latency_ms", simulated.latency_ms)
        return report

    def _run_stream(
        self, ordered, device_free_at, device_busy, report
    ) -> None:
        for arrival in ordered:
            if arrival.arrival_ms < 0:
                raise ConfigurationError("arrival times must be non-negative")
            histogram = self._histogram_of(arrival.query)
            completion = arrival.arrival_ms
            idle_service = 0.0
            for device, bucket_count in enumerate(histogram):
                if bucket_count == 0:
                    continue
                service = (
                    self.cost_model.service_time(bucket_count)
                    / self.speed_factors[device]
                )
                idle_service = max(idle_service, service)
                start = max(arrival.arrival_ms, device_free_at[device])
                finish = start + service
                device_free_at[device] = finish
                device_busy[device] += service
                completion = max(completion, finish)
            report.queries.append(
                SimulatedQuery(
                    arrival_ms=arrival.arrival_ms,
                    completion_ms=completion,
                    service_ms=idle_service,
                    largest_response=max(histogram, default=0),
                )
            )
            report.makespan_ms = max(report.makespan_ms, completion)
        report.device_busy_ms = device_busy

    def _histogram_of(self, query) -> list[int]:
        """Per-device load of one workload element (partial match or box)."""
        from repro.query.box import BoxQuery

        if isinstance(query, BoxQuery):
            from repro.analysis.box import box_response_histogram
            from repro.distribution.base import SeparableMethod

            if not isinstance(self.method, SeparableMethod):
                raise ConfigurationError(
                    "box arrivals need a separable method"
                )
            return box_response_histogram(self.method, query)
        self.method._check_query(query)
        return self.method.response_histogram(query)


def poisson_arrivals(
    workload: QueryWorkload | Sequence[PartialMatchQuery],
    count: int,
    rate_qps: float,
    seed: int = 0,
) -> list[QueryArrival]:
    """Draw *count* arrivals with exponential inter-arrival times.

    *workload* is either a :class:`~repro.query.workload.QueryWorkload`
    (queries drawn fresh) or a fixed sequence cycled through.

    >>> from repro import FileSystem
    >>> fs = FileSystem.of(4, 4, m=4)
    >>> wl = QueryWorkload(fs, WorkloadSpec(seed=1))
    >>> arrivals = poisson_arrivals(wl, 10, rate_qps=100.0, seed=2)
    >>> len(arrivals)
    10
    """
    if count < 0:
        raise ConfigurationError("count must be non-negative")
    if rate_qps <= 0:
        raise ConfigurationError("rate must be positive")
    rng = random.Random(seed)
    now = 0.0
    arrivals = []
    for i in range(count):
        now += rng.expovariate(rate_qps) * 1000.0
        if isinstance(workload, QueryWorkload):
            query = workload.next_query()
        else:
            query = workload[i % len(workload)]
        arrivals.append(QueryArrival(query=query, arrival_ms=now))
    return arrivals
