"""One simulated parallel device with access accounting.

Devices are deliberately dumb: they store buckets, serve bucket reads and
track counters.  The intelligence (which buckets live where, which buckets a
query needs from this device) sits in the distribution method and the
executor — mirroring the paper's claim that each device performs its own
inverse mapping and local retrieval independently.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DeviceFullError
from repro.hashing.fields import Bucket
from repro.storage.bucket_store import BucketStore
from repro.storage.costs import DeviceCostModel, UnitCostModel

__all__ = ["SimulatedDevice", "DeviceStats"]


@dataclass
class DeviceStats:
    """Cumulative counters of one device."""

    inserts: int = 0
    deletes: int = 0
    bucket_reads: int = 0
    records_returned: int = 0
    busy_time_ms: float = 0.0

    def reset(self) -> None:
        self.inserts = 0
        self.deletes = 0
        self.bucket_reads = 0
        self.records_returned = 0
        self.busy_time_ms = 0.0


class SimulatedDevice:
    """A storage node: a bucket store plus a service-time model.

    *capacity* optionally bounds the record count so tests can exercise the
    overflow path (a real array of 1988 Winchester disks was finite, after
    all).
    """

    def __init__(
        self,
        device_id: int,
        cost_model: DeviceCostModel | None = None,
        capacity: int | None = None,
        store: BucketStore | None = None,
    ):
        self.device_id = device_id
        self.cost_model = cost_model or UnitCostModel()
        self.capacity = capacity
        # Any object with the BucketStore interface works; the B-tree store
        # (repro.storage.btree_store) is the ordered alternative.
        self.store = store if store is not None else BucketStore()
        self.stats = DeviceStats()

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, bucket: Bucket, record: object) -> None:
        if self.capacity is not None and self.store.record_count >= self.capacity:
            raise DeviceFullError(
                f"device {self.device_id} at capacity ({self.capacity} records)"
            )
        self.store.insert(bucket, record)
        self.stats.inserts += 1

    def delete(self, bucket: Bucket, record: object) -> bool:
        removed = self.store.delete(bucket, record)
        if removed:
            self.stats.deletes += 1
        return removed

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def read_buckets(self, buckets: list[Bucket]) -> list[object]:
        """Serve one retrieval request: return all records of *buckets*.

        Accounts the service time of the whole batch (one logical request,
        as in the paper's one-query-at-a-time model).  With a page-aware
        store (:class:`~repro.storage.paged_store.PagedBucketStore`) the
        cost unit is pages read — overflow chains cost extra — otherwise
        it is buckets touched.
        """
        records: list[object] = []
        cost_units = 0
        page_aware = hasattr(self.store, "pages_in")
        for bucket in buckets:
            records.extend(self.store.records_in(bucket))
            if page_aware:
                cost_units += self.store.pages_in(bucket)
        if not page_aware:
            cost_units = len(buckets)
        self.stats.bucket_reads += len(buckets)
        self.stats.records_returned += len(records)
        self.stats.busy_time_ms += self.cost_model.service_time(cost_units)
        if buckets:
            from repro.obs import telemetry

            metrics = telemetry().metrics
            metrics.add("storage.bucket_reads", len(buckets))
            metrics.add("storage.records_returned", len(records))
        return records

    @property
    def record_count(self) -> int:
        return self.store.record_count

    def state_digest(self) -> str:
        """Canonical content digest of this device's store (any store type)."""
        if hasattr(self.store, "state_digest"):
            return self.store.state_digest()
        from repro.storage.bucket_store import content_digest

        return content_digest(
            (bucket, self.store.records_in(bucket))
            for bucket in self.store.buckets()
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SimulatedDevice(id={self.device_id}, "
            f"records={self.store.record_count}, "
            f"buckets={self.store.bucket_count})"
        )
