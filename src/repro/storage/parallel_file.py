"""A multi-key hashed file partitioned over M simulated devices.

:class:`PartitionedFile` ties the substrate together: records are hashed to
bucket addresses by a :class:`~repro.hashing.multikey.MultiKeyHash`, bucket
addresses are mapped to devices by a
:class:`~repro.distribution.base.DistributionMethod`, and each device stores
its share locally.  Partial match search goes through
:class:`~repro.storage.executor.QueryExecutor`.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Mapping, Sequence

from repro.distribution.base import DistributionMethod
from repro.errors import ConfigurationError, StorageError
from repro.hashing.fields import Bucket
from repro.hashing.multikey import MultiKeyHash
from repro.query.partial_match import PartialMatchQuery
from repro.storage.costs import DeviceCostModel
from repro.storage.device import SimulatedDevice

__all__ = ["PartitionedFile", "WriteNotifier"]


class WriteNotifier:
    """Write-versioned listener registry shared by the file classes.

    Every mutation (one record inserted or deleted) advances a monotonically
    increasing *write version* and is announced, with its bucket, to every
    registered listener — the hook result caches use to invalidate exactly
    the entries a write could have changed (see
    :class:`~repro.storage.cache.CachedExecutor`).  The mutation lock makes
    a record-level mutation plus its version bump atomic with respect to
    readers that acquire the same lock (:meth:`read_locked`), which is what
    the serving layer's zero-stale-reads guarantee is built on.

    Ordering is the load-bearing part: :meth:`_publish` notifies listeners
    *before* the new version becomes visible in :attr:`write_version`, all
    under the mutation lock.  Any request that observes version ``v`` is
    therefore guaranteed that ``v``'s cache invalidations already ran — a
    cache hit can never serve data that predates a write the caller has
    already seen.  (Publishing first and notifying late reopens exactly
    that window; the concurrency soak in ``tests/test_service.py`` caught
    it.)  Listeners must not acquire locks that readers hold while waiting
    for the mutation lock; the result cache keeps that rule by never
    fetching under its own lock.
    """

    def __init__(self) -> None:
        self._mutation_lock = threading.RLock()
        self._listeners: list[Callable[[Bucket, int], None]] = []
        self._write_version = 0

    @property
    def write_version(self) -> int:
        """Count of completed record-level mutations (monotonic)."""
        return self._write_version

    def read_locked(self):
        """Context manager serialising a read against mutations."""
        return self._mutation_lock

    def subscribe(self, listener: Callable[[Bucket, int], None]) -> Callable[[], None]:
        """Register ``listener(bucket, version)``; returns an unsubscriber.

        Listeners run under the file's mutation lock, after the mutation is
        applied but before its version is published.
        """
        with self._mutation_lock:
            self._listeners.append(listener)

        def unsubscribe() -> None:
            with self._mutation_lock:
                if listener in self._listeners:
                    self._listeners.remove(listener)

        return unsubscribe

    def _publish(self, bucket: Bucket) -> int:
        """Announce one applied mutation, then make its version visible.

        Call while holding the mutation lock, after the device-level write.
        Notify-then-publish ensures no reader can observe the new version
        while a cache still holds an entry the write invalidated.
        """
        version = self._write_version + 1
        for listener in list(self._listeners):
            listener(bucket, version)
        self._write_version = version
        return version


class PartitionedFile(WriteNotifier):
    """Records distributed over parallel devices for partial match retrieval.

    >>> from repro import FileSystem, FXDistribution
    >>> fs = FileSystem.of(4, 8, m=4)
    >>> pf = PartitionedFile(FXDistribution(fs))
    >>> bucket = pf.insert((17, "widget"))
    >>> pf.record_count
    1
    """

    def __init__(
        self,
        method: DistributionMethod,
        multikey_hash: MultiKeyHash | None = None,
        cost_model: DeviceCostModel | None = None,
        device_capacity: int | None = None,
        store_factory: "Callable[[], object] | None" = None,
    ):
        super().__init__()
        self.method = method
        self.filesystem = method.filesystem
        self.multikey_hash = multikey_hash or MultiKeyHash.default(self.filesystem)
        if self.multikey_hash.filesystem != self.filesystem:
            raise ConfigurationError(
                "multi-key hash and distribution method target different "
                "file systems"
            )
        self.devices = [
            SimulatedDevice(
                d,
                cost_model=cost_model,
                capacity=device_capacity,
                store=store_factory() if store_factory else None,
            )
            for d in range(self.filesystem.m)
        ]

    # ------------------------------------------------------------------
    # Record operations
    # ------------------------------------------------------------------
    def insert(self, record: Sequence[object]) -> Bucket:
        """Hash *record*, route its bucket to a device, store it there.

        The write advances :attr:`write_version` and notifies registered
        caches (see :class:`WriteNotifier`).  Returns the bucket address for
        callers that want to track placement.
        """
        return self.insert_versioned(record)[0]

    def insert_versioned(self, record: Sequence[object]) -> tuple[Bucket, int]:
        """:meth:`insert`, also returning the write version this mutation
        was assigned — its position in the global write order.  Reading
        :attr:`write_version` after :meth:`insert` returns is racy under
        concurrent writers; this is the atomic form.
        """
        bucket = self.multikey_hash.bucket_of(record)
        device = self.method.device_of(bucket)
        with self.read_locked():
            self.devices[device].insert(bucket, tuple(record))
            version = self._publish(bucket)
        return bucket, version

    def insert_all(self, records: Sequence[Sequence[object]]) -> None:
        from repro.obs import telemetry, trace_span

        with trace_span("storage.insert_all", records=len(records)):
            for record in records:
                self.insert(record)
        telemetry().metrics.add("storage.inserts", len(records))

    def delete(self, record: Sequence[object]) -> bool:
        """Remove one stored copy of *record*; ``True`` when found."""
        bucket = self.multikey_hash.bucket_of(record)
        device = self.method.device_of(bucket)
        with self.read_locked():
            removed = self.devices[device].delete(bucket, tuple(record))
            if removed:
                self._publish(bucket)
        return removed

    # ------------------------------------------------------------------
    # Query construction
    # ------------------------------------------------------------------
    def query(self, specified: Mapping[int, object]) -> PartialMatchQuery:
        """Build a partial match query from raw attribute values.

        The specified attributes are hashed with the file's own per-field
        hash functions, exactly as at insert time.
        """
        hashed = self.multikey_hash.partial_bucket(specified)
        return PartialMatchQuery.from_dict(self.filesystem, hashed)

    def search(self, specified: Mapping[int, object]):
        """Convenience: build the query and execute it.

        Returns an :class:`~repro.storage.executor.ExecutionResult`.  Note
        that, as with any hashed partial match scheme, the devices return
        every record in the qualified buckets; exact attribute comparison
        against false hash matches is the caller's (cheap) postfilter.
        """
        from repro.storage.executor import QueryExecutor

        return QueryExecutor(self).execute(self.query(specified))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def record_count(self) -> int:
        return sum(device.record_count for device in self.devices)

    def device_loads(self) -> list[int]:
        """Record count per device (static storage balance)."""
        return [device.record_count for device in self.devices]

    def state_digest(self) -> str:
        """Canonical digest of the whole file: per-device store digests in
        device order.  Two files digest equal exactly when every device
        holds the same records in the same buckets — the crash-recovery
        byte-identity criterion."""
        import hashlib

        digest = hashlib.sha256()
        for device in self.devices:
            digest.update(device.state_digest().encode("ascii"))
        return digest.hexdigest()

    def check_invariants(self) -> None:
        """Verify placement: every stored bucket maps back to its device."""
        for device in self.devices:
            device.store.check_invariants()
            for bucket in device.store.buckets():
                expected = self.method.device_of(bucket)
                if expected != device.device_id:
                    raise StorageError(
                        f"bucket {bucket} stored on device "
                        f"{device.device_id}, method says {expected}"
                    )
