"""A multi-key hashed file partitioned over M simulated devices.

:class:`PartitionedFile` ties the substrate together: records are hashed to
bucket addresses by a :class:`~repro.hashing.multikey.MultiKeyHash`, bucket
addresses are mapped to devices by a
:class:`~repro.distribution.base.DistributionMethod`, and each device stores
its share locally.  Partial match search goes through
:class:`~repro.storage.executor.QueryExecutor`.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence

from repro.distribution.base import DistributionMethod
from repro.errors import ConfigurationError, StorageError
from repro.hashing.fields import Bucket
from repro.hashing.multikey import MultiKeyHash
from repro.query.partial_match import PartialMatchQuery
from repro.storage.costs import DeviceCostModel
from repro.storage.device import SimulatedDevice

__all__ = ["PartitionedFile"]


class PartitionedFile:
    """Records distributed over parallel devices for partial match retrieval.

    >>> from repro import FileSystem, FXDistribution
    >>> fs = FileSystem.of(4, 8, m=4)
    >>> pf = PartitionedFile(FXDistribution(fs))
    >>> bucket = pf.insert((17, "widget"))
    >>> pf.record_count
    1
    """

    def __init__(
        self,
        method: DistributionMethod,
        multikey_hash: MultiKeyHash | None = None,
        cost_model: DeviceCostModel | None = None,
        device_capacity: int | None = None,
        store_factory: "Callable[[], object] | None" = None,
    ):
        self.method = method
        self.filesystem = method.filesystem
        self.multikey_hash = multikey_hash or MultiKeyHash.default(self.filesystem)
        if self.multikey_hash.filesystem != self.filesystem:
            raise ConfigurationError(
                "multi-key hash and distribution method target different "
                "file systems"
            )
        self.devices = [
            SimulatedDevice(
                d,
                cost_model=cost_model,
                capacity=device_capacity,
                store=store_factory() if store_factory else None,
            )
            for d in range(self.filesystem.m)
        ]

    # ------------------------------------------------------------------
    # Record operations
    # ------------------------------------------------------------------
    def insert(self, record: Sequence[object]) -> Bucket:
        """Hash *record*, route its bucket to a device, store it there.

        Returns the bucket address for callers that want to track placement.
        """
        bucket = self.multikey_hash.bucket_of(record)
        device = self.method.device_of(bucket)
        self.devices[device].insert(bucket, tuple(record))
        return bucket

    def insert_all(self, records: Sequence[Sequence[object]]) -> None:
        from repro.obs import telemetry, trace_span

        with trace_span("storage.insert_all", records=len(records)):
            for record in records:
                self.insert(record)
        telemetry().metrics.add("storage.inserts", len(records))

    def delete(self, record: Sequence[object]) -> bool:
        """Remove one stored copy of *record*; ``True`` when found."""
        bucket = self.multikey_hash.bucket_of(record)
        device = self.method.device_of(bucket)
        return self.devices[device].delete(bucket, tuple(record))

    # ------------------------------------------------------------------
    # Query construction
    # ------------------------------------------------------------------
    def query(self, specified: Mapping[int, object]) -> PartialMatchQuery:
        """Build a partial match query from raw attribute values.

        The specified attributes are hashed with the file's own per-field
        hash functions, exactly as at insert time.
        """
        hashed = self.multikey_hash.partial_bucket(specified)
        return PartialMatchQuery.from_dict(self.filesystem, hashed)

    def search(self, specified: Mapping[int, object]):
        """Convenience: build the query and execute it.

        Returns an :class:`~repro.storage.executor.ExecutionResult`.  Note
        that, as with any hashed partial match scheme, the devices return
        every record in the qualified buckets; exact attribute comparison
        against false hash matches is the caller's (cheap) postfilter.
        """
        from repro.storage.executor import QueryExecutor

        return QueryExecutor(self).execute(self.query(specified))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def record_count(self) -> int:
        return sum(device.record_count for device in self.devices)

    def device_loads(self) -> list[int]:
        """Record count per device (static storage balance)."""
        return [device.record_count for device in self.devices]

    def state_digest(self) -> str:
        """Canonical digest of the whole file: per-device store digests in
        device order.  Two files digest equal exactly when every device
        holds the same records in the same buckets — the crash-recovery
        byte-identity criterion."""
        import hashlib

        digest = hashlib.sha256()
        for device in self.devices:
            digest.update(device.state_digest().encode("ascii"))
        return digest.hexdigest()

    def check_invariants(self) -> None:
        """Verify placement: every stored bucket maps back to its device."""
        for device in self.devices:
            device.store.check_invariants()
            for bucket in device.store.buckets():
                expected = self.method.device_of(bucket)
                if expected != device.device_id:
                    raise StorageError(
                        f"bucket {bucket} stored on device "
                        f"{device.device_id}, method says {expected}"
                    )
