"""Per-device local bucket storage (the "data construction" stage).

The paper deliberately leaves local organisation open; this store is a plain
hash directory from bucket address to its records — the natural companion of
multi-key hashing — instrumented enough for the executor to account accesses.
Records are arbitrary immutable Python objects (tuples in the examples).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import StorageError
from repro.hashing.fields import Bucket

__all__ = ["BucketStore"]


class BucketStore:
    """Maps bucket addresses to lists of records on one device."""

    def __init__(self) -> None:
        self._buckets: dict[Bucket, list[object]] = {}
        self._record_count = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, bucket: Bucket, record: object) -> None:
        """Append *record* to *bucket* (created on first use)."""
        self._buckets.setdefault(tuple(bucket), []).append(record)
        self._record_count += 1

    def delete(self, bucket: Bucket, record: object) -> bool:
        """Remove one occurrence of *record* from *bucket*.

        Returns ``True`` when a record was removed, ``False`` when it was
        not present.  Empty buckets are dropped so iteration stays tight.
        """
        key = tuple(bucket)
        records = self._buckets.get(key)
        if not records:
            return False
        try:
            records.remove(record)
        except ValueError:
            return False
        self._record_count -= 1
        if not records:
            del self._buckets[key]
        return True

    def clear(self) -> None:
        self._buckets.clear()
        self._record_count = 0

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def records_in(self, bucket: Bucket) -> tuple[object, ...]:
        """Records of one bucket (empty tuple when the bucket is absent)."""
        return tuple(self._buckets.get(tuple(bucket), ()))

    def has_bucket(self, bucket: Bucket) -> bool:
        return tuple(bucket) in self._buckets

    def buckets(self) -> Iterator[Bucket]:
        """Iterate over the non-empty bucket addresses held here."""
        return iter(self._buckets)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def record_count(self) -> int:
        return self._record_count

    @property
    def bucket_count(self) -> int:
        """Number of non-empty buckets."""
        return len(self._buckets)

    def check_invariants(self) -> None:
        """Internal consistency check used by tests and failure injection."""
        actual = sum(len(records) for records in self._buckets.values())
        if actual != self._record_count:
            raise StorageError(
                f"record count drifted: cached {self._record_count}, "
                f"actual {actual}"
            )
        if any(not records for records in self._buckets.values()):
            raise StorageError("empty bucket left behind after delete")
