"""Per-device local bucket storage (the "data construction" stage).

The paper deliberately leaves local organisation open; this store is a plain
hash directory from bucket address to its records — the natural companion of
multi-key hashing — instrumented enough for the executor to account accesses.
Records are arbitrary immutable Python objects (tuples in the examples).
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Iterator

from repro.errors import StorageError
from repro.hashing.fields import Bucket

__all__ = ["BucketStore", "content_digest"]


def content_digest(buckets: Iterable[tuple[Bucket, tuple]]) -> str:
    """Canonical SHA-256 over ``(bucket, records)`` pairs, sorted by bucket.

    Order-independent across buckets, order-preserving within one bucket —
    the digest two stores share exactly when they hold the same records in
    the same buckets, regardless of page layout or checksum metadata.
    Crash-recovery byte-identity tests compare these.
    """
    digest = hashlib.sha256()
    for bucket, records in sorted(buckets, key=lambda pair: pair[0]):
        digest.update(repr((tuple(bucket), tuple(records))).encode("utf-8"))
    return digest.hexdigest()


class BucketStore:
    """Maps bucket addresses to lists of records on one device."""

    #: True on stores whose :meth:`records_in` performs integrity checks
    #: (e.g. CRC verification) as a side effect.  Read-path caches must
    #: not snapshot records from such a store — skipping the per-read
    #: verification would change its documented failure semantics.
    verifies_reads = False

    def __init__(self) -> None:
        self._buckets: dict[Bucket, list[object]] = {}
        self._record_count = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, bucket: Bucket, record: object) -> None:
        """Append *record* to *bucket* (created on first use)."""
        self._buckets.setdefault(tuple(bucket), []).append(record)
        self._record_count += 1

    def delete(self, bucket: Bucket, record: object) -> bool:
        """Remove one occurrence of *record* from *bucket*.

        Returns ``True`` when a record was removed, ``False`` when it was
        not present.  Empty buckets are dropped so iteration stays tight.
        """
        key = tuple(bucket)
        records = self._buckets.get(key)
        if not records:
            return False
        try:
            records.remove(record)
        except ValueError:
            return False
        self._record_count -= 1
        if not records:
            del self._buckets[key]
        return True

    def clear(self) -> None:
        self._buckets.clear()
        self._record_count = 0

    def replace_bucket(self, bucket: Bucket, records: Iterable[object]) -> None:
        """Set the exact contents of *bucket* (the repair/rebuild path).

        An empty *records* removes the bucket entirely, keeping the
        no-empty-buckets invariant.
        """
        key = tuple(bucket)
        old = self._buckets.pop(key, ())
        self._record_count -= len(old)
        fresh = list(records)
        if fresh:
            self._buckets[key] = fresh
            self._record_count += len(fresh)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def records_in(self, bucket: Bucket) -> tuple[object, ...]:
        """Records of one bucket (empty tuple when the bucket is absent)."""
        return tuple(self._buckets.get(tuple(bucket), ()))

    def has_bucket(self, bucket: Bucket) -> bool:
        return tuple(bucket) in self._buckets

    def buckets(self) -> Iterator[Bucket]:
        """Iterate over the non-empty bucket addresses held here."""
        return iter(self._buckets)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def record_count(self) -> int:
        return self._record_count

    @property
    def bucket_count(self) -> int:
        """Number of non-empty buckets."""
        return len(self._buckets)

    def state_digest(self) -> str:
        """Canonical content digest of this store (see :func:`content_digest`)."""
        return content_digest(
            (bucket, tuple(records))
            for bucket, records in self._buckets.items()
        )

    def check_invariants(self) -> None:
        """Internal consistency check used by tests and failure injection."""
        actual = sum(len(records) for records in self._buckets.values())
        if actual != self._record_count:
            raise StorageError(
                f"record count drifted: cached {self._record_count}, "
                f"actual {actual}"
            )
        if any(not records for records in self._buckets.values()):
            raise StorageError("empty bucket left behind after delete")
