"""The versioned JSON envelope every serialised surface shares.

Every JSON object this library emits across a process boundary — gateway
wire frames, ``ExecutionResult.to_dict()`` / ``ServiceResult.to_dict()``
(the CLI ``--json`` surfaces), and every ``obs export`` JSONL record —
carries the same schema-version marker::

    {"v": 1, ...}

A reader first checks ``v`` and only then interprets the rest, so the
schema can evolve without silent misreads: an old reader handed a newer
payload fails loudly with :class:`~repro.errors.ProtocolError` instead of
guessing.  :data:`SCHEMA_VERSION` is bumped exactly when a field changes
meaning or disappears — *adding* fields is backwards compatible and does
not bump it.

``tests/test_gateway.py`` pins the version and round-trips every surface
through :func:`versioned` / :func:`check_version`.
"""

from __future__ import annotations

from repro.errors import ProtocolError

__all__ = ["SCHEMA_VERSION", "versioned", "check_version"]

#: The one process-wide envelope schema version.
SCHEMA_VERSION = 1


def versioned(payload: dict) -> dict:
    """Return *payload* with the envelope version stamped in (key ``"v"``).

    The version key is placed first so the marker leads every serialised
    object; the input mapping is not mutated.

    >>> versioned({"op": "ping"})
    {'v': 1, 'op': 'ping'}
    """
    out: dict = {"v": SCHEMA_VERSION}
    out.update(payload)
    return out


def check_version(payload: object, where: str = "payload") -> dict:
    """Validate the envelope of *payload* and return it as a dict.

    Raises :class:`~repro.errors.ProtocolError` when *payload* is not an
    object, lacks the ``"v"`` marker, or carries a version this reader
    does not speak.  *where* names the surface in the error message.
    """
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"{where}: expected a JSON object, got {type(payload).__name__}"
        )
    version = payload.get("v")
    if version != SCHEMA_VERSION:
        raise ProtocolError(
            f"{where}: unsupported envelope version {version!r} "
            f"(this reader speaks v{SCHEMA_VERSION})"
        )
    return payload
