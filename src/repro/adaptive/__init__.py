"""Workload-adaptive declustering: close the loop from observation to action.

ROADMAP item 3 end to end.  The obs layer measures *what is actually
asked* (:class:`~repro.obs.QueryMixProfile`); this package turns that
measurement into a better transform assignment and applies it without
losing data:

``bridge``
    Convert between the obs layer's indicator patterns (``"1*1"``) and
    the analysis layer's frozenset-of-unspecified-fields convention, and
    wrap an observed mix as an :class:`EmpiricalQueryModel` that plugs
    into the exact skew analysis.
``score``
    Mix-weighted expected-load-factor scoring, the Doerr-style lower
    bound (and the gap to it), and the adaptive transform search over
    family assignments and random GF(2) matrices.
``hotswap``
    Apply the winning plan to a live :class:`~repro.durability.
    DurableFile` through the WAL-audited migration path, then re-verify
    optimality from telemetry.

CLI: ``repro adapt score|plan|apply``.
"""

from repro.adaptive.bridge import (
    EmpiricalQueryModel,
    load_profile,
    pattern_to_unspecified,
    unspecified_to_pattern,
)
from repro.adaptive.hotswap import (
    AdaptiveSwapReport,
    apply_plan,
    content_digest_of,
    representative_queries,
)
from repro.adaptive.score import (
    AdaptivePlan,
    MixScore,
    adaptive_transform_search,
    mix_lower_bound,
    score_method,
)

__all__ = [
    "pattern_to_unspecified",
    "unspecified_to_pattern",
    "EmpiricalQueryModel",
    "load_profile",
    "MixScore",
    "mix_lower_bound",
    "score_method",
    "AdaptivePlan",
    "adaptive_transform_search",
    "AdaptiveSwapReport",
    "content_digest_of",
    "representative_queries",
    "apply_plan",
]
