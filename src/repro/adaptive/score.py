"""Scoring and searching transform assignments against an observed mix.

The paper proves FX optimality under the *uniform* query model; a live
array sees whatever mix its tenants actually send.  This module closes
the gap (ROADMAP item 3): score any candidate FX transform assignment by
its **mix-weighted expected load factor** — the expectation, under an
:class:`~repro.adaptive.EmpiricalQueryModel`, of ``largest response /
ceil(|R(q)|/M)`` — and search the assignment space for the minimiser.

Two candidate spaces, both deterministic per seed:

* the paper's four families per small field (exhaustive when the space is
  ``4**k <= 65536``, steepest-descent hill climbing with restarts beyond),
* optionally, random injective GF(2) matrices (:mod:`repro.core.linear`)
  — the section-6 "more general transformation functions".

Every score is reported next to the **Doerr-style lower bound**: for any
allocation whatsoever, a query with ``|R(q)|`` qualified buckets loads
some device with at least ``ceil(|R(q)|/M)`` of them (the additive-error
lower bounds of Doerr, Hebbinghaus & Werth, "Improved Bounds and Schemes
for the Declustering Problem", sharpen this for grids; the ceiling is the
per-pattern floor their bounds build on).  The mix-weighted bound is the
weighted sum of those floors, so ``gap = E[max load] / bound >= 1`` and
``gap == 1`` means no redistribution of any kind could do better on this
mix.
"""

from __future__ import annotations

import itertools
import math
import random
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.adaptive.bridge import EmpiricalQueryModel, unspecified_to_pattern
from repro.analysis.query_model import QueryModel
from repro.analysis.skew import expected_largest_response, expected_load_factor
from repro.core.fx import FXDistribution
from repro.core.transforms import FieldTransform
from repro.distribution.base import SeparableMethod
from repro.distribution.search import (
    MAX_EXHAUSTIVE_SMALL_FIELDS,
    SMALL_FIELD_FAMILIES,
)
from repro.errors import AnalysisError, ConfigurationError
from repro.hashing.fields import FileSystem
from repro.util.numbers import ceil_div

__all__ = [
    "MixScore",
    "mix_lower_bound",
    "score_method",
    "AdaptivePlan",
    "adaptive_transform_search",
]


def mix_lower_bound(filesystem: FileSystem, model: QueryModel) -> float:
    """Mix-weighted lower bound on E[max load]: ``sum w(q) ceil(|R(q)|/M)``.

    Holds for *every* bucket-to-device allocation (Doerr et al.'s bounds
    are additive refinements of the same per-query floor), so it is the
    yardstick every adaptive candidate is measured against.
    """
    total = 0.0
    for pattern in model.patterns(filesystem.n_fields):
        weight = model.pattern_weight(pattern, filesystem.n_fields)
        if weight:
            qualified = math.prod(filesystem.field_sizes[i] for i in pattern)
            total += weight * ceil_div(qualified, filesystem.m)
    return total


@dataclass(frozen=True)
class MixScore:
    """One method's standing under one query mix."""

    expected_load_factor: float
    expected_largest_response: float
    lower_bound: float
    #: Weighted fraction of the mix served strict-optimally.
    optimal_weight: float

    @property
    def gap(self) -> float:
        """``E[max load] / lower bound`` — 1.0 is unimprovable."""
        if self.lower_bound == 0.0:
            return 1.0
        return self.expected_largest_response / self.lower_bound

    def to_dict(self) -> dict:
        return {
            "expected_load_factor": round(self.expected_load_factor, 9),
            "expected_largest_response": round(
                self.expected_largest_response, 9
            ),
            "lower_bound": round(self.lower_bound, 9),
            "gap": round(self.gap, 9),
            "optimal_weight": round(self.optimal_weight, 9),
        }


def score_method(method: SeparableMethod, model: QueryModel) -> MixScore:
    """Mix-weighted skew profile of one method (exact, via convolutions)."""
    from repro.analysis.skew import pattern_load_factor

    fs = method.filesystem
    optimal = 0.0
    for pattern in model.patterns(fs.n_fields):
        weight = model.pattern_weight(pattern, fs.n_fields)
        if weight and pattern_load_factor(method, pattern) <= 1.0:
            optimal += weight
    return MixScore(
        expected_load_factor=expected_load_factor(method, model=model),
        expected_largest_response=expected_largest_response(
            method, model=model
        ),
        lower_bound=mix_lower_bound(fs, model),
        optimal_weight=optimal,
    )


@dataclass
class AdaptivePlan:
    """Outcome of one adaptive search: the winning assignment + evidence.

    ``transforms`` are live :class:`~repro.core.transforms.FieldTransform`
    objects (family or GF(2)-linear), so :meth:`build` reconstructs the
    winning method exactly; ``to_dict`` serialises families by name and
    linear transforms by matrix rows.
    """

    filesystem: FileSystem
    baseline_names: tuple[str, ...]
    baseline: MixScore
    transforms: tuple[FieldTransform, ...]
    candidate: MixScore
    evaluations: int
    moved_fraction: float
    #: (evaluations-so-far, incumbent ELF) whenever the incumbent improved.
    history: list[tuple[int, float]] = field(default_factory=list)

    @property
    def candidate_names(self) -> tuple[str, ...]:
        return tuple(t.method for t in self.transforms)

    @property
    def improvement(self) -> float:
        """Drop in mix-weighted expected load factor (positive = better)."""
        return (
            self.baseline.expected_load_factor
            - self.candidate.expected_load_factor
        )

    @property
    def worthwhile(self) -> bool:
        return self.improvement > 0.0

    def build(self, filesystem: FileSystem | None = None) -> FXDistribution:
        """Instantiate the winning FX method."""
        fs = filesystem if filesystem is not None else self.filesystem
        return FXDistribution(fs, transforms=list(self.transforms))

    def summary(self) -> str:
        return (
            f"adaptive plan on {self.filesystem.describe()}: "
            f"{','.join(self.baseline_names)} -> "
            f"{','.join(self.candidate_names)}, E[load factor] "
            f"{self.baseline.expected_load_factor:.4f} -> "
            f"{self.candidate.expected_load_factor:.4f} "
            f"(gap to lower bound {self.candidate.gap:.4f}), "
            f"moves {100 * self.moved_fraction:.1f}% of buckets"
        )

    def to_dict(self) -> dict:
        matrices = {
            str(i): t.matrix.to_lists()
            for i, t in enumerate(self.transforms)
            if t.method == "LIN"
        }
        return {
            "filesystem": self.filesystem.describe(),
            "baseline": {
                "transforms": list(self.baseline_names),
                "score": self.baseline.to_dict(),
            },
            "candidate": {
                "transforms": list(self.candidate_names),
                "matrices": matrices,
                "score": self.candidate.to_dict(),
            },
            "evaluations": self.evaluations,
            "moved_fraction": round(self.moved_fraction, 9),
            "improvement": round(self.improvement, 9),
            "worthwhile": self.worthwhile,
        }


def _family_elf(
    filesystem: FileSystem,
    small: tuple[int, ...],
    combo: Sequence[str],
    model: QueryModel,
) -> tuple[float, FXDistribution]:
    """Mix-weighted ELF of one per-small-field family choice."""
    methods = ["I"] * filesystem.n_fields
    for index, family in zip(small, combo):
        methods[index] = family
    fx = FXDistribution(filesystem, transforms=methods)
    return expected_load_factor(fx, model=model), fx


def adaptive_transform_search(
    filesystem: FileSystem,
    model: EmpiricalQueryModel | QueryModel,
    baseline: SeparableMethod | None = None,
    restarts: int = 4,
    seed: int = 0,
    linear_draws: int = 0,
) -> AdaptivePlan:
    """Search transform assignments minimising the mix-weighted ELF.

    *baseline* anchors the comparison (default: the paper's round-robin
    FX on *filesystem*) and also seeds the first hill-climbing restart,
    so the search never returns something worse than what is deployed.
    *linear_draws* additionally samples that many random injective GF(2)
    matrix assignments (seeded); the overall incumbent wins.  Ties break
    toward the earliest candidate in enumeration order, which keeps the
    plan — and everything serialised from it — deterministic per seed.
    """
    from repro.obs import trace_span
    from repro.storage.migration import moved_fraction

    if baseline is None:
        baseline = FXDistribution(filesystem)
    if baseline.filesystem != filesystem:
        raise AnalysisError("baseline method targets a different file system")
    small = filesystem.small_fields()

    best_fx: FXDistribution | None = None
    best_elf = float("inf")
    evaluations = 0
    history: list[tuple[int, float]] = []

    def consider(elf: float, fx: FXDistribution) -> None:
        nonlocal best_fx, best_elf, evaluations
        evaluations += 1
        if elf < best_elf:
            best_elf = elf
            best_fx = fx
            history.append((evaluations, elf))

    with trace_span(
        "adaptive.search",
        filesystem=filesystem.describe(),
        model=model.describe(),
        linear_draws=linear_draws,
    ) as span:
        if len(small) <= MAX_EXHAUSTIVE_SMALL_FIELDS:
            for combo in itertools.product(
                SMALL_FIELD_FAMILIES, repeat=len(small)
            ):
                consider(*_family_elf(filesystem, small, combo, model))
        else:
            _hill_climb(
                filesystem, small, model, baseline, restarts, seed, consider
            )
        if linear_draws:
            _linear_draws(filesystem, model, linear_draws, seed, consider)
        assert best_fx is not None
        span.set_attr("evaluations", evaluations)
        span.set_attr("score", round(best_elf, 6))

    baseline_score = score_method(baseline, model)
    candidate_score = score_method(best_fx, model)
    if isinstance(baseline, FXDistribution):
        baseline_names = tuple(t.method for t in baseline.transforms)
    else:
        baseline_names = (baseline.name or type(baseline).__name__,)
    return AdaptivePlan(
        filesystem=filesystem,
        baseline_names=baseline_names,
        baseline=baseline_score,
        transforms=best_fx.transforms,
        candidate=candidate_score,
        evaluations=evaluations,
        moved_fraction=moved_fraction(baseline, best_fx),
        history=history,
    )


def _hill_climb(
    filesystem: FileSystem,
    small: tuple[int, ...],
    model: QueryModel,
    baseline: SeparableMethod,
    restarts: int,
    seed: int,
    consider,
) -> None:
    """Steepest-descent over single-field family changes, seeded restarts."""
    rng = random.Random(seed)
    if isinstance(baseline, FXDistribution):
        start = tuple(
            baseline.transforms[i].method
            if baseline.transforms[i].method in SMALL_FIELD_FAMILIES
            else "I"
            for i in small
        )
    else:
        cycle = ("I", "U", "IU1")
        start = tuple(cycle[i % 3] for i in range(len(small)))
    for restart in range(max(1, restarts)):
        current = (
            start
            if restart == 0
            else tuple(rng.choice(SMALL_FIELD_FAMILIES) for __ in small)
        )
        current_elf, fx = _family_elf(filesystem, small, current, model)
        consider(current_elf, fx)
        improved = True
        while improved:
            improved = False
            best_neighbour = current
            best_neighbour_elf = current_elf
            for position in range(len(small)):
                for family in SMALL_FIELD_FAMILIES:
                    if family == current[position]:
                        continue
                    neighbour = (
                        current[:position]
                        + (family,)
                        + current[position + 1:]
                    )
                    elf, fx = _family_elf(filesystem, small, neighbour, model)
                    consider(elf, fx)
                    if elf < best_neighbour_elf:
                        best_neighbour = neighbour
                        best_neighbour_elf = elf
            if best_neighbour_elf < current_elf:
                current = best_neighbour
                current_elf = best_neighbour_elf
                improved = True


def _linear_draws(
    filesystem: FileSystem,
    model: QueryModel,
    draws: int,
    seed: int,
    consider,
) -> None:
    """Random injective GF(2) matrices for the small fields, seeded."""
    from repro.core.linear import LinearTransform
    from repro.core.transforms import IdentityTransform

    if draws < 0:
        raise ConfigurationError("linear_draws must be non-negative")
    rng = random.Random(seed)
    small = set(filesystem.small_fields())
    for __ in range(draws):
        transforms = [
            LinearTransform.random(size, filesystem.m, rng)
            if i in small
            else IdentityTransform(size, filesystem.m)
            for i, size in enumerate(filesystem.field_sizes)
        ]
        fx = FXDistribution(filesystem, transforms=transforms)
        consider(expected_load_factor(fx, model=model), fx)
