"""Bridging observed indicator patterns to the analysis convention.

Two pattern conventions coexist in this codebase:

* the **obs layer** canonicalises a query's shape as an indicator string
  over the field order — ``"1*1"`` means fields 0 and 2 specified, field 1
  unspecified (:func:`repro.obs.profile.pattern_of_query`), because that is
  what serialises compactly into profiles and JSONL exports;
* the **analysis layer** works with the frozenset of *unspecified* field
  indices (:data:`repro.query.patterns.SpecPattern`), because that is what
  the convolution evaluator and the optimality theorems consume.

This module is the seam between them: loss-free conversions both ways,
plus :class:`EmpiricalQueryModel` — the observed-mix counterpart of the
paper's :class:`~repro.analysis.query_model.IndependenceModel` — which
turns a :class:`~repro.obs.QueryMixProfile` into pattern weights that plug
straight into :func:`~repro.analysis.skew.expected_largest_response` /
:func:`~repro.analysis.skew.expected_load_factor` and the adaptive
transform search (:mod:`repro.adaptive.score`).
"""

from __future__ import annotations

import json
from collections.abc import Iterator, Mapping

from repro.analysis.query_model import QueryModel
from repro.errors import AnalysisError
from repro.obs.profile import QueryMixProfile, TenantProfile
from repro.query.patterns import SpecPattern

__all__ = [
    "pattern_to_unspecified",
    "unspecified_to_pattern",
    "EmpiricalQueryModel",
    "load_profile",
]


def pattern_to_unspecified(pattern: str, n_fields: int) -> SpecPattern:
    """Indicator string → frozenset of unspecified field indices.

    >>> sorted(pattern_to_unspecified("1*1", 3))
    [1]
    """
    if len(pattern) != n_fields:
        raise AnalysisError(
            f"pattern {pattern!r} names {len(pattern)} fields, "
            f"file system has {n_fields}"
        )
    unspecified = set()
    for index, cell in enumerate(pattern):
        if cell == "*":
            unspecified.add(index)
        elif cell != "1":
            raise AnalysisError(
                f"pattern {pattern!r} holds {cell!r} at field {index}; "
                "expected '1' (specified) or '*' (unspecified)"
            )
    return frozenset(unspecified)


def unspecified_to_pattern(unspecified: SpecPattern, n_fields: int) -> str:
    """Frozenset of unspecified field indices → indicator string.

    Exact inverse of :func:`pattern_to_unspecified` over every pattern of
    an ``n_fields``-field grid (property-tested in ``tests/test_adaptive``).

    >>> unspecified_to_pattern(frozenset({1}), 3)
    '1*1'
    """
    for index in unspecified:
        if not 0 <= index < n_fields:
            raise AnalysisError(
                f"pattern names field {index}, file system has {n_fields}"
            )
    return "".join(
        "*" if index in unspecified else "1" for index in range(n_fields)
    )


class EmpiricalQueryModel(QueryModel):
    """The observed query mix as a :class:`QueryModel`.

    Weights are the relative frequencies of the observed patterns;
    :meth:`patterns` enumerates exactly the support (sorted by unspecified
    count, then indices — deterministic), so analysis sweeps touch only
    patterns that actually occurred.

    >>> model = EmpiricalQueryModel.from_counts({"1*": 3, "*1": 1}, 2)
    >>> model.pattern_weight(frozenset({1}), 2)
    0.75
    """

    def __init__(self, weights: Mapping[SpecPattern, float], n_fields: int):
        if not weights:
            raise AnalysisError("empirical query model with no patterns")
        total = 0.0
        for pattern, weight in weights.items():
            for index in pattern:
                if not 0 <= index < n_fields:
                    raise AnalysisError(
                        f"pattern names field {index}, file system has "
                        f"{n_fields}"
                    )
            if weight < 0:
                raise AnalysisError(f"negative pattern weight {weight}")
            total += weight
        if total <= 0.0:
            raise AnalysisError("empirical query model with zero total weight")
        self.n_fields = n_fields
        self._weights = {
            frozenset(pattern): weight / total
            for pattern, weight in weights.items()
            if weight > 0
        }

    # ------------------------------------------------------------------
    # Constructors from the obs layer
    # ------------------------------------------------------------------
    @classmethod
    def from_counts(
        cls, counts: Mapping[str, int | float], n_fields: int
    ) -> "EmpiricalQueryModel":
        """Build from ``{indicator pattern: count}`` (profile convention)."""
        return cls(
            {
                pattern_to_unspecified(pattern, n_fields): float(count)
                for pattern, count in counts.items()
            },
            n_fields,
        )

    @classmethod
    def from_profile(
        cls,
        profile: QueryMixProfile | TenantProfile,
        n_fields: int,
        tenant: str | None = None,
    ) -> "EmpiricalQueryModel":
        """Build from a query-mix profile.

        With a :class:`QueryMixProfile`, *tenant* selects one tenant's mix;
        ``None`` aggregates across all tenants (the whole-array view an
        operator re-declusters for).
        """
        if isinstance(profile, TenantProfile):
            counts: dict[str, int] = dict(profile.patterns)
        elif tenant is not None:
            found = profile.tenants.get(tenant)
            if found is None:
                raise AnalysisError(
                    f"profile has no tenant {tenant!r}; "
                    f"known: {sorted(profile.tenants)}"
                )
            counts = dict(found.patterns)
        else:
            counts = {}
            for entry in profile.tenants.values():
                for pattern, count in entry.patterns.items():
                    counts[pattern] = counts.get(pattern, 0) + count
        if not counts:
            raise AnalysisError("profile holds no observed queries")
        return cls.from_counts(counts, n_fields)

    # ------------------------------------------------------------------
    # QueryModel interface
    # ------------------------------------------------------------------
    def pattern_weight(self, pattern: SpecPattern, n_fields: int) -> float:
        self._check_fields(n_fields)
        return self._weights.get(frozenset(pattern), 0.0)

    def patterns(self, n_fields: int) -> Iterator[SpecPattern]:
        self._check_fields(n_fields)
        yield from sorted(
            self._weights, key=lambda pattern: (len(pattern), sorted(pattern))
        )

    def frequencies(self) -> dict[str, float]:
        """Indicator pattern → weight, sorted (the serialisable view)."""
        as_strings = {
            unspecified_to_pattern(pattern, self.n_fields): weight
            for pattern, weight in self._weights.items()
        }
        return {pattern: as_strings[pattern] for pattern in sorted(as_strings)}

    def describe(self) -> str:
        return f"empirical({len(self._weights)} patterns)"

    def _check_fields(self, n_fields: int) -> None:
        if n_fields != self.n_fields:
            raise AnalysisError(
                f"model built for {self.n_fields} fields, asked about "
                f"{n_fields}"
            )


def load_profile(path: str) -> QueryMixProfile:
    """Load a query-mix profile from disk — the offline adaptation feed.

    Accepts either serialisation the obs CLI produces:

    * a canonical profile document (``QueryMixProfile.to_json()``), or
    * an ``obs export`` JSONL trace, aggregated via
      :meth:`QueryMixProfile.from_records` — so ``obs export --jsonl`` is
      all a deployment needs to feed ``adapt``.
    """
    with open(path, encoding="utf-8") as handle:
        lines = [line for line in handle.read().splitlines() if line.strip()]
    if not lines:
        raise AnalysisError(f"{path}: empty profile/export file")
    first = json.loads(lines[0])
    if not isinstance(first, dict):
        raise AnalysisError(f"{path}: expected JSON objects per line")
    if first.get("type") == "profile":
        return QueryMixProfile.from_dict(first)
    return QueryMixProfile.from_records(
        [json.loads(line) for line in lines]
    )
