"""Crash-safe application of an adaptive plan to a live durable file.

The last mile of ROADMAP item 3: once :func:`~repro.adaptive.score.
adaptive_transform_search` has found a better transform assignment for
the observed mix, actually moving a deployment onto it must not be the
step that loses data.  :func:`apply_plan` therefore routes the swap
through the existing durability machinery rather than around it:

* the bucket moves run as a :class:`~repro.storage.migration.Migration`
  wired to the file's own write-ahead log, so every relocated record is
  an auditable ``move`` entry — and a crash mid-migration leaves a WAL
  whose replay (:func:`~repro.durability.durable_file.recover`) still
  reconstructs the full record set, because replay re-derives placement
  from the file's method and treats moves as no-ops;
* after the swap the file's invariants are re-checked and its
  content digest compared — a migration relocates records, it must not
  create or drop any;
* finally the claimed optimality is *re-verified from telemetry*: an
  :class:`~repro.obs.checker.ObservedOptimalityChecker` replays one
  representative query per observed pattern against the swapped method,
  so the report's "optimal" bit reflects what the executor actually did,
  not what the search predicted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adaptive.score import AdaptivePlan, MixScore, score_method
from repro.analysis.query_model import QueryModel
from repro.durability.durable_file import DurableFile
from repro.errors import AnalysisError
from repro.hashing.fields import FileSystem
from repro.query.partial_match import PartialMatchQuery
from repro.query.patterns import representative_query

__all__ = [
    "AdaptiveSwapReport",
    "content_digest_of",
    "representative_queries",
    "apply_plan",
]


def content_digest_of(file) -> str:
    """Placement-independent content digest of a partitioned file.

    ``state_digest`` folds in *which device* holds each bucket — exactly
    what a migration changes on purpose — so the swap's "no records
    created or dropped" check hashes the ``(bucket, records)`` pairs
    themselves, pooled across devices.
    """
    from repro.storage.bucket_store import content_digest

    return content_digest(
        (bucket, device.store.records_in(bucket))
        for device in file.devices
        for bucket in device.store.buckets()
    )


def representative_queries(
    filesystem: FileSystem, model: QueryModel
) -> list[PartialMatchQuery]:
    """One query per observed pattern (hashed value 0 on specified fields).

    FX device loads are pattern-invariant — every query of a pattern has
    the same response histogram up to device relabeling — so one
    representative per pattern suffices to verify the bound for the whole
    mix.
    """
    return [
        representative_query(filesystem, pattern)
        for pattern in model.patterns(filesystem.n_fields)
        if model.pattern_weight(pattern, filesystem.n_fields)
    ]


@dataclass
class AdaptiveSwapReport:
    """Everything an operator needs to trust (or roll back) one hot-swap."""

    before: MixScore
    after: MixScore
    buckets_moved: int
    records_moved: int
    #: ``move`` entries appended to the WAL — the audit trail of the swap.
    wal_moves: int
    digest_before: str
    digest_after: str
    #: Weighted share of the mix served strict-optimally, re-measured
    #: from telemetry after the swap (None when verification was skipped).
    verified_queries: int
    verified_strict_optimal: bool | None
    verified_consistent: bool | None

    @property
    def content_preserved(self) -> bool:
        """The swap relocated records without creating or dropping any."""
        return self.digest_before == self.digest_after

    @property
    def improvement(self) -> float:
        return self.before.expected_load_factor - self.after.expected_load_factor

    @property
    def verified(self) -> bool:
        """Content preserved and telemetry confirms the observed mix is
        served strict-optimally by the swapped method."""
        return bool(
            self.content_preserved
            and self.verified_strict_optimal
            and self.verified_consistent
        )

    def summary(self) -> str:
        verdict = (
            "verified strict optimal from telemetry"
            if self.verified
            else "verification "
            + ("skipped" if self.verified_strict_optimal is None else "FAILED")
        )
        return (
            f"hot-swap moved {self.records_moved} records in "
            f"{self.buckets_moved} buckets ({self.wal_moves} WAL move "
            f"entries), E[load factor] {self.before.expected_load_factor:.4f}"
            f" -> {self.after.expected_load_factor:.4f}, {verdict}"
        )

    def to_dict(self) -> dict:
        return {
            "before": self.before.to_dict(),
            "after": self.after.to_dict(),
            "buckets_moved": self.buckets_moved,
            "records_moved": self.records_moved,
            "wal_moves": self.wal_moves,
            "content_preserved": self.content_preserved,
            "improvement": round(self.improvement, 9),
            "verified_queries": self.verified_queries,
            "verified_strict_optimal": self.verified_strict_optimal,
            "verified_consistent": self.verified_consistent,
            "verified": self.verified,
        }


def apply_plan(
    durable: DurableFile,
    plan: AdaptivePlan,
    model: QueryModel,
    require_improvement: bool = True,
    verify: bool = True,
) -> AdaptiveSwapReport:
    """Hot-swap *durable* onto the plan's winning method, crash-safely.

    The WAL the file already owns audits the migration (``move`` entries);
    arming a crash point on it (``durable.arm_crash``) before calling this
    exercises the crash path — recovery replays the log into a fresh file
    and lands on the pre-swap content digest, moves skipped.

    With *verify* (default), requires telemetry
    (``repro.obs.configure(enabled=True)``) and replays one representative
    query per observed pattern through the real executor afterwards.
    """
    from repro.obs.checker import ObservedOptimalityChecker
    from repro.storage.migration import Migration
    from repro.storage.parallel_file import PartitionedFile

    if not isinstance(durable.file, PartitionedFile):
        raise AnalysisError(
            "adaptive hot-swap needs a partitioned file; replicated files "
            "re-decluster replica by replica"
        )
    if durable.filesystem != plan.filesystem:
        raise AnalysisError("plan was searched for a different file system")
    if require_improvement and not plan.worthwhile:
        raise AnalysisError(
            "plan does not improve the mix-weighted expected load factor "
            f"(baseline {plan.baseline.expected_load_factor:.6f}, candidate "
            f"{plan.candidate.expected_load_factor:.6f}); "
            "pass require_improvement=False to force the swap"
        )

    before = score_method(durable.file.method, model)
    digest_before = content_digest_of(durable.file)
    target = plan.build(durable.filesystem)
    wal_before = durable.wal.entry_count
    migration = Migration(durable.file, target, wal=durable.wal)
    report = migration.apply()
    durable.check_invariants()
    digest_after = content_digest_of(durable.file)
    after = score_method(durable.file.method, model)

    verified_strict: bool | None = None
    verified_consistent: bool | None = None
    verified_queries = 0
    if verify:
        checker = ObservedOptimalityChecker(durable.file.method)
        check = checker.replay(
            representative_queries(durable.filesystem, model)
        )
        verified_strict = check.all_strict_optimal
        verified_consistent = check.consistent
        verified_queries = check.queries

    return AdaptiveSwapReport(
        before=before,
        after=after,
        buckets_moved=report.buckets_moved,
        records_moved=report.records_moved,
        wal_moves=durable.wal.entry_count - wal_before,
        digest_before=digest_before,
        digest_after=digest_after,
        verified_queries=verified_queries,
        verified_strict_optimal=verified_strict,
        verified_consistent=verified_consistent,
    )
