"""Per-field hash functions for multi-key hashing.

The paper treats the per-field hash functions ``H_i`` abstractly: each maps
an attribute value into the field domain ``{0, ..., F_i - 1}``.  This module
provides deterministic, seed-stable families so that examples and the storage
layer can hash real attribute values (ints, strings) into bucket coordinates
reproducibly across runs and platforms — Python's builtin ``hash`` is
deliberately avoided because it is salted per process.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import ConfigurationError, FieldValueError
from repro.util.validation import check_power_of_two

__all__ = [
    "FieldHash",
    "FibonacciFieldHash",
    "IntegerRangeHash",
    "StringFieldHash",
]

#: 64-bit Fibonacci hashing constant: 2**64 / golden ratio, forced odd.
_FIB64 = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


class FieldHash(ABC):
    """A hash function ``H_i`` from attribute values into ``{0..F-1}``."""

    def __init__(self, field_size: int):
        check_power_of_two("field size", field_size)
        self.field_size = field_size

    @abstractmethod
    def __call__(self, value: object) -> int:
        """Hash *value* into the field domain."""

    def _fold(self, word: int) -> int:
        """Reduce a 64-bit word to ``log2 F`` bits via Fibonacci hashing."""
        bits = self.field_size.bit_length() - 1
        if bits == 0:
            return 0
        return ((word * _FIB64) & _MASK64) >> (64 - bits)


class FibonacciFieldHash(FieldHash):
    """Multiplicative (Fibonacci) hashing for arbitrary-width integers.

    Good avalanche in the high bits, which :meth:`FieldHash._fold` extracts.
    A *seed* decorrelates the per-field functions of one multi-key hash.
    """

    def __init__(self, field_size: int, seed: int = 0):
        super().__init__(field_size)
        self.seed = seed & _MASK64

    def __call__(self, value: object) -> int:
        if not isinstance(value, int) or isinstance(value, bool):
            raise FieldValueError(
                f"FibonacciFieldHash hashes integers, got {type(value).__name__}"
            )
        word = (value ^ self.seed) & _MASK64
        # One xorshift round before the multiply so low-entropy inputs
        # (small consecutive ints) still spread over the whole word.
        word ^= word >> 33
        return self._fold(word)


class IntegerRangeHash(FieldHash):
    """Order-preserving hash for integers known to lie in ``[low, high)``.

    Partitions the range into ``F`` equal slices, which is the classic
    choice when the field doubles as a crude range index.
    """

    def __init__(self, field_size: int, low: int, high: int):
        super().__init__(field_size)
        if high <= low:
            raise ConfigurationError(f"empty range [{low}, {high})")
        self.low = low
        self.high = high

    def __call__(self, value: object) -> int:
        if not isinstance(value, int) or isinstance(value, bool):
            raise FieldValueError(
                f"IntegerRangeHash hashes integers, got {type(value).__name__}"
            )
        if not self.low <= value < self.high:
            raise FieldValueError(
                f"value {value} outside hash range [{self.low}, {self.high})"
            )
        span = self.high - self.low
        return (value - self.low) * self.field_size // span


class StringFieldHash(FieldHash):
    """FNV-1a over UTF-8 bytes, folded into the field domain.

    Deterministic across processes (unlike builtin ``hash`` on str).
    """

    _FNV_OFFSET = 0xCBF29CE484222325
    _FNV_PRIME = 0x100000001B3

    def __init__(self, field_size: int, seed: int = 0):
        super().__init__(field_size)
        self.seed = seed & _MASK64

    def __call__(self, value: object) -> int:
        if not isinstance(value, str):
            raise FieldValueError(
                f"StringFieldHash hashes strings, got {type(value).__name__}"
            )
        word = (self._FNV_OFFSET ^ self.seed) & _MASK64
        for byte in value.encode("utf-8"):
            word ^= byte
            word = (word * self._FNV_PRIME) & _MASK64
        return self._fold(word)
