"""Directory design: choosing field sizes from query statistics.

The paper's introduction points at a companion problem solved by Rothnie &
Lozano [RoLo74], Aho & Ullman [AhU179] and Bolour [Bolo79]: given the
probability ``p_i`` that field ``i`` is specified in a query, how many
directory bits ``b_i`` (field size ``F_i = 2**b_i``) should each field get
so that the *expected number of qualified buckets* is minimal?  Under the
independence model that expectation factors::

    E[|R(q)|] = prod_i ( p_i + (1 - p_i) * 2**b_i )

because field ``i`` contributes one bucket slice when specified and all
``2**b_i`` when not.  With the per-field cost log-convex in ``b_i``, the
greedy allocator — repeatedly give the next bit to the field with the
smallest marginal factor — is exactly optimal; an exhaustive dynamic
program is included and property-tested against it.

The output plugs straight into the rest of the library: design the field
sizes here, then decluster the resulting file system with FX.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hashing.fields import FileSystem

__all__ = [
    "DirectoryDesign",
    "expected_qualified_buckets",
    "design_directory",
    "design_directory_exhaustive",
]


@dataclass(frozen=True)
class DirectoryDesign:
    """One bit allocation and its quality."""

    bits: tuple[int, ...]
    spec_probabilities: tuple[float, ...]

    @property
    def field_sizes(self) -> tuple[int, ...]:
        return tuple(1 << b for b in self.bits)

    @property
    def total_bits(self) -> int:
        return sum(self.bits)

    def expected_qualified(self) -> float:
        """E[|R(q)|] under the independence query model."""
        return expected_qualified_buckets(self.bits, self.spec_probabilities)

    def filesystem(self, m: int) -> FileSystem:
        """Materialise the designed directory over *m* devices."""
        return FileSystem.of(*self.field_sizes, m=m)


def expected_qualified_buckets(
    bits: Sequence[int], spec_probabilities: Sequence[float]
) -> float:
    """``prod_i (p_i + (1 - p_i) * 2**b_i)``.

    >>> expected_qualified_buckets([1, 1], [1.0, 0.0])
    2.0
    """
    if len(bits) != len(spec_probabilities):
        raise ConfigurationError(
            f"{len(bits)} bit counts for {len(spec_probabilities)} probabilities"
        )
    expectation = 1.0
    for b, p in zip(bits, spec_probabilities):
        if b < 0:
            raise ConfigurationError("bit counts must be non-negative")
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"probability {p} outside [0, 1]")
        expectation *= p + (1.0 - p) * (1 << b)
    return expectation


def _marginal_factor(p: float, b: int) -> float:
    """Multiplicative cost of giving field (p, b) one more bit."""
    current = p + (1.0 - p) * (1 << b)
    grown = p + (1.0 - p) * (1 << (b + 1))
    return grown / current


def design_directory(
    spec_probabilities: Sequence[float],
    total_bits: int,
    max_bits_per_field: int | None = None,
) -> DirectoryDesign:
    """Optimal bit allocation by greedy marginal factors.

    Give each of *total_bits* bits, one at a time, to the field whose
    expected-size factor grows the least.  Because each field's log-cost is
    convex in its bit count, the greedy exchange argument makes this exact
    (verified against :func:`design_directory_exhaustive` in the tests).
    Fields that are almost always specified (``p_i`` near 1) absorb bits
    first: doubling their directory costs almost nothing in expectation.

    >>> design_directory([0.9, 0.1], total_bits=4).bits
    (4, 0)
    """
    probabilities = tuple(float(p) for p in spec_probabilities)
    if not probabilities:
        raise ConfigurationError("need at least one field")
    for p in probabilities:
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"probability {p} outside [0, 1]")
    if total_bits < 0:
        raise ConfigurationError("total_bits must be non-negative")
    cap = max_bits_per_field
    if cap is not None and cap * len(probabilities) < total_bits:
        raise ConfigurationError(
            f"cannot place {total_bits} bits with a {cap}-bit cap on "
            f"{len(probabilities)} fields"
        )
    bits = [0] * len(probabilities)
    for __ in range(total_bits):
        candidates = [
            i
            for i in range(len(bits))
            if cap is None or bits[i] < cap
        ]
        best = min(
            candidates,
            key=lambda i: (_marginal_factor(probabilities[i], bits[i]), i),
        )
        bits[best] += 1
    return DirectoryDesign(bits=tuple(bits), spec_probabilities=probabilities)


def design_directory_exhaustive(
    spec_probabilities: Sequence[float],
    total_bits: int,
    max_bits_per_field: int | None = None,
) -> DirectoryDesign:
    """Reference allocator: enumerate every composition of *total_bits*.

    Exponential in the field count; exists to validate the greedy solver
    and for tiny design spaces where one wants certainty.
    """
    probabilities = tuple(float(p) for p in spec_probabilities)
    if not probabilities:
        raise ConfigurationError("need at least one field")
    n = len(probabilities)
    if n > 8 or total_bits > 24:
        raise ConfigurationError(
            "exhaustive design is for tiny spaces (n <= 8, bits <= 24); "
            "use design_directory"
        )
    cap = total_bits if max_bits_per_field is None else max_bits_per_field
    best: DirectoryDesign | None = None
    best_cost = math.inf
    for combo in itertools.product(range(cap + 1), repeat=n):
        if sum(combo) != total_bits:
            continue
        cost = expected_qualified_buckets(combo, probabilities)
        if cost < best_cost:
            best_cost = cost
            best = DirectoryDesign(bits=combo, spec_probabilities=probabilities)
    if best is None:
        raise ConfigurationError(
            f"no feasible allocation of {total_bits} bits under the cap"
        )
    return best
