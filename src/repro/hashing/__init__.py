"""Multi-key hashing substrate (paper section 1-2 background).

A *file system* here is the paper's abstraction: ``n`` fields, field ``i``
hashed into ``F_i`` values, stored across ``M`` parallel devices.  The
``multikey`` module supplies concrete per-field hash functions so real
records (tuples of Python values) can be mapped to bucket addresses, which is
what Rivest [Rive76] / Rothnie & Lozano [RoLo74] style multi-key hashing
does.
"""

from repro.hashing.design import (
    DirectoryDesign,
    design_directory,
    design_directory_exhaustive,
    expected_qualified_buckets,
)
from repro.hashing.fields import FieldSpec, FileSystem
from repro.hashing.hash_functions import (
    FieldHash,
    FibonacciFieldHash,
    IntegerRangeHash,
    StringFieldHash,
)
from repro.hashing.multikey import MultiKeyHash

__all__ = [
    "FieldSpec",
    "FileSystem",
    "FieldHash",
    "FibonacciFieldHash",
    "IntegerRangeHash",
    "StringFieldHash",
    "MultiKeyHash",
    "DirectoryDesign",
    "design_directory",
    "design_directory_exhaustive",
    "expected_qualified_buckets",
]
