"""Multi-key hash functions: records to bucket addresses.

Rivest [Rive76] and Rothnie & Lozano [RoLo74] proposed hashing each field of
a record independently and concatenating the results into a bucket address.
:class:`MultiKeyHash` bundles one :class:`~repro.hashing.hash_functions.FieldHash`
per field of a :class:`~repro.hashing.fields.FileSystem` and exposes both the
record-level map and the per-field map (the latter is what partial match
queries need: hash only the specified attributes).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.errors import ConfigurationError, FieldValueError
from repro.hashing.fields import Bucket, FileSystem
from repro.hashing.hash_functions import FibonacciFieldHash, FieldHash, StringFieldHash

__all__ = ["MultiKeyHash"]


class MultiKeyHash:
    """A set ``H = {H_1, ..., H_n}`` of per-field hash functions.

    >>> fs = FileSystem.of(4, 8, m=4)
    >>> mkh = MultiKeyHash.default(fs, seed=7)
    >>> bucket = mkh.bucket_of((123, "ann"))
    >>> len(bucket) == 2 and all(isinstance(v, int) for v in bucket)
    True
    """

    def __init__(self, filesystem: FileSystem, field_hashes: Sequence[FieldHash]):
        if len(field_hashes) != filesystem.n_fields:
            raise ConfigurationError(
                f"need {filesystem.n_fields} field hashes, got {len(field_hashes)}"
            )
        for i, (fh, spec) in enumerate(zip(field_hashes, filesystem.fields)):
            if fh.field_size != spec.size:
                raise ConfigurationError(
                    f"field {i}: hash targets {fh.field_size} values, "
                    f"field size is {spec.size}"
                )
        self.filesystem = filesystem
        self.field_hashes = tuple(field_hashes)

    @classmethod
    def default(cls, filesystem: FileSystem, seed: int = 0) -> "MultiKeyHash":
        """Fibonacci hashing on every field, seeds decorrelated per field.

        String attribute values are accepted too: a per-field FNV fallback is
        consulted when the value is a ``str``.
        """
        hashes = [
            _PolymorphicFieldHash(spec.size, seed=seed * 1_000_003 + i)
            for i, spec in enumerate(filesystem.fields)
        ]
        return cls(filesystem, hashes)

    def hash_field(self, field_index: int, value: object) -> int:
        """Hash one attribute value with ``H_i``."""
        if not 0 <= field_index < len(self.field_hashes):
            raise FieldValueError(f"no field {field_index}")
        return self.field_hashes[field_index](value)

    def bucket_of(self, record: Sequence[object]) -> Bucket:
        """Hash a whole record: ``H(r) = <H_1(r_1), ..., H_n(r_n)>``."""
        if len(record) != self.filesystem.n_fields:
            raise FieldValueError(
                f"record has {len(record)} attributes, file system has "
                f"{self.filesystem.n_fields} fields"
            )
        return tuple(h(value) for h, value in zip(self.field_hashes, record))

    def partial_bucket(self, specified: Mapping[int, object]) -> dict[int, int]:
        """Hash only the specified attributes of a partial match query.

        Returns ``{field_index: hashed_value}`` ready to build a
        :class:`~repro.query.partial_match.PartialMatchQuery`.
        """
        return {
            field_index: self.hash_field(field_index, value)
            for field_index, value in specified.items()
        }


class _PolymorphicFieldHash(FieldHash):
    """Routes ints to Fibonacci hashing and strings to FNV-1a."""

    def __init__(self, field_size: int, seed: int = 0):
        super().__init__(field_size)
        self._int_hash = FibonacciFieldHash(field_size, seed=seed)
        self._str_hash = StringFieldHash(field_size, seed=seed)

    def __call__(self, value: object) -> int:
        if isinstance(value, str):
            return self._str_hash(value)
        if isinstance(value, int) and not isinstance(value, bool):
            return self._int_hash(value)
        raise FieldValueError(
            f"cannot hash attribute of type {type(value).__name__}; "
            "provide a custom FieldHash"
        )
