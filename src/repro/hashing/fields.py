"""Field and file-system specifications (paper section 2).

A :class:`FileSystem` is the bucket grid ``f_1 x ... x f_n`` together with
the device count ``M``.  The paper assumes every ``F_i`` and ``M`` are powers
of two (standard for partitioned / dynamic / extendible hashing directories);
the constructors enforce that, because every optimality result downstream
depends on it.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, FieldValueError
from repro.util.validation import check_power_of_two

__all__ = ["FieldSpec", "FileSystem", "Bucket"]

#: A bucket address: one hashed value per field.
Bucket = tuple[int, ...]


@dataclass(frozen=True)
class FieldSpec:
    """One field of a multi-key hashed file.

    ``size`` is the paper's ``F_i`` (the number of hashed values, a power of
    two); ``name`` is optional and purely descriptive.
    """

    size: int
    name: str = ""

    def __post_init__(self) -> None:
        check_power_of_two("field size", self.size)

    @property
    def bits(self) -> int:
        """Number of bits of the hashed value (``log2 F``)."""
        return self.size.bit_length() - 1

    def domain(self) -> range:
        """The hashed-value domain ``f_i = {0, ..., F_i - 1}``."""
        return range(self.size)


@dataclass(frozen=True)
class FileSystem:
    """The bucket grid of a multi-key hashed file plus its device count.

    >>> fs = FileSystem.of(2, 8, m=4)
    >>> fs.bucket_count
    16
    >>> fs.small_fields()   # fields with F < M
    (0,)
    """

    fields: tuple[FieldSpec, ...]
    num_devices: int
    _sizes: tuple[int, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.fields:
            raise ConfigurationError("a file system needs at least one field")
        check_power_of_two("device count M", self.num_devices)
        object.__setattr__(self, "_sizes", tuple(f.size for f in self.fields))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def of(cls, *sizes: int, m: int) -> "FileSystem":
        """Build a file system from bare field sizes.

        >>> FileSystem.of(8, 8, 8, m=32).field_sizes
        (8, 8, 8)
        """
        return cls(tuple(FieldSpec(size) for size in sizes), m)

    @classmethod
    def uniform(cls, n_fields: int, size: int, m: int) -> "FileSystem":
        """Build an ``n``-field file system with every field the same size."""
        if n_fields <= 0:
            raise ConfigurationError("n_fields must be positive")
        return cls.of(*([size] * n_fields), m=m)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def n_fields(self) -> int:
        return len(self.fields)

    @property
    def field_sizes(self) -> tuple[int, ...]:
        return self._sizes

    @property
    def m(self) -> int:
        """Paper notation alias for :attr:`num_devices`."""
        return self.num_devices

    @property
    def bucket_count(self) -> int:
        """Total number of buckets, ``prod F_i``."""
        return math.prod(self._sizes)

    def small_fields(self) -> tuple[int, ...]:
        """Indices of fields with ``F_i < M`` (the problematic ones)."""
        return tuple(i for i, s in enumerate(self._sizes) if s < self.num_devices)

    def large_fields(self) -> tuple[int, ...]:
        """Indices of fields with ``F_i >= M``."""
        return tuple(i for i, s in enumerate(self._sizes) if s >= self.num_devices)

    # ------------------------------------------------------------------
    # Buckets
    # ------------------------------------------------------------------
    def buckets(self) -> Iterator[Bucket]:
        """Iterate over every bucket address in row-major order."""
        return itertools.product(*(range(s) for s in self._sizes))

    def check_bucket(self, bucket: Sequence[int]) -> Bucket:
        """Validate a bucket address and return it as a tuple.

        Raises :class:`~repro.errors.FieldValueError` on arity or range
        violations.
        """
        if len(bucket) != self.n_fields:
            raise FieldValueError(
                f"bucket has {len(bucket)} components, file system has "
                f"{self.n_fields} fields"
            )
        for i, (value, size) in enumerate(zip(bucket, self._sizes)):
            if not 0 <= value < size:
                raise FieldValueError(
                    f"field {i} value {value} outside domain [0, {size})"
                )
        return tuple(bucket)

    def bucket_index(self, bucket: Sequence[int]) -> int:
        """Row-major linear index of a bucket (used by array-backed stores)."""
        self.check_bucket(bucket)
        index = 0
        for value, size in zip(bucket, self._sizes):
            index = index * size + value
        return index

    def bucket_from_index(self, index: int) -> Bucket:
        """Inverse of :meth:`bucket_index`."""
        if not 0 <= index < self.bucket_count:
            raise FieldValueError(
                f"bucket index {index} outside [0, {self.bucket_count})"
            )
        values = []
        for size in reversed(self._sizes):
            values.append(index % size)
            index //= size
        return tuple(reversed(values))

    def describe(self) -> str:
        """One-line human description, e.g. ``F=(8, 8, 16), M=32``."""
        return f"F={self._sizes}, M={self.num_devices}"
