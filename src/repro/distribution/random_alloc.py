"""Seeded pseudo-random bucket allocation.

Not from the paper — included as the usual null baseline: random placement
balances *expected* load but its maximum per-device load concentrates around
``mean + O(sqrt(mean * log M))``, so it is essentially never strict optimal.
Comparing FX against it quantifies how much the XOR structure buys beyond
mere statistical balance.
"""

from __future__ import annotations

from repro.distribution.base import DistributionMethod, register_method
from repro.hashing.fields import Bucket, FileSystem
from repro.util.numbers import mix64

__all__ = ["RandomDistribution"]

_MASK = (1 << 64) - 1


@register_method
class RandomDistribution(DistributionMethod):
    """Stateless seeded random placement via splitmix64 on the bucket index.

    Deterministic for a given seed, so experiments are reproducible, but
    deliberately structure-free: it is *not* a separable method and gets no
    fast evaluation path.
    """

    name = "random"
    pattern_invariant = False

    def __init__(self, filesystem: FileSystem, seed: int = 0):
        super().__init__(filesystem)
        self.seed = seed & _MASK

    def device_of(self, bucket: Bucket) -> int:
        index = self.filesystem.bucket_index(bucket)
        word = mix64(index ^ self.seed)
        return word % self.filesystem.m
