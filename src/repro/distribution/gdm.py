"""GDM (Generalized Disk Modulo) allocation — Du & Sobolewski [DuSo82].

Bucket ``<J_1, ..., J_n>`` goes to device ``(c_1 J_1 + ... + c_n J_n) mod M``
for a vector of multipliers ``c``.  GDM generalises Modulo (all ``c_i = 1``)
and can be strict optimal where Modulo is not, but — as the paper stresses —
no general recipe for good multipliers exists; they are found by trial and
error.  Section 5 compares FX against the three multiplier sets below.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.distribution.base import SeparableMethod, register_method
from repro.errors import ConfigurationError, FieldValueError
from repro.hashing.fields import FileSystem

__all__ = ["GDMDistribution", "GDM_PRESETS"]

#: The three multiplier sets used in the paper's Tables 7-9 (section 5.2.1).
GDM_PRESETS: dict[str, tuple[int, ...]] = {
    "GDM1": (2, 3, 5, 7, 11, 13),
    "GDM2": (2, 5, 11, 43, 51, 57),
    "GDM3": (41, 43, 47, 51, 53, 57),
}


@register_method
class GDMDistribution(SeparableMethod):
    """Generalized Disk Modulo: ``device = (sum c_i * J_i) mod M``.

    >>> fs = FileSystem.of(8, 8, m=32)
    >>> gdm = GDMDistribution(fs, multipliers=(3, 5))
    >>> gdm.device_of((7, 7))
    24
    """

    name = "gdm"
    combine = "add"

    def __init__(self, filesystem: FileSystem, multipliers: Sequence[int]):
        super().__init__(filesystem)
        multipliers = tuple(int(c) for c in multipliers)
        if len(multipliers) != filesystem.n_fields:
            raise ConfigurationError(
                f"{len(multipliers)} multipliers for {filesystem.n_fields} fields"
            )
        if any(c <= 0 for c in multipliers):
            raise ConfigurationError("GDM multipliers must be positive")
        self.multipliers = multipliers
        self._m = filesystem.m

    @classmethod
    def preset(cls, filesystem: FileSystem, which: str) -> "GDMDistribution":
        """Instantiate GDM1/GDM2/GDM3 from the paper (prefixes are taken
        when the file system has fewer than six fields)."""
        try:
            multipliers = GDM_PRESETS[which]
        except KeyError:
            raise ConfigurationError(
                f"unknown GDM preset {which!r}; known: {sorted(GDM_PRESETS)}"
            ) from None
        n = filesystem.n_fields
        if n > len(multipliers):
            raise ConfigurationError(
                f"preset {which} provides {len(multipliers)} multipliers, "
                f"file system has {n} fields"
            )
        return cls(filesystem, multipliers[:n])

    def field_contribution(self, field_index: int, value: int) -> int:
        if not 0 <= value < self.filesystem.field_sizes[field_index]:
            raise FieldValueError(
                f"field {field_index} value {value} outside domain"
            )
        return (self.multipliers[field_index] * value) % self._m

    def describe(self) -> str:
        return (
            f"gdm{list(self.multipliers)} on {self.filesystem.describe()}"
        )
