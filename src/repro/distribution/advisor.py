"""Method advisor: pick a declustering method from workload statistics.

The operational question a user of this library faces: given my file-system
shape and roughly how often each field is specified, which method (and
which FX transforms) should I deploy?  The advisor scores candidates by the
*expected largest response size* under the independence query model —
computable exactly via the convolution engine — and reports a ranked
recommendation with the evidence attached.

Candidates: FX under the theorem-9 and paper policies, a searched family
assignment when four or more fields are small (where the fixed policies
lose their guarantee), Modulo, and GDM with the odd-multiplier default.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.optim_prob import exact_fraction
from repro.analysis.skew import expected_largest_response
from repro.core.fx import FXDistribution
from repro.distribution.base import SeparableMethod
from repro.distribution.gdm import GDMDistribution
from repro.distribution.modulo import ModuloDistribution
from repro.distribution.search import exhaustive_assignment_search
from repro.errors import AnalysisError
from repro.hashing.fields import FileSystem
from repro.util.tables import format_table

__all__ = ["Recommendation", "recommend_method"]

#: Small-field count above which exhaustive family search is added.
_SEARCH_THRESHOLD = 4
#: ... and above which it becomes too expensive to include.
_SEARCH_CEILING = 6


@dataclass(frozen=True)
class Candidate:
    """One scored option."""

    name: str
    method: SeparableMethod
    expected_largest: float
    optimal_fraction: float


@dataclass(frozen=True)
class Recommendation:
    """Ranked advice for one file system and workload."""

    filesystem: FileSystem
    p: float
    candidates: tuple[Candidate, ...]

    @property
    def best(self) -> Candidate:
        return self.candidates[0]

    def render(self) -> str:
        rows = [
            [
                c.name,
                round(c.expected_largest, 3),
                f"{100 * c.optimal_fraction:.1f}%",
            ]
            for c in self.candidates
        ]
        return format_table(
            ["candidate", "E[largest response]", "optimal queries"],
            rows,
            title=(
                f"Recommendation for {self.filesystem.describe()} "
                f"(p = {self.p})"
            ),
        )


def recommend_method(
    filesystem: FileSystem,
    p: float = 0.5,
    include_search: bool | None = None,
) -> Recommendation:
    """Score the standard candidates and rank them.

    Ranking key: expected largest response (primary), optimal-query
    fraction (tiebreak).  *include_search* forces family search on or off;
    by default it runs when 4-6 fields are small (below four the fixed
    policies are already perfect, above six it costs 4^L evaluations).

    >>> fs = FileSystem.of(4, 4, m=16)
    >>> recommend_method(fs).best.name
    'fx-theorem9'
    """
    if not 0.0 <= p <= 1.0:
        raise AnalysisError(f"specification probability {p} outside [0, 1]")
    small = len(filesystem.small_fields())
    if include_search is None:
        include_search = _SEARCH_THRESHOLD <= small <= _SEARCH_CEILING

    options: dict[str, SeparableMethod] = {
        "fx-theorem9": FXDistribution(filesystem, policy="theorem9"),
        "fx-paper": FXDistribution(filesystem, policy="paper"),
        "modulo": ModuloDistribution(filesystem),
        "gdm-odd": GDMDistribution(
            filesystem,
            multipliers=tuple(range(3, 3 + 2 * filesystem.n_fields, 2)),
        ),
    }
    if include_search:
        searched = exhaustive_assignment_search(filesystem, p=p)
        options["fx-searched"] = FXDistribution(
            filesystem, transforms=list(searched.methods)
        )

    candidates = [
        Candidate(
            name=name,
            method=method,
            expected_largest=expected_largest_response(method, p=p),
            optimal_fraction=exact_fraction(method, p=p),
        )
        for name, method in options.items()
    ]
    # On exact ties prefer the option with the strongest a-priori guarantee
    # (theorem9 is provably perfect for <= 3 small fields), then searched.
    preference = ["fx-theorem9", "fx-searched", "fx-paper", "gdm-odd", "modulo"]
    candidates.sort(
        key=lambda c: (
            c.expected_largest,
            -c.optimal_fraction,
            preference.index(c.name) if c.name in preference else len(preference),
        )
    )
    return Recommendation(
        filesystem=filesystem, p=p, candidates=tuple(candidates)
    )
