"""Searching transform assignments — the paper's section 6 future work.

FX with the fixed I/U/IU1/IU2 toolkit cannot be perfect optimal once four or
more fields are smaller than ``M`` (no method can [Sung87]), and the paper
closes by calling for "more general transformation functions".  This module
explores that direction within the existing toolkit: treat the assignment of
families to small fields as a discrete optimisation problem, scored by the
*exact* fraction of strict-optimal query patterns (computable cheaply thanks
to the convolution engine).

Two searchers are provided: exhaustive enumeration for small field counts
and a seeded steepest-ascent hill climber with restarts for larger ones.
Both return the incumbent assignment and its score history, so the ablation
benchmark can compare searched assignments against the paper's round-robin.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.analysis.optim_prob import exact_fraction
from repro.core.fx import FXDistribution
from repro.errors import ConfigurationError
from repro.hashing.fields import FileSystem

__all__ = [
    "AssignmentSearchResult",
    "assignment_score",
    "exhaustive_assignment_search",
    "hill_climb_assignment_search",
]

#: Families a small field may receive.
SMALL_FIELD_FAMILIES = ("I", "U", "IU1", "IU2")

#: Exhaustive search cap: 4**8 = 65536 assignments is the sensible ceiling.
MAX_EXHAUSTIVE_SMALL_FIELDS = 8


@dataclass
class AssignmentSearchResult:
    """Outcome of an assignment search."""

    methods: tuple[str, ...]
    score: float
    evaluations: int
    #: (evaluations-so-far, incumbent score) whenever the incumbent improved.
    history: list[tuple[int, float]] = field(default_factory=list)

    def build(self, filesystem: FileSystem) -> FXDistribution:
        """Instantiate the winning FX method on *filesystem*."""
        return FXDistribution(filesystem, transforms=list(self.methods))


def assignment_score(
    filesystem: FileSystem, methods: Sequence[str], p: float = 0.5
) -> float:
    """Exact fraction of strict-optimal patterns for one assignment."""
    fx = FXDistribution(filesystem, transforms=list(methods))
    return exact_fraction(fx, p=p)


def _full_assignment(
    filesystem: FileSystem, small_methods: Sequence[str]
) -> tuple[str, ...]:
    """Expand per-small-field choices into a per-field method vector."""
    small = filesystem.small_fields()
    if len(small_methods) != len(small):
        raise ConfigurationError(
            f"{len(small_methods)} methods for {len(small)} small fields"
        )
    methods = ["I"] * filesystem.n_fields
    for index, method in zip(small, small_methods):
        methods[index] = method
    return tuple(methods)


def exhaustive_assignment_search(
    filesystem: FileSystem, p: float = 0.5, parallel: int | None = None
) -> AssignmentSearchResult:
    """Score every family assignment of the small fields; return the best.

    Ties break toward the first assignment in lexicographic order, which
    keeps results deterministic.  *parallel* scores assignments over a
    thread pool; the incumbent fold stays serial and in lexicographic
    order, so the result and its history are identical to serial search.
    """
    from repro.perf.parallel import parallel_map

    small = filesystem.small_fields()
    if len(small) > MAX_EXHAUSTIVE_SMALL_FIELDS:
        raise ConfigurationError(
            f"{len(small)} small fields means {4 ** len(small)} assignments; "
            "use hill_climb_assignment_search instead"
        )
    from repro.obs import trace_span

    combos = [
        _full_assignment(filesystem, combo)
        for combo in itertools.product(SMALL_FIELD_FAMILIES, repeat=len(small))
    ]
    with trace_span(
        "search.exhaustive",
        filesystem=filesystem.describe(),
        assignments=len(combos),
    ) as span:
        scores = parallel_map(
            lambda methods: assignment_score(filesystem, methods, p=p),
            combos,
            parallel=parallel,
        )
        best_methods: tuple[str, ...] | None = None
        best_score = -1.0
        evaluations = 0
        history: list[tuple[int, float]] = []
        for methods, score in zip(combos, scores):
            evaluations += 1
            if score > best_score:
                best_score = score
                best_methods = methods
                history.append((evaluations, score))
        assert best_methods is not None
        span.set_attr("evaluations", evaluations)
        span.set_attr("score", round(best_score, 6))
    return AssignmentSearchResult(
        methods=best_methods,
        score=best_score,
        evaluations=evaluations,
        history=history,
    )


def hill_climb_assignment_search(
    filesystem: FileSystem,
    p: float = 0.5,
    restarts: int = 4,
    seed: int = 0,
    parallel: int | None = None,
) -> AssignmentSearchResult:
    """Steepest-ascent hill climbing over single-field family changes.

    Each restart begins from a random assignment (the first restart from the
    paper's round-robin, so the search never does worse than the paper) and
    moves to the best single-field change until no change improves.

    *parallel* scores each sweep's neighbourhood over a thread pool.  The
    incumbent/history bookkeeping replays the scores in the serial
    (position, family) order, so the result is identical to serial search —
    the neighbourhood is just evaluated concurrently.
    """
    from repro.perf.parallel import parallel_map

    small = filesystem.small_fields()
    if not small:
        methods = _full_assignment(filesystem, ())
        return AssignmentSearchResult(
            methods=methods,
            score=assignment_score(filesystem, methods, p=p),
            evaluations=1,
            history=[(1, 1.0)],
        )
    rng = random.Random(seed)
    cycle = ("I", "U", "IU1")
    paper_start = tuple(cycle[i % 3] for i in range(len(small)))

    best_methods: tuple[str, ...] | None = None
    best_score = -1.0
    evaluations = 0
    history: list[tuple[int, float]] = []

    def consider(
        small_methods: tuple[str, ...], score: float | None = None
    ) -> float:
        nonlocal evaluations, best_methods, best_score
        methods = _full_assignment(filesystem, small_methods)
        if score is None:
            score = assignment_score(filesystem, methods, p=p)
        evaluations += 1
        if score > best_score:
            best_score = score
            best_methods = methods
            history.append((evaluations, score))
        return score

    def neighbourhood(current: tuple[str, ...]) -> list[tuple[str, ...]]:
        return [
            current[:position] + (family,) + current[position + 1:]
            for position in range(len(small))
            for family in SMALL_FIELD_FAMILIES
            if family != current[position]
        ]

    from repro.obs import trace_span

    with trace_span(
        "search.hill_climb",
        filesystem=filesystem.describe(),
        restarts=max(1, restarts),
    ) as span:
        for restart in range(max(1, restarts)):
            if restart == 0:
                current = paper_start
            else:
                current = tuple(
                    rng.choice(SMALL_FIELD_FAMILIES) for __ in small
                )
            current_score = consider(current)
            improved = True
            while improved:
                improved = False
                best_neighbour = current
                best_neighbour_score = current_score
                neighbours = neighbourhood(current)
                scores = parallel_map(
                    lambda n: assignment_score(
                        filesystem, _full_assignment(filesystem, n), p=p
                    ),
                    neighbours,
                    parallel=parallel,
                )
                for neighbour, precomputed in zip(neighbours, scores):
                    score = consider(neighbour, score=precomputed)
                    if score > best_neighbour_score:
                        best_neighbour = neighbour
                        best_neighbour_score = score
                if best_neighbour_score > current_score:
                    current = best_neighbour
                    current_score = best_neighbour_score
                    improved = True
        assert best_methods is not None
        span.set_attr("evaluations", evaluations)
        span.set_attr("score", round(best_score, 6))
    return AssignmentSearchResult(
        methods=best_methods,
        score=best_score,
        evaluations=evaluations,
        history=history,
    )
