"""Abstract interface for bucket-to-device distribution methods.

A *distribution method* (paper section 2) is a function
``FD : f_1 x ... x f_n -> Z_M``.  Concrete subclasses implement
:meth:`DistributionMethod.device_of`; everything else — distributing the whole
grid, computing a query's per-device response histogram, inverse mapping — is
derived, with naive but always-correct defaults that subclasses override with
structure-aware fast paths.

:class:`SeparableMethod` refines the interface for methods whose device
address is a fold of independent per-field contributions under a group
operation (XOR for FX, addition mod M for Modulo/GDM).  That structure is
what makes exact evaluation cheap: the per-device histogram of a query is the
group convolution of the unspecified fields' contribution histograms, and the
specified fields only translate it (see :mod:`repro.analysis.histograms`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterator
from typing import ClassVar

import numpy as np

from repro.errors import ConfigurationError, DistributionError
from repro.hashing.fields import Bucket, FileSystem
from repro.query.partial_match import PartialMatchQuery
from repro.util.numbers import ceil_div

__all__ = [
    "DistributionMethod",
    "SeparableMethod",
    "register_method",
    "create_method",
    "available_methods",
]


class DistributionMethod(ABC):
    """Maps every bucket of a file system to one of its ``M`` devices."""

    #: Registry key; subclasses set a short stable name ("fx", "modulo", ...).
    name: ClassVar[str] = ""

    #: True when a query's response-histogram *shape* depends only on which
    #: fields are unspecified, not on the specified values.  Lets evaluators
    #: collapse the sweep over specified-value combinations to one
    #: representative query per pattern.
    pattern_invariant: ClassVar[bool] = False

    def __init__(self, filesystem: FileSystem):
        self.filesystem = filesystem

    # ------------------------------------------------------------------
    # Core mapping
    # ------------------------------------------------------------------
    @abstractmethod
    def device_of(self, bucket: Bucket) -> int:
        """Device index in ``[0, M)`` for one bucket address."""

    def distribute(self) -> list[list[Bucket]]:
        """Materialise the full allocation: ``result[d]`` lists d's buckets.

        Enumerates the entire grid; intended for the small bucket spaces of
        examples, tests and the paper's tables.
        """
        allocation: list[list[Bucket]] = [[] for __ in range(self.filesystem.m)]
        for bucket in self.filesystem.buckets():
            allocation[self.device_of(bucket)].append(bucket)
        return allocation

    # ------------------------------------------------------------------
    # Query-level derived quantities
    # ------------------------------------------------------------------
    def response_histogram(self, query: PartialMatchQuery) -> list[int]:
        """Per-device counts of qualified buckets (``r_i(q)`` for each i).

        The naive implementation walks ``R(q)``; separable methods override
        this with the convolution engine.
        """
        self._check_query(query)
        counts = [0] * self.filesystem.m
        for bucket in query.qualified_buckets():
            counts[self.device_of(bucket)] += 1
        return counts

    def largest_response(self, query: PartialMatchQuery) -> int:
        """The paper's response-time proxy: ``max_i r_i(q)``."""
        return max(self.response_histogram(query))

    def is_strict_optimal_for(self, query: PartialMatchQuery) -> bool:
        """Empirical strict-optimality test: max load <= ceil(|R(q)|/M)."""
        bound = ceil_div(query.qualified_count, self.filesystem.m)
        return self.largest_response(query) <= bound

    # ------------------------------------------------------------------
    # Inverse mapping (section 5.2: each device finds its own buckets)
    # ------------------------------------------------------------------
    def qualified_on_device(
        self, device: int, query: PartialMatchQuery
    ) -> Iterator[Bucket]:
        """Enumerate the qualified buckets residing on *device*.

        Naive default filters ``R(q)``; FX / Modulo / GDM override with
        algebraic solvers (see :mod:`repro.core.inverse`).
        """
        self._check_device(device)
        self._check_query(query)
        for bucket in query.qualified_buckets():
            if self.device_of(bucket) == device:
                yield bucket

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _check_query(self, query: PartialMatchQuery) -> None:
        if query.filesystem != self.filesystem:
            raise DistributionError(
                "query was built for a different file system "
                f"({query.filesystem.describe()} vs {self.filesystem.describe()})"
            )

    def _check_device(self, device: int) -> None:
        if not 0 <= device < self.filesystem.m:
            raise DistributionError(
                f"device {device} outside [0, {self.filesystem.m})"
            )

    def describe(self) -> str:
        """Human-readable one-liner for reports."""
        return f"{self.name or type(self).__name__} on {self.filesystem.describe()}"


class SeparableMethod(DistributionMethod):
    """A method whose device address folds per-field contributions.

    ``device_of(bucket) == fold(combine, [contribution(i, J_i)])`` where
    ``combine`` is ``"xor"`` or ``"add"`` (mod M).  Both operations make
    ``Z_M`` an abelian group, which gives two structural gifts:

    * pattern invariance (specified fields act by translation), and
    * convolution-based exact histograms.
    """

    #: ``"xor"`` or ``"add"``; subclasses pick their group.
    combine: ClassVar[str] = ""

    pattern_invariant = True

    @abstractmethod
    def field_contribution(self, field_index: int, value: int) -> int:
        """The contribution of field *field_index* holding *value*, in Z_M."""

    def contribution_table(self, field_index: int) -> list[int]:
        """All contributions of one field, indexed by field value."""
        size = self.filesystem.field_sizes[field_index]
        return [self.field_contribution(field_index, v) for v in range(size)]

    def contribution_array(self, field_index: int) -> np.ndarray:
        """One field's contribution table as a cached read-only int64 array.

        Methods are immutable after construction, so the table is built at
        most once per field; every bulk path (:meth:`devices_of_array`,
        :meth:`qualified_on_device_array`, the convolution evaluator) shares
        these arrays instead of rebuilding them per call.
        """
        cache = self.__dict__.setdefault("_contribution_arrays", {})
        table = cache.get(field_index)
        if table is None:
            table = np.asarray(
                self.contribution_table(field_index), dtype=np.int64
            )
            table.setflags(write=False)
            cache[field_index] = table
        return table

    def device_of(self, bucket: Bucket) -> int:
        self.filesystem.check_bucket(bucket)
        m = self.filesystem.m
        if self.combine == "xor":
            address = 0
            for i, value in enumerate(bucket):
                address ^= self.field_contribution(i, value)
            return address & (m - 1)
        if self.combine == "add":
            address = 0
            for i, value in enumerate(bucket):
                address += self.field_contribution(i, value)
            return address % m
        raise ConfigurationError(
            f"{type(self).__name__}.combine must be 'xor' or 'add', "
            f"got {self.combine!r}"
        )

    def response_histogram(self, query: PartialMatchQuery) -> list[int]:
        """Exact histogram via group convolution (see DESIGN.md section 2)."""
        # Imported here: analysis depends on this module for the interface.
        from repro.analysis.histograms import separable_response_histogram

        self._check_query(query)
        return separable_response_histogram(self, query)

    def devices_of_array(self, buckets) -> np.ndarray:
        """Vectorised :meth:`device_of` for bulk loading.

        *buckets* is an ``(N, n_fields)`` integer array (or nested
        sequence); returns an ``N``-vector of device indices.  Orders of
        magnitude faster than a Python loop for large batches — see
        ``benchmarks/bench_bulk_assignment.py``.
        """
        buckets = np.asarray(buckets, dtype=np.int64)
        if buckets.ndim != 2 or buckets.shape[1] != self.filesystem.n_fields:
            raise DistributionError(
                f"expected an (N, {self.filesystem.n_fields}) bucket array, "
                f"got shape {buckets.shape}"
            )
        if buckets.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        sizes = self.filesystem.field_sizes
        for i, size in enumerate(sizes):
            column = buckets[:, i]
            if column.min() < 0 or column.max() >= size:
                raise DistributionError(
                    f"field {i} values outside [0, {size})"
                )
        m = self.filesystem.m
        devices = np.zeros(buckets.shape[0], dtype=np.int64)
        if self.combine == "xor":
            for i in range(self.filesystem.n_fields):
                devices ^= self.contribution_array(i)[buckets[:, i]]
            return devices & (m - 1)
        for i in range(self.filesystem.n_fields):
            devices += self.contribution_array(i)[buckets[:, i]]
        return devices % m

    def qualified_on_device(
        self, device: int, query: PartialMatchQuery
    ) -> Iterator[Bucket]:
        """Algebraic inverse mapping: solve the group equation per device.

        Overrides the naive scan-and-filter default with the
        output-sensitive solver (:func:`repro.core.inverse.
        separable_qualified_on_device`), so every separable method — not
        just FX — enumerates in the order the vectorised paths
        (:meth:`qualified_on_device_array`, the batch engine's kernel)
        reproduce bit-identically.
        """
        from repro.core.inverse import separable_qualified_on_device

        self._check_device(device)
        self._check_query(query)
        return separable_qualified_on_device(self, device, query)

    def qualified_on_device_array(
        self, device: int, query: PartialMatchQuery
    ) -> np.ndarray:
        """Vectorised inverse mapping: *device*'s qualified buckets at once.

        Returns an ``(N, n_fields)`` int64 array whose rows are exactly the
        buckets :meth:`qualified_on_device` yields, in the same row-major
        order — the bulk fast path for query serving (see
        :func:`repro.core.inverse.separable_qualified_on_device_array`).
        """
        from repro.core.inverse import separable_qualified_on_device_array

        self._check_device(device)
        self._check_query(query)
        return separable_qualified_on_device_array(self, device, query)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, type[DistributionMethod]] = {}


def register_method(
    cls: type[DistributionMethod],
) -> type[DistributionMethod]:
    """Class decorator adding a method to the by-name registry.

    The class must define a non-empty, unique :attr:`DistributionMethod.name`.
    """
    if not cls.name:
        raise ConfigurationError(f"{cls.__name__} must define a registry name")
    if cls.name in _REGISTRY and _REGISTRY[cls.name] is not cls:
        raise ConfigurationError(f"method name {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls
    return cls


def create_method(
    name: str, filesystem: FileSystem, **kwargs: object
) -> DistributionMethod:
    """Instantiate a registered method by name.

    >>> fs = FileSystem.of(8, 8, m=4)
    >>> create_method("modulo", fs).name
    'modulo'
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown distribution method {name!r}; "
            f"known: {sorted(_REGISTRY)}"
        ) from None
    return cls(filesystem, **kwargs)  # type: ignore[call-arg]


def available_methods() -> tuple[str, ...]:
    """Sorted names of every registered distribution method."""
    return tuple(sorted(_REGISTRY))
