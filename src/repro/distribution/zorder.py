"""Z-order (bit-interleaving) declustering.

A classic locality-aware alternative from the range-query side of the
declustering literature: linearise the bucket grid along the Z-order
(Morton) curve — interleave the fields' bits, least significant first —
and let the device be the curve position modulo ``M``.  Nearby buckets sit
at nearby curve positions, so contiguous *ranges* spread well; scattered
partial match sets are where FX's XOR structure wins instead.

Because each output bit of the Morton code comes from exactly one field,
the device map decomposes into a XOR (indeed, disjoint-OR) of per-field
contributions: Z-order declustering is a
:class:`~repro.distribution.base.SeparableMethod` over the XOR group and
inherits the exact convolution analysis, inverse mapping, box-query
support and migration math for free.
"""

from __future__ import annotations

from repro.distribution.base import SeparableMethod, register_method
from repro.hashing.fields import FileSystem
from repro.util.numbers import ilog2

__all__ = ["ZOrderDistribution", "morton_positions"]


def morton_positions(field_bits: list[int]) -> list[list[int]]:
    """Global bit position of each field bit under round-robin interleave.

    Bits are dealt least-significant first, cycling over the fields that
    still have bits left; ``result[i][j]`` is the Morton position of bit
    ``j`` of field ``i``.

    >>> morton_positions([2, 1])
    [[0, 2], [1]]
    """
    positions: list[list[int]] = [[] for __ in field_bits]
    remaining = list(field_bits)
    next_bit = [0] * len(field_bits)
    global_position = 0
    while any(remaining):
        for i in range(len(field_bits)):
            if remaining[i]:
                positions[i].append(global_position)
                global_position += 1
                next_bit[i] += 1
                remaining[i] -= 1
    return positions


@register_method
class ZOrderDistribution(SeparableMethod):
    """Device = Morton(bucket) mod M.

    >>> fs = FileSystem.of(4, 4, m=4)
    >>> z = ZOrderDistribution(fs)
    >>> z.device_of((0, 0)), z.device_of((0, 1)), z.device_of((1, 0))
    (0, 2, 1)
    """

    name = "zorder"
    combine = "xor"

    def __init__(self, filesystem: FileSystem):
        super().__init__(filesystem)
        m_bits = ilog2(filesystem.m)
        field_bits = [ilog2(size) for size in filesystem.field_sizes]
        positions = morton_positions(field_bits)
        # Precompute, per field value, its scattered bits truncated to the
        # low m_bits of the Morton code.  Fields are bit-disjoint, so the
        # XOR fold in SeparableMethod reassembles the Morton code exactly.
        self._tables: list[list[int]] = []
        for i, size in enumerate(filesystem.field_sizes):
            table = []
            for value in range(size):
                scattered = 0
                for j, position in enumerate(positions[i]):
                    if position < m_bits and (value >> j) & 1:
                        scattered |= 1 << position
                table.append(scattered)
            self._tables.append(table)

    def field_contribution(self, field_index: int, value: int) -> int:
        return self._tables[field_index][value]

    def describe(self) -> str:
        return f"zorder on {self.filesystem.describe()}"
