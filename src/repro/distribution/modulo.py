"""Modulo (Disk Modulo) allocation — Du & Sobolewski [DuSo82].

Bucket ``<J_1, ..., J_n>`` goes to device ``(J_1 + ... + J_n) mod M``.
Simple and strict optimal whenever at least one unspecified field's size is a
multiple of ``M`` (with power-of-two sizes: ``F_i >= M``), but it degrades
badly once all unspecified fields are smaller than ``M`` — the sum of small
ranges piles up in a triangular histogram instead of spreading (this is
exactly the failure mode Tables 7-9 of the paper quantify, and the reason the
paper deems Modulo unsuited to large machines like the BBN Butterfly).
"""

from __future__ import annotations

from repro.distribution.base import SeparableMethod, register_method
from repro.errors import FieldValueError
from repro.hashing.fields import FileSystem
from repro.query.partial_match import PartialMatchQuery

__all__ = ["ModuloDistribution"]


@register_method
class ModuloDistribution(SeparableMethod):
    """Disk Modulo allocation: ``device = (sum of field values) mod M``.

    >>> fs = FileSystem.of(4, 4, m=16)
    >>> ModuloDistribution(fs).device_of((3, 3))
    6
    """

    name = "modulo"
    combine = "add"

    def __init__(self, filesystem: FileSystem):
        super().__init__(filesystem)
        self._m = filesystem.m

    def field_contribution(self, field_index: int, value: int) -> int:
        if not 0 <= value < self.filesystem.field_sizes[field_index]:
            raise FieldValueError(
                f"field {field_index} value {value} outside domain"
            )
        return value % self._m

    # ------------------------------------------------------------------
    # Published sufficient condition (used for the Figure 1-4 comparison)
    # ------------------------------------------------------------------
    def sufficient_condition_holds(self, query: PartialMatchQuery) -> bool:
        """[DuSo82]'s sufficient condition for strict optimality.

        Modulo allocation is strict optimal when the query has at most one
        unspecified field, or when some unspecified field's size is a
        multiple of ``M`` (equivalently ``F_i >= M`` here, since sizes and
        ``M`` are powers of two): that field alone cycles through all
        residues uniformly, and the remaining fields only convolve a uniform
        histogram with itself-shifted copies.
        """
        self._check_query(query)
        unspecified = query.unspecified_fields
        if len(unspecified) <= 1:
            return True
        sizes = self.filesystem.field_sizes
        return any(sizes[i] % self._m == 0 for i in unspecified)
