"""Similarity-based declustering via spanning structures — [FaRC86] style.

Fang, Lee & Chang (VLDB 1986) proposed de-clustering a Cartesian product
file by building a spanning structure over the buckets under a *similarity*
measure and then dealing consecutive buckets to distinct devices.  Two
buckets that differ in the field set ``D`` are co-retrieved by every query
pattern whose unspecified set contains ``D`` — ``2**(n - |D|)`` patterns — so
similarity decays exponentially in the Hamming distance between bucket
addresses, and Hamming distance is the natural path metric.

Two traversals are offered:

* ``"path"`` — greedy nearest-neighbour short spanning path (the paper's
  "short spanning paths"),
* ``"mst"`` — Prim minimal spanning tree walked in DFS preorder (the
  "minimal spanning trees" variant).

Both enumerate the full bucket grid, so they only scale to the small grids
used in examples and comparisons; the class enforces a grid-size cap rather
than silently taking hours.
"""

from __future__ import annotations

from repro.distribution.base import DistributionMethod, register_method
from repro.errors import ConfigurationError
from repro.hashing.fields import Bucket, FileSystem

__all__ = ["SpanningPathDistribution"]

#: Largest bucket grid the O(B^2) construction will accept.
MAX_BUCKETS = 8192


def _hamming(a: Bucket, b: Bucket) -> int:
    """Number of fields in which two bucket addresses differ."""
    return sum(1 for x, y in zip(a, b) if x != y)


@register_method
class SpanningPathDistribution(DistributionMethod):
    """Deal buckets to devices along a similarity-ordered spanning walk.

    Construction cost is quadratic in the number of buckets; lookups are
    O(1) from the precomputed map.
    """

    name = "spanning"
    pattern_invariant = False

    def __init__(self, filesystem: FileSystem, traversal: str = "path"):
        super().__init__(filesystem)
        if traversal not in ("path", "mst"):
            raise ConfigurationError(
                f"traversal must be 'path' or 'mst', got {traversal!r}"
            )
        if filesystem.bucket_count > MAX_BUCKETS:
            raise ConfigurationError(
                f"spanning declustering enumerates the grid; "
                f"{filesystem.bucket_count} buckets exceeds the "
                f"{MAX_BUCKETS}-bucket cap"
            )
        self.traversal = traversal
        order = (
            self._greedy_path() if traversal == "path" else self._mst_preorder()
        )
        m = filesystem.m
        self._device_map: dict[Bucket, int] = {
            bucket: position % m for position, bucket in enumerate(order)
        }

    def device_of(self, bucket: Bucket) -> int:
        self.filesystem.check_bucket(bucket)
        return self._device_map[tuple(bucket)]

    # ------------------------------------------------------------------
    # Spanning constructions
    # ------------------------------------------------------------------
    def _greedy_path(self) -> list[Bucket]:
        """Nearest-neighbour walk: repeatedly hop to the closest unvisited
        bucket (ties broken by bucket order for determinism)."""
        remaining = list(self.filesystem.buckets())
        path = [remaining.pop(0)]
        while remaining:
            current = path[-1]
            best_index = min(
                range(len(remaining)),
                key=lambda i: (_hamming(current, remaining[i]), remaining[i]),
            )
            path.append(remaining.pop(best_index))
        return path

    def _mst_preorder(self) -> list[Bucket]:
        """Prim MST under Hamming weights, then DFS preorder.

        Prim is run directly (dense graph, so adjacency materialisation via
        networkx would be strictly more work than the O(B^2) scan).
        """
        buckets = list(self.filesystem.buckets())
        count = len(buckets)
        in_tree = [False] * count
        best_dist = [len(self.filesystem.field_sizes) + 1] * count
        parent = [-1] * count
        best_dist[0] = 0
        children: dict[int, list[int]] = {i: [] for i in range(count)}
        for __ in range(count):
            node = min(
                (i for i in range(count) if not in_tree[i]),
                key=lambda i: (best_dist[i], i),
            )
            in_tree[node] = True
            if parent[node] >= 0:
                children[parent[node]].append(node)
            for other in range(count):
                if in_tree[other]:
                    continue
                dist = _hamming(buckets[node], buckets[other])
                if dist < best_dist[other]:
                    best_dist[other] = dist
                    parent[other] = node
        order: list[Bucket] = []
        stack = [0]
        while stack:
            node = stack.pop()
            order.append(buckets[node])
            stack.extend(reversed(children[node]))
        return order
