"""Chained replica placement on top of any distribution method.

Declustering research immediately following the paper (e.g. Hsiao &
DeWitt's chained declustering, 1990) added availability: store a *backup*
copy of every bucket on the device "next" to its primary, so that any
single device failure leaves every bucket readable and the failed device's
read load lands on a neighbour instead of a single mirror.

:class:`ChainedReplicaScheme` wraps a primary
:class:`~repro.distribution.base.DistributionMethod` and derives backup
placement by a fixed device offset.  It deliberately stays a *placement*
object — the storage integration (dual writes, failure masking, degraded
reads) lives in :mod:`repro.storage.replicated_file`.
"""

from __future__ import annotations

from repro.distribution.base import DistributionMethod
from repro.errors import ConfigurationError
from repro.hashing.fields import Bucket

__all__ = ["ChainedReplicaScheme"]


class ChainedReplicaScheme:
    """Primary placement by *base*, backup on ``(primary + offset) mod M``.

    *offset* must not be a multiple of ``M`` (the backup must land on a
    different device, or one failure loses data).

    >>> from repro import FileSystem, FXDistribution
    >>> fs = FileSystem.of(4, 4, m=4)
    >>> scheme = ChainedReplicaScheme(FXDistribution(fs))
    >>> scheme.primary_of((1, 2)) != scheme.backup_of((1, 2))
    True
    """

    def __init__(self, base: DistributionMethod, offset: int = 1):
        m = base.filesystem.m
        if m < 2:
            raise ConfigurationError(
                "replication needs at least two devices"
            )
        if offset % m == 0:
            raise ConfigurationError(
                f"offset {offset} maps backups onto their primaries (M={m})"
            )
        self.base = base
        self.offset = offset % m

    @property
    def filesystem(self):
        return self.base.filesystem

    def primary_of(self, bucket: Bucket) -> int:
        return self.base.device_of(bucket)

    def backup_of(self, bucket: Bucket) -> int:
        return (self.base.device_of(bucket) + self.offset) % self.filesystem.m

    def replicas_of(self, bucket: Bucket) -> tuple[int, int]:
        """(primary, backup) device pair for one bucket."""
        primary = self.primary_of(bucket)
        return primary, (primary + self.offset) % self.filesystem.m

    def describe(self) -> str:
        return f"chained(+{self.offset}) over {self.base.describe()}"
