"""Bucket-to-device distribution methods.

The FX method itself (the paper's contribution) lives in
:mod:`repro.core.fx`; this package holds the abstract interface, the
baselines the paper compares against (Modulo and GDM from Du & Sobolewski
1982, plus a random allocator and a FaRC86-style spanning-path declusterer)
and the section-6 extension: searching transform assignments.

Importing the concrete constructor classes from this package is
**deprecated**: build methods through :func:`repro.api.make_method`
instead, which covers every registered name behind one signature.  The
old names still resolve (with a one-time :class:`DeprecationWarning` per
name) so existing callers keep working until the next major release.
"""

import importlib
import threading
import warnings

from repro.distribution.base import (
    DistributionMethod,
    SeparableMethod,
    available_methods,
    create_method,
    register_method,
)
from repro.distribution.gdm import GDM_PRESETS

# Imported for their registration side-effects; the class names themselves
# are served lazily (and deprecated) by __getattr__ below.
from repro.distribution import gdm as _gdm                    # noqa: F401
from repro.distribution import modulo as _modulo              # noqa: F401
from repro.distribution import random_alloc as _random_alloc  # noqa: F401
from repro.distribution import replicated as _replicated      # noqa: F401
from repro.distribution import spanning as _spanning          # noqa: F401
from repro.distribution import zorder as _zorder              # noqa: F401

__all__ = [
    "DistributionMethod",
    "SeparableMethod",
    "register_method",
    "create_method",
    "available_methods",
    "ModuloDistribution",
    "GDMDistribution",
    "GDM_PRESETS",
    "RandomDistribution",
    "ChainedReplicaScheme",
    "SpanningPathDistribution",
    "ZOrderDistribution",
]

#: Constructor classes reachable here only through the deprecation shim.
_DEPRECATED_CONSTRUCTORS = {
    "ModuloDistribution": "repro.distribution.modulo",
    "GDMDistribution": "repro.distribution.gdm",
    "RandomDistribution": "repro.distribution.random_alloc",
    "ChainedReplicaScheme": "repro.distribution.replicated",
    "SpanningPathDistribution": "repro.distribution.spanning",
    "ZOrderDistribution": "repro.distribution.zorder",
}
_warned: set[str] = set()
#: Concurrent first accesses to one deprecated name must produce exactly
#: one warning; an unguarded check-then-add races under free threading.
_warned_lock = threading.Lock()


def __getattr__(name: str):
    module_name = _DEPRECATED_CONSTRUCTORS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    with _warned_lock:
        first_use = name not in _warned
        if first_use:
            _warned.add(name)
    if first_use:
        warnings.warn(
            f"importing {name} from repro.distribution is deprecated; "
            f"use repro.api.make_method(...) (or import from "
            f"{module_name} directly)",
            DeprecationWarning,
            stacklevel=2,
        )
    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_DEPRECATED_CONSTRUCTORS))
