"""Bucket-to-device distribution methods.

The FX method itself (the paper's contribution) lives in
:mod:`repro.core.fx`; this package holds the abstract interface, the
baselines the paper compares against (Modulo and GDM from Du & Sobolewski
1982, plus a random allocator and a FaRC86-style spanning-path declusterer)
and the section-6 extension: searching transform assignments.
"""

from repro.distribution.base import (
    DistributionMethod,
    SeparableMethod,
    available_methods,
    create_method,
    register_method,
)
from repro.distribution.gdm import GDM_PRESETS, GDMDistribution
from repro.distribution.modulo import ModuloDistribution
from repro.distribution.random_alloc import RandomDistribution
from repro.distribution.replicated import ChainedReplicaScheme
from repro.distribution.spanning import SpanningPathDistribution
from repro.distribution.zorder import ZOrderDistribution

__all__ = [
    "DistributionMethod",
    "SeparableMethod",
    "register_method",
    "create_method",
    "available_methods",
    "ModuloDistribution",
    "GDMDistribution",
    "GDM_PRESETS",
    "RandomDistribution",
    "ChainedReplicaScheme",
    "SpanningPathDistribution",
    "ZOrderDistribution",
]
