"""repro — FX declustering for partial match retrieval.

A production-quality reproduction of *"Optimal File Distribution For Partial
Match Retrieval"* (Kim & Pramanik, SIGMOD 1988): the FX (fieldwise
exclusive-or) bucket-to-device distribution method, its field transformation
algebra and optimality theory, the Modulo/GDM baselines it is compared
against, a simulated parallel storage substrate, and an exact analysis engine
that regenerates every table and figure of the paper's evaluation.

Quickstart::

    from repro import FileSystem, FXDistribution, PartialMatchQuery

    fs = FileSystem.of(2, 8, m=4)           # two fields, four devices
    fx = FXDistribution(fs)                 # the paper's FX method
    fx.device_of((1, 6))                    # -> device of one bucket
    q = PartialMatchQuery.from_dict(fs, {0: 1})   # field 1 pinned, field 2 free
    fx.response_histogram(q)                # -> [2, 2, 2, 2]: strict optimal

See ``examples/`` for full scenarios and ``benchmarks/`` for the paper's
tables and figures.
"""

from repro.core.fx import BasicFXDistribution, FXDistribution
from repro.core.optimality import (
    OptimalityReport,
    is_k_optimal,
    is_perfect_optimal,
    is_strict_optimal,
    optimality_report,
)
from repro.core.theorems import (
    fx_perfect_optimal_sufficient,
    fx_strict_optimal_sufficient,
    modulo_strict_optimal_sufficient,
)
from repro.core.transforms import (
    IU1Transform,
    IU2Transform,
    IdentityTransform,
    UTransform,
    assign_transforms,
    make_transform,
)
from repro.api import make_durable_file, make_method, make_service, method_names
from repro.distribution.base import (
    DistributionMethod,
    available_methods,
    create_method,
)
from repro.distribution.gdm import GDM_PRESETS, GDMDistribution
from repro.distribution.modulo import ModuloDistribution
from repro.distribution.random_alloc import RandomDistribution
from repro.distribution.replicated import ChainedReplicaScheme
from repro.distribution.spanning import SpanningPathDistribution
from repro.distribution.zorder import ZOrderDistribution
from repro.errors import ReproError
from repro.runtime import (
    DegradedExecutor,
    FaultAwareQuerySimulator,
    FaultPlan,
    RetryPolicy,
)
from repro.engine import BatchEngine, BatchExecutionReport
from repro.hashing import FieldSpec, FileSystem, MultiKeyHash, design_directory
from repro.query import PartialMatchQuery, QueryWorkload, WorkloadSpec
from repro.service import (
    LoadGenerator,
    LoadSpec,
    QueryService,
    ServiceConfig,
)
from repro.storage import (
    BatchExecutor,
    DynamicPartitionedFile,
    ParallelQuerySimulator,
    PartitionedFile,
    QueryExecutor,
    ReplicatedFile,
)

__version__ = "1.5.0"

__all__ = [
    "__version__",
    # core
    "FXDistribution",
    "BasicFXDistribution",
    "IdentityTransform",
    "UTransform",
    "IU1Transform",
    "IU2Transform",
    "make_transform",
    "assign_transforms",
    "fx_strict_optimal_sufficient",
    "fx_perfect_optimal_sufficient",
    "modulo_strict_optimal_sufficient",
    "is_strict_optimal",
    "is_k_optimal",
    "is_perfect_optimal",
    "optimality_report",
    "OptimalityReport",
    # baselines
    "DistributionMethod",
    "ModuloDistribution",
    "GDMDistribution",
    "GDM_PRESETS",
    "RandomDistribution",
    "SpanningPathDistribution",
    "ZOrderDistribution",
    "ChainedReplicaScheme",
    "create_method",
    "available_methods",
    # facade
    "make_method",
    "make_durable_file",
    "make_service",
    "method_names",
    # runtime
    "FaultPlan",
    "RetryPolicy",
    "DegradedExecutor",
    "FaultAwareQuerySimulator",
    # substrate
    "FieldSpec",
    "FileSystem",
    "MultiKeyHash",
    "design_directory",
    "PartitionedFile",
    "DynamicPartitionedFile",
    "ReplicatedFile",
    "QueryExecutor",
    "BatchExecutor",
    "BatchEngine",
    "BatchExecutionReport",
    "ParallelQuerySimulator",
    "PartialMatchQuery",
    "QueryWorkload",
    "WorkloadSpec",
    # serving tier
    "QueryService",
    "ServiceConfig",
    "LoadGenerator",
    "LoadSpec",
    "ReproError",
]
