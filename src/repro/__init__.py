"""repro — FX declustering for partial match retrieval.

A production-quality reproduction of *"Optimal File Distribution For Partial
Match Retrieval"* (Kim & Pramanik, SIGMOD 1988): the FX (fieldwise
exclusive-or) bucket-to-device distribution method, its field transformation
algebra and optimality theory, the Modulo/GDM baselines it is compared
against, a simulated parallel storage substrate, and an exact analysis engine
that regenerates every table and figure of the paper's evaluation.

Quickstart::

    from repro import FileSystem, FXDistribution, PartialMatchQuery

    fs = FileSystem.of(2, 8, m=4)           # two fields, four devices
    fx = FXDistribution(fs)                 # the paper's FX method
    fx.device_of((1, 6))                    # -> device of one bucket
    q = PartialMatchQuery.from_dict(fs, {0: 1})   # field 1 pinned, field 2 free
    fx.response_histogram(q)                # -> [2, 2, 2, 2]: strict optimal

See ``examples/`` for full scenarios and ``benchmarks/`` for the paper's
tables and figures.

Importing the baseline constructor classes (``ModuloDistribution``,
``GDMDistribution``, ...) from this top-level package is **deprecated**:
build methods through :func:`repro.api.make_method` instead.  The old
names still resolve (with a one-time :class:`DeprecationWarning` per
name) so existing callers keep working until the next major release.
"""

import importlib
import threading
import warnings

from repro.core.fx import BasicFXDistribution, FXDistribution
from repro.core.optimality import (
    OptimalityReport,
    is_k_optimal,
    is_perfect_optimal,
    is_strict_optimal,
    optimality_report,
)
from repro.core.theorems import (
    fx_perfect_optimal_sufficient,
    fx_strict_optimal_sufficient,
    modulo_strict_optimal_sufficient,
)
from repro.core.transforms import (
    IU1Transform,
    IU2Transform,
    IdentityTransform,
    UTransform,
    assign_transforms,
    make_transform,
)
from repro.api import (
    make_durable_file,
    make_gateway,
    make_method,
    make_service,
    method_names,
)
from repro.distribution.base import (
    DistributionMethod,
    available_methods,
    create_method,
)
from repro.distribution.gdm import GDM_PRESETS
from repro.errors import ReproError
from repro.runtime import (
    DegradedExecutor,
    FaultAwareQuerySimulator,
    FaultPlan,
    RetryPolicy,
)
from repro.engine import BatchEngine, BatchExecutionReport
from repro.hashing import FieldSpec, FileSystem, MultiKeyHash, design_directory
from repro.query import PartialMatchQuery, QueryWorkload, WorkloadSpec
from repro.service import (
    LoadGenerator,
    LoadSpec,
    QueryService,
    ServiceConfig,
)
from repro.storage import (
    BatchExecutor,
    DynamicPartitionedFile,
    ParallelQuerySimulator,
    PartitionedFile,
    QueryExecutor,
    ReplicatedFile,
)

__version__ = "1.9.0"

__all__ = [
    "__version__",
    # core
    "FXDistribution",
    "BasicFXDistribution",
    "IdentityTransform",
    "UTransform",
    "IU1Transform",
    "IU2Transform",
    "make_transform",
    "assign_transforms",
    "fx_strict_optimal_sufficient",
    "fx_perfect_optimal_sufficient",
    "modulo_strict_optimal_sufficient",
    "is_strict_optimal",
    "is_k_optimal",
    "is_perfect_optimal",
    "optimality_report",
    "OptimalityReport",
    # baselines
    "DistributionMethod",
    "ModuloDistribution",
    "GDMDistribution",
    "GDM_PRESETS",
    "RandomDistribution",
    "SpanningPathDistribution",
    "ZOrderDistribution",
    "ChainedReplicaScheme",
    "create_method",
    "available_methods",
    # facade
    "make_method",
    "make_durable_file",
    "make_service",
    "make_gateway",
    "method_names",
    # runtime
    "FaultPlan",
    "RetryPolicy",
    "DegradedExecutor",
    "FaultAwareQuerySimulator",
    # substrate
    "FieldSpec",
    "FileSystem",
    "MultiKeyHash",
    "design_directory",
    "PartitionedFile",
    "DynamicPartitionedFile",
    "ReplicatedFile",
    "QueryExecutor",
    "BatchExecutor",
    "BatchEngine",
    "BatchExecutionReport",
    "ParallelQuerySimulator",
    "PartialMatchQuery",
    "QueryWorkload",
    "WorkloadSpec",
    # serving tier
    "QueryService",
    "ServiceConfig",
    "LoadGenerator",
    "LoadSpec",
    "ReproError",
]

#: Baseline constructor classes reachable at top level only through the
#: deprecation shim below — same pattern as :mod:`repro.distribution`.
_DEPRECATED_CONSTRUCTORS = {
    "ModuloDistribution": "repro.distribution.modulo",
    "GDMDistribution": "repro.distribution.gdm",
    "RandomDistribution": "repro.distribution.random_alloc",
    "ChainedReplicaScheme": "repro.distribution.replicated",
    "SpanningPathDistribution": "repro.distribution.spanning",
    "ZOrderDistribution": "repro.distribution.zorder",
}
_warned: set[str] = set()
#: Concurrent first accesses to one deprecated name must produce exactly
#: one warning; an unguarded check-then-add races under free threading.
_warned_lock = threading.Lock()


def __getattr__(name: str):
    module_name = _DEPRECATED_CONSTRUCTORS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    with _warned_lock:
        first_use = name not in _warned
        if first_use:
            _warned.add(name)
    if first_use:
        warnings.warn(
            f"importing {name} from repro is deprecated; use "
            f"repro.api.make_method(...) (or import from "
            f"{module_name} directly)",
            DeprecationWarning,
            stacklevel=2,
        )
    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_DEPRECATED_CONSTRUCTORS))
