"""Elementary integer arithmetic used throughout the library.

Everything in the paper lives in power-of-two arithmetic (field sizes and the
device count are powers of two), and the baseline methods (Modulo, GDM)
require solving linear congruences for inverse mapping.  This module collects
those primitives so the rest of the code can stay declarative.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = [
    "is_power_of_two",
    "ilog2",
    "ceil_div",
    "egcd",
    "modinv",
    "solve_linear_congruence",
    "mix64",
]

#: splitmix64 constants (public-domain PRNG finaliser).
_MIX_GAMMA = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB
_MASK64 = (1 << 64) - 1


def mix64(word: int) -> int:
    """splitmix64 finalisation: a high-quality 64-bit mixer.

    Every output bit — including the low ones — avalanches, which matters
    for extendible-hashing-style schemes that consume hash values from the
    least significant bit upward.

    >>> mix64(0) != 0
    True
    """
    word = (word + _MIX_GAMMA) & _MASK64
    word = ((word ^ (word >> 30)) * _MIX1) & _MASK64
    word = ((word ^ (word >> 27)) * _MIX2) & _MASK64
    return word ^ (word >> 31)


def is_power_of_two(value: int) -> bool:
    """Return ``True`` when *value* is a positive integral power of two.

    >>> [v for v in range(1, 10) if is_power_of_two(v)]
    [1, 2, 4, 8]
    """
    return isinstance(value, int) and value > 0 and (value & (value - 1)) == 0


def ilog2(value: int) -> int:
    """Return ``log2(value)`` for a power of two *value*.

    Raises :class:`ValueError` when *value* is not a power of two, because a
    silent floor would hide configuration bugs in callers that rely on exact
    bit widths.

    >>> ilog2(8)
    3
    """
    if not is_power_of_two(value):
        raise ConfigurationError(f"ilog2 expects a power of two, got {value!r}")
    return value.bit_length() - 1


def ceil_div(numerator: int, denominator: int) -> int:
    """Return ``ceil(numerator / denominator)`` using exact integer math.

    This implements the paper's optimality bound ``ceil(|R(q)| / M)``.

    >>> ceil_div(7, 4)
    2
    >>> ceil_div(8, 4)
    2
    """
    if denominator <= 0:
        raise ConfigurationError("denominator must be positive")
    if numerator < 0:
        raise ConfigurationError("numerator must be non-negative")
    return -(-numerator // denominator)


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclid: return ``(g, x, y)`` with ``a*x + b*y == g == gcd(a, b)``.

    >>> egcd(6, 10)
    (2, 2, -1)
    """
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_x, x = x, old_x - q * x
        old_y, y = y, old_y - q * y
    if old_r < 0:
        old_r, old_x, old_y = -old_r, -old_x, -old_y
    return old_r, old_x, old_y


def modinv(a: int, modulus: int) -> int:
    """Return the multiplicative inverse of ``a`` modulo *modulus*.

    Raises :class:`ValueError` when the inverse does not exist (``a`` and the
    modulus share a factor).  Needed to invert GDM multipliers during inverse
    mapping.

    >>> modinv(3, 16)
    11
    """
    g, x, __ = egcd(a % modulus, modulus)
    if g != 1:
        raise ConfigurationError(f"{a} is not invertible modulo {modulus}")
    return x % modulus


def solve_linear_congruence(a: int, b: int, modulus: int) -> list[int]:
    """Solve ``a * x == b (mod modulus)`` for ``x`` in ``[0, modulus)``.

    Returns the (possibly empty) sorted list of solutions.  The general case
    with ``gcd(a, modulus) > 1`` matters for GDM configurations with even
    multipliers.

    >>> solve_linear_congruence(4, 8, 16)
    [2, 6, 10, 14]
    >>> solve_linear_congruence(4, 6, 16)
    []
    """
    if modulus <= 0:
        raise ConfigurationError("modulus must be positive")
    a %= modulus
    b %= modulus
    g, x, __ = egcd(a, modulus)
    if g == 0:
        # a == 0 (mod modulus): either every x works or none does.
        return list(range(modulus)) if b == 0 else []
    if b % g:
        return []
    step = modulus // g
    base = (x * (b // g)) % modulus % step
    return [base + k * step for k in range(g)]
