"""Minimal plain-text table rendering for experiment reports.

The benchmark harness prints every reproduced table in the same row/column
layout as the paper; this renderer keeps that output dependency-free and
stable enough to diff between runs.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.errors import ConfigurationError

__all__ = ["format_table", "format_cell"]


def format_cell(value: object, float_digits: int = 1) -> str:
    """Render one table cell.

    Floats use a fixed number of digits (the paper prints one decimal for
    response sizes); everything else falls back to ``str``.
    """
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    float_digits: int = 1,
) -> str:
    """Render *rows* under *headers* as an aligned plain-text table.

    >>> print(format_table(["k", "FX"], [[2, 3.2], [3, 18.9]]))
    k  FX
    -  ----
    2  3.2
    3  18.9
    """
    str_rows = [[format_cell(cell, float_digits) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append(render_row(["-" * width for width in widths]))
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)
