"""Argument validation helpers shared by the public constructors."""

from __future__ import annotations

from repro.errors import ConfigurationError, NotPowerOfTwoError
from repro.util.numbers import is_power_of_two

__all__ = ["check_power_of_two", "check_range", "check_positive"]


def check_power_of_two(name: str, value: int) -> int:
    """Validate that *value* is a power of two and return it.

    Raises :class:`~repro.errors.NotPowerOfTwoError` otherwise, naming the
    offending parameter so configuration mistakes read clearly.
    """
    if not is_power_of_two(value):
        raise NotPowerOfTwoError(name, value)
    return value


def check_positive(name: str, value: int) -> int:
    """Validate that *value* is a positive integer and return it."""
    if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
        raise ConfigurationError(f"{name} must be a positive integer, got {value!r}")
    return value


def check_range(name: str, value: int, upper: int) -> int:
    """Validate ``0 <= value < upper`` and return *value*.

    Used for field values (``0 <= J_i < F_i``) and device indices
    (``0 <= d < M``).
    """
    if not isinstance(value, int) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    if not 0 <= value < upper:
        raise ConfigurationError(f"{name} must be in [0, {upper}), got {value}")
    return value
