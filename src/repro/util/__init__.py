"""Shared low-level utilities: integer math, validation and text rendering."""

from repro.util.numbers import (
    ceil_div,
    egcd,
    ilog2,
    is_power_of_two,
    modinv,
    solve_linear_congruence,
)
from repro.util.tables import format_table
from repro.util.validation import check_power_of_two, check_range

__all__ = [
    "ceil_div",
    "egcd",
    "ilog2",
    "is_power_of_two",
    "modinv",
    "solve_linear_congruence",
    "format_table",
    "check_power_of_two",
    "check_range",
]
