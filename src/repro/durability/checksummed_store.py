"""A bucket store that detects silent corruption on every read.

:class:`ChecksummedBucketStore` keeps a CRC per bucket page alongside the
records and recomputes/compares it on every :meth:`records_in` — the read
path every executor goes through — raising
:class:`~repro.errors.CorruptPageError` the moment a page and its checksum
disagree.  Writes (insert/delete/replace) keep the checksum current, so a
mismatch can only mean the page changed *outside* the store interface:
exactly the silent-media-corruption model the scrubber repairs from the
chained replica.

:meth:`corrupt_bucket` is the deterministic injection hook: it mutates a
page the way failing media would — tampering a record in place or dropping
the page wholesale — without touching the checksum, so detection machinery
is exercised against honest damage.
"""

from __future__ import annotations

import zlib
from collections.abc import Iterable

from repro.durability.checksum import page_checksum
from repro.errors import ConfigurationError, CorruptPageError, StorageError
from repro.hashing.fields import Bucket
from repro.storage.bucket_store import BucketStore
from repro.storage.paged_store import PackedPageStore

__all__ = ["ChecksummedBucketStore", "PackedChecksummedStore"]

#: The sentinel a "tamper" corruption writes over a record — distinctive in
#: test failures and impossible to collide with real field tuples.
TAMPERED_RECORD = ("#corrupt#",)


class ChecksummedBucketStore(BucketStore):
    """Bucket store with a CRC page checksum verified on every read.

    >>> store = ChecksummedBucketStore()
    >>> store.insert((0,), (1, "a"))
    >>> store.records_in((0,))
    ((1, 'a'),)
    >>> store.corrupt_bucket((0,))
    >>> store.verify_bucket((0,))
    False
    """

    verifies_reads = True

    def __init__(self) -> None:
        super().__init__()
        self._sums: dict[Bucket, int] = {}

    # ------------------------------------------------------------------
    # Mutation (checksums kept current)
    # ------------------------------------------------------------------
    def _resum(self, key: Bucket) -> None:
        records = self._buckets.get(key)
        if records:
            self._sums[key] = page_checksum(key, records)
        else:
            self._sums.pop(key, None)

    def insert(self, bucket: Bucket, record: object) -> None:
        super().insert(bucket, record)
        self._resum(tuple(bucket))

    def delete(self, bucket: Bucket, record: object) -> bool:
        removed = super().delete(bucket, record)
        if removed:
            self._resum(tuple(bucket))
        return removed

    def replace_bucket(self, bucket: Bucket, records: Iterable[object]) -> None:
        super().replace_bucket(bucket, records)
        self._resum(tuple(bucket))

    def clear(self) -> None:
        super().clear()
        self._sums.clear()

    # ------------------------------------------------------------------
    # Verified reads
    # ------------------------------------------------------------------
    def records_in(self, bucket: Bucket) -> tuple[object, ...]:
        """The page's records, verified against its checksum.

        Raises :class:`~repro.errors.CorruptPageError` when the page and
        its checksum disagree — including a present checksum with a missing
        page (the page was lost) and a present page with a missing checksum
        (the page appeared out of nowhere).
        """
        key = tuple(bucket)
        records = super().records_in(key)
        expected = self._sums.get(key)
        if expected is None:
            if records:
                raise CorruptPageError(
                    f"bucket {key}: page present but has no checksum"
                )
            return records
        if page_checksum(key, records) != expected:
            raise CorruptPageError(
                f"bucket {key}: page checksum mismatch "
                f"(stored {expected}, computed {page_checksum(key, records)})"
            )
        return records

    def verify_bucket(self, bucket: Bucket) -> bool:
        """Non-raising verification: does this page match its checksum?"""
        key = tuple(bucket)
        records = super().records_in(key)
        expected = self._sums.get(key)
        if expected is None:
            return not records
        return page_checksum(key, records) == expected

    def tracked_buckets(self) -> list[Bucket]:
        """Every bucket this store has data *or* a checksum for, sorted.

        A dropped page leaves its checksum behind, so the scrubber can
        still see that something should have been here.
        """
        return sorted(set(self._buckets) | set(self._sums))

    @property
    def checksum_count(self) -> int:
        return len(self._sums)

    # ------------------------------------------------------------------
    # Deterministic damage (fault injection)
    # ------------------------------------------------------------------
    def corrupt_bucket(self, bucket: Bucket, kind: str = "tamper") -> None:
        """Damage one page the way failing media would, bypassing checksums.

        ``"tamper"`` overwrites the page's first record in place;
        ``"drop"`` loses the page wholesale (its checksum survives, as
        real checksum metadata would on a different page).  Both leave the
        store detectably corrupt, never silently consistent.
        """
        key = tuple(bucket)
        records = self._buckets.get(key)
        if not records:
            raise StorageError(f"cannot corrupt absent bucket {key}")
        if kind == "tamper":
            records[0] = TAMPERED_RECORD
        elif kind == "drop":
            del self._buckets[key]
            self._record_count -= len(records)
        else:
            raise ConfigurationError(
                f"unknown corruption kind {kind!r}; use 'tamper' or 'drop'"
            )

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Count invariants plus a full checksum verification sweep."""
        super().check_invariants()
        for key in self.tracked_buckets():
            if not self.verify_bucket(key):
                raise CorruptPageError(
                    f"bucket {key} fails checksum verification"
                )


class PackedChecksummedStore(PackedPageStore):
    """Packed page store with zero-copy CRC verification on every read.

    The integrity model of :class:`ChecksummedBucketStore` over the byte
    pages of :class:`~repro.storage.paged_store.PackedPageStore`: one
    CRC-32 per bucket, folded over a bucket header and every page buffer
    *as bytes* (``zlib.crc32`` over :meth:`page_views` memoryviews).
    Because the buffers are the stored state itself, verification never
    decodes — or copies — a record: a read CRCs the raw pages, compares,
    and only then consults the page decode cache.  That is the engine-path
    win over the tuple-based store, whose every checksum rebuilds a
    canonical ``repr`` of the live record tuples.

    >>> store = PackedChecksummedStore(page_capacity=2)
    >>> store.insert((0,), (1, "a"))
    >>> store.records_in((0,))
    ((1, 'a'),)
    >>> store.corrupt_bucket((0,))
    >>> store.verify_bucket((0,))
    False
    """

    verifies_reads = True

    def __init__(self, page_capacity: int = 4):
        super().__init__(page_capacity)
        self._sums: dict[Bucket, int] = {}

    # ------------------------------------------------------------------
    # Mutation (checksums kept current)
    # ------------------------------------------------------------------
    def _crc_of(self, key: Bucket) -> int:
        """CRC-32 over the bucket header and the raw page buffers."""
        crc = zlib.crc32(repr(tuple(key)).encode("utf-8"))
        for view in self.page_views(key):
            crc = zlib.crc32(view, crc)
        return crc

    def _resum(self, key: Bucket) -> None:
        if self.has_bucket(key):
            self._sums[key] = self._crc_of(key)
        else:
            self._sums.pop(key, None)

    def insert(self, bucket: Bucket, record: object) -> None:
        super().insert(bucket, record)
        self._resum(tuple(bucket))

    def delete(self, bucket: Bucket, record: object) -> bool:
        removed = super().delete(bucket, record)
        if removed:
            self._resum(tuple(bucket))
        return removed

    def replace_bucket(self, bucket: Bucket, records: Iterable[object]) -> None:
        super().replace_bucket(bucket, records)
        self._resum(tuple(bucket))

    def clear(self) -> None:
        super().clear()
        self._sums.clear()

    def compact(self) -> int:
        freed = super().compact()
        for key in list(self.buckets()):
            self._resum(key)
        return freed

    # ------------------------------------------------------------------
    # Verified reads
    # ------------------------------------------------------------------
    def records_in(self, bucket: Bucket) -> tuple[object, ...]:
        """The bucket's records, pages verified byte-for-byte first.

        Raises :class:`~repro.errors.CorruptPageError` on any mismatch,
        including a surviving checksum with lost pages and pages with no
        checksum — the same taxonomy as the tuple-based store.
        """
        key = tuple(bucket)
        expected = self._sums.get(key)
        if expected is None:
            if self.has_bucket(key):
                raise CorruptPageError(
                    f"bucket {key}: pages present but have no checksum"
                )
            return ()
        if not self.has_bucket(key):
            raise CorruptPageError(
                f"bucket {key}: checksum present but pages are lost"
            )
        computed = self._crc_of(key)
        if computed != expected:
            raise CorruptPageError(
                f"bucket {key}: page checksum mismatch "
                f"(stored {expected}, computed {computed})"
            )
        return super().records_in(key)

    def verify_bucket(self, bucket: Bucket) -> bool:
        """Non-raising verification over the raw page bytes."""
        key = tuple(bucket)
        expected = self._sums.get(key)
        if expected is None:
            return not self.has_bucket(key)
        if not self.has_bucket(key):
            return False
        return self._crc_of(key) == expected

    def tracked_buckets(self) -> list[Bucket]:
        """Every bucket with pages *or* a checksum, sorted (see
        :meth:`ChecksummedBucketStore.tracked_buckets`)."""
        return sorted(set(self._pages) | set(self._sums))

    @property
    def checksum_count(self) -> int:
        return len(self._sums)

    # ------------------------------------------------------------------
    # Deterministic damage (fault injection)
    # ------------------------------------------------------------------
    def corrupt_bucket(self, bucket: Bucket, kind: str = "tamper") -> None:
        """Damage the raw bytes the way failing media would.

        ``"tamper"`` flips one byte in the first page's buffer (and drops
        the decode cache, as real media corruption hits bytes beneath any
        cache); ``"drop"`` loses the pages wholesale, checksum surviving.
        """
        key = tuple(bucket)
        chain = self._pages.get(key)
        if not chain:
            raise StorageError(f"cannot corrupt absent bucket {key}")
        if kind == "tamper":
            page = chain[0]
            page.buf[0] ^= 0xFF
            page.cache = None
        elif kind == "drop":
            self._record_count -= sum(len(page.ends) for page in chain)
            del self._pages[key]
        else:
            raise ConfigurationError(
                f"unknown corruption kind {kind!r}; use 'tamper' or 'drop'"
            )

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        super().check_invariants()
        for key in self.tracked_buckets():
            if not self.verify_bucket(key):
                raise CorruptPageError(
                    f"bucket {key} fails checksum verification"
                )
