"""Rebuilding a permanently lost device from its chained replicas.

Fail-stop masking (PR 2) survives a device being *down*; this module
survives a device being *gone* — media loss, the scenario replication
exists for.  With chained placement every bucket of the lost device has
its other copy on a neighbour, so :class:`DeviceRebuilder` reconstructs
the device bucket-for-bucket from the survivors, restores it to service
and then proves the result:

* ``check_invariants`` — every restored bucket sits on a device the
  replica scheme names, checksums verify,
* the content digest matches what the replicas jointly imply, and
* (optionally) an :class:`~repro.obs.ObservedOptimalityChecker` replay
  shows the restored assignment still meets the paper's strict bound
  ``max_j |R(q) on device j| <= ceil(|R(q)|/M)`` — rebuilding restores
  not just the data but the *declustering quality* the data was placed
  for.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CorruptPageError, RecoveryError, StorageError
from repro.hashing.fields import Bucket
from repro.storage.replicated_file import ReplicatedFile

__all__ = ["DeviceRebuilder", "RebuildReport"]


@dataclass
class RebuildReport:
    """Outcome of reconstructing one lost device."""

    device: int = -1
    buckets_restored: int = 0
    records_restored: int = 0
    source_devices: tuple[int, ...] = ()
    optimality_verified: bool | None = None
    optimality_queries: int = 0

    def summary(self) -> str:
        verified = (
            "not checked"
            if self.optimality_verified is None
            else (
                f"strict-optimal over {self.optimality_queries} queries"
                if self.optimality_verified
                else "OPTIMALITY VIOLATION"
            )
        )
        return (
            f"rebuilt device {self.device}: {self.buckets_restored} buckets, "
            f"{self.records_restored} records from devices "
            f"{sorted(self.source_devices)}; bound {verified}"
        )

    def to_dict(self) -> dict:
        return {
            "device": self.device,
            "buckets_restored": self.buckets_restored,
            "records_restored": self.records_restored,
            "source_devices": sorted(self.source_devices),
            "optimality_verified": self.optimality_verified,
            "optimality_queries": self.optimality_queries,
        }


class DeviceRebuilder:
    """Reconstructs a lost device's buckets from the chained replicas.

    >>> from repro.api import make_durable_file
    >>> durable = make_durable_file("fx", fields=(4, 4), devices=4)
    >>> durable.insert_all([(i, 3 - i % 4) for i in range(48)])
    >>> before = durable.state_digest()
    >>> durable.file.lose_device(1)
    >>> report = DeviceRebuilder(durable.file).rebuild(1)
    >>> durable.state_digest() == before
    True
    """

    def __init__(self, file: ReplicatedFile):
        if not isinstance(file, ReplicatedFile):
            raise RecoveryError(
                "device rebuild reconstructs from chained replicas; it "
                f"needs a ReplicatedFile, got {type(file).__name__}"
            )
        self.file = file
        self.scheme = file.scheme

    def rebuild(self, device_id: int, queries=None) -> RebuildReport:
        """Reconstruct *device_id*, restore it to service, verify.

        *queries*, when given, drives an
        :class:`~repro.obs.ObservedOptimalityChecker` replay against the
        scheme's base method after the rebuild (telemetry must be
        enabled for that step).  A surviving replica that fails its own
        checksum aborts the rebuild with
        :class:`~repro.errors.CorruptPageError` — scrub first, then
        rebuild.
        """
        from repro.obs import telemetry, trace_span

        m = self.file.filesystem.m
        if not 0 <= device_id < m:
            raise StorageError(f"no device {device_id}")
        target = self.file.devices[device_id]
        report = RebuildReport(device=device_id)
        sources: set[int] = set()
        with trace_span("rebuild.device", device=device_id) as span:
            target.store.clear()
            for partner in self.file.devices:
                if partner.device_id == device_id:
                    continue
                for bucket in sorted(partner.store.buckets()):
                    if device_id not in self.scheme.replicas_of(bucket):
                        continue
                    try:
                        records = partner.store.records_in(bucket)
                    except CorruptPageError as error:
                        raise CorruptPageError(
                            f"rebuild source device {partner.device_id} is "
                            f"corrupt ({error}); scrub before rebuilding"
                        ) from None
                    target.store.replace_bucket(bucket, records)
                    sources.add(partner.device_id)
                    report.buckets_restored += 1
                    report.records_restored += len(records)
            self.file.restore_device(device_id)
            self.file.check_invariants()
            report.source_devices = tuple(sorted(sources))
            span.set_attr("buckets_restored", report.buckets_restored)
            span.set_attr("records_restored", report.records_restored)
            span.add_event(
                "device.rebuilt",
                device=device_id,
                buckets=report.buckets_restored,
                records=report.records_restored,
            )
            if queries is not None:
                queries = list(queries)
                check = self._verify_optimality(queries)
                report.optimality_verified = check
                report.optimality_queries = len(queries)
                span.set_attr("optimality_verified", check)
        metrics = telemetry().metrics
        metrics.add("durability.devices_rebuilt", 1)
        metrics.add("durability.records_restored", report.records_restored)
        return report

    def _verify_optimality(self, queries) -> bool:
        """Replay *queries* through telemetry and judge the strict bound
        on the restored assignment (placement is method-derived, so the
        rebuilt file serves exactly the pre-failure histograms)."""
        from repro.obs import ObservedOptimalityChecker

        check = ObservedOptimalityChecker(self.scheme.base).replay(queries)
        return check.all_strict_optimal and check.consistent
