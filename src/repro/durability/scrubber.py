"""Background scrub-and-repair over a replicated file.

Silent corruption is only dangerous while it stays silent.  The
:class:`Scrubber` sweeps every device of a
:class:`~repro.storage.replicated_file.ReplicatedFile` whose devices use
:class:`~repro.durability.ChecksummedBucketStore` pages, verifying each
page against its checksum *and* against the replica map: a page is bad if
its CRC fails ("corrupt") or if the chained-placement scheme says it must
exist here but it does not ("missing").  Bad pages are repaired by copying
the partner replica's verified copy; a page bad on *both* replicas is
reported unrepairable — never silently dropped.

Each sweep emits one ``scrub.sweep`` span with a ``corruption.detected``
event per bad page and a ``page.repaired`` / ``repair.failed`` event per
repair outcome, plus ``durability.*`` counters — so ``obs report`` shows
the self-healing activity next to the query telemetry.

Deterministic damage: :meth:`Scrubber.inject` walks pages in canonical
order and corrupts exactly those the
:class:`~repro.runtime.faults.FaultInjector`'s seeded splitmix64
corruption stream selects, so a scrub scenario replays bit-for-bit from
``FaultPlan(seed=..., corruption_rate=...)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.hashing.fields import Bucket
from repro.runtime.faults import FaultInjector
from repro.storage.replicated_file import ReplicatedFile

__all__ = ["Scrubber", "ScrubReport"]


@dataclass
class ScrubReport:
    """Outcome of one full sweep over every device of a replicated file."""

    devices_swept: int = 0
    pages_checked: int = 0
    corrupt_pages: int = 0
    missing_pages: int = 0
    repaired_pages: int = 0
    unrepairable: list[tuple[int, Bucket]] = field(default_factory=list)

    @property
    def bad_pages(self) -> int:
        return self.corrupt_pages + self.missing_pages

    @property
    def clean(self) -> bool:
        """True when the sweep found nothing wrong at all."""
        return self.bad_pages == 0

    @property
    def healed(self) -> bool:
        """True when everything found wrong was repaired."""
        return not self.unrepairable

    def summary(self) -> str:
        return (
            f"scrubbed {self.pages_checked} pages on {self.devices_swept} "
            f"devices: {self.corrupt_pages} corrupt, {self.missing_pages} "
            f"missing, {self.repaired_pages} repaired, "
            f"{len(self.unrepairable)} unrepairable"
        )

    def to_dict(self) -> dict:
        return {
            "devices_swept": self.devices_swept,
            "pages_checked": self.pages_checked,
            "corrupt_pages": self.corrupt_pages,
            "missing_pages": self.missing_pages,
            "repaired_pages": self.repaired_pages,
            "unrepairable": [
                {"device": device, "bucket": list(bucket)}
                for device, bucket in self.unrepairable
            ],
            "clean": self.clean,
            "healed": self.healed,
        }


class Scrubber:
    """Sweeps a replicated file's devices, repairing from chained replicas.

    >>> from repro.api import make_durable_file
    >>> durable = make_durable_file("fx", fields=(4, 4), devices=4)
    >>> durable.insert_all([(i, i % 4) for i in range(32)])
    >>> report = Scrubber(durable.file).sweep()
    >>> report.clean and report.healed
    True
    """

    def __init__(self, file: ReplicatedFile):
        if not isinstance(file, ReplicatedFile):
            raise ConfigurationError(
                "the scrubber repairs from chained replicas; it needs a "
                f"ReplicatedFile, got {type(file).__name__}"
            )
        for device in file.devices:
            if not hasattr(device.store, "verify_bucket"):
                raise ConfigurationError(
                    f"device {device.device_id} store has no checksums "
                    "(use ChecksummedBucketStore — e.g. "
                    "api.make_durable_file(checksummed=True))"
                )
        self.file = file
        self.scheme = file.scheme

    # ------------------------------------------------------------------
    # Deterministic damage
    # ------------------------------------------------------------------
    def inject(
        self, injector: FaultInjector, sweep: int = 0
    ) -> list[tuple[int, Bucket, str]]:
        """Corrupt exactly the pages the seeded fault stream selects.

        Pages are indexed in canonical (device, sorted-bucket) order, so
        the same plan damages the same pages no matter when or how often
        this runs.  Returns ``(device, bucket, kind)`` per damaged page.
        """
        if injector.m != self.file.filesystem.m:
            raise ConfigurationError(
                f"injector is bound to {injector.m} devices, file has "
                f"{self.file.filesystem.m}"
            )
        damaged: list[tuple[int, Bucket, str]] = []
        for device in self.file.devices:
            store = device.store
            for index, bucket in enumerate(sorted(store.buckets())):
                kind = injector.page_corruption_kind(
                    device.device_id, index, sweep
                )
                if kind is not None:
                    store.corrupt_bucket(bucket, kind=kind)
                    damaged.append((device.device_id, bucket, kind))
        return damaged

    # ------------------------------------------------------------------
    # The sweep
    # ------------------------------------------------------------------
    def _expected_pages(self) -> dict[int, set[Bucket]]:
        """Every page each device must hold, derived from actual contents
        plus the replica map — so a page lost on one device is still
        *expected* there because its partner holds the other copy."""
        expected: dict[int, set[Bucket]] = {
            device.device_id: set() for device in self.file.devices
        }
        for device in self.file.devices:
            store = device.store
            tracked = (
                store.tracked_buckets()
                if hasattr(store, "tracked_buckets")
                else store.buckets()
            )
            for bucket in tracked:
                primary, backup = self.scheme.replicas_of(bucket)
                expected[primary].add(tuple(bucket))
                expected[backup].add(tuple(bucket))
        return expected

    def sweep(self) -> ScrubReport:
        """Verify every expected page on every device; repair what fails.

        Repair copies the partner replica's page only after verifying the
        partner's checksum — a repair must never propagate corruption.
        """
        from repro.obs import telemetry, trace_span

        report = ScrubReport()
        expected = self._expected_pages()
        with trace_span(
            "scrub.sweep", devices=self.file.filesystem.m
        ) as span:
            for device in self.file.devices:
                report.devices_swept += 1
                store = device.store
                for bucket in sorted(expected[device.device_id]):
                    report.pages_checked += 1
                    if store.verify_bucket(bucket) and (
                        store.has_bucket(bucket)
                        or not self._partner_has(device.device_id, bucket)
                    ):
                        continue
                    kind = "corrupt" if store.has_bucket(bucket) else "missing"
                    if kind == "corrupt":
                        report.corrupt_pages += 1
                    else:
                        report.missing_pages += 1
                    span.add_event(
                        "corruption.detected",
                        device=device.device_id,
                        bucket=list(bucket),
                        kind=kind,
                    )
                    self._repair(device.device_id, bucket, report, span)
            span.set_attr("pages_checked", report.pages_checked)
            span.set_attr("bad_pages", report.bad_pages)
            span.set_attr("repaired", report.repaired_pages)
        metrics = telemetry().metrics
        metrics.add("durability.pages_scrubbed", report.pages_checked)
        if report.bad_pages:
            metrics.add("durability.corruption_detected", report.bad_pages)
        if report.repaired_pages:
            metrics.add("durability.pages_repaired", report.repaired_pages)
        return report

    def _partner_of(self, device_id: int, bucket: Bucket) -> int:
        primary, backup = self.scheme.replicas_of(bucket)
        return backup if device_id == primary else primary

    def _partner_has(self, device_id: int, bucket: Bucket) -> bool:
        partner = self.file.devices[self._partner_of(device_id, bucket)]
        return partner.store.has_bucket(bucket)

    def _repair(
        self, device_id: int, bucket: Bucket, report: ScrubReport, span
    ) -> None:
        partner_id = self._partner_of(device_id, bucket)
        partner_store = self.file.devices[partner_id].store
        if not partner_store.verify_bucket(bucket) or not partner_store.has_bucket(
            bucket
        ):
            report.unrepairable.append((device_id, tuple(bucket)))
            span.add_event(
                "repair.failed",
                device=device_id,
                bucket=list(bucket),
                partner=partner_id,
            )
            return
        records = partner_store.records_in(bucket)
        self.file.devices[device_id].store.replace_bucket(bucket, records)
        report.repaired_pages += 1
        span.add_event(
            "page.repaired",
            device=device_id,
            bucket=list(bucket),
            partner=partner_id,
            records=len(records),
        )
