"""Append-only write-ahead log with deterministic crash injection.

Every mutation of a :class:`~repro.durability.durable_file.DurableFile` is
framed into the log *before* it touches any device, so a crash at any
moment leaves a prefix of complete entries plus, at worst, one torn tail
frame.  The frame format is the classic one::

    <u32 payload length> <u32 CRC-32 of payload> <payload bytes>

with the payload a canonical JSON object (sorted keys, compact
separators).  :func:`read_wal` walks the frames: an incomplete or
CRC-failing *final* frame is the expected torn tail of a crash and is
discarded; a CRC failure *mid-log* means the log itself was corrupted and
raises :class:`~repro.errors.WalError` — recovery must not silently skip
interior entries.

Crashes are injected at record boundaries by :class:`CrashPoint`
(typically derived from a :class:`~repro.runtime.faults.FaultPlan`'s
``crash_after_writes``): the append that would write entry ``k`` raises
:class:`~repro.errors.SimulatedCrashError` instead, optionally leaving a
torn half-frame behind.  Because the boundary is data, not chance, tests
can sweep *every* boundary and assert recovery byte-identity at each one.
"""

from __future__ import annotations

import json
import struct
import zlib
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.errors import ConfigurationError, SimulatedCrashError, WalError

__all__ = ["WalEntry", "CrashPoint", "WriteAheadLog", "read_wal"]

_FRAME = struct.Struct("<II")
#: Operations a WAL entry may carry.  ``move`` entries are audit records
#: written by migrations; replay treats them as no-ops because placement is
#: derived from the distribution method, not from the log.
OPS = ("insert", "delete", "move")


@dataclass(frozen=True)
class WalEntry:
    """One logged mutation: an operation plus the record it applies to.

    Records must be sequences of JSON scalars (the field values the
    multi-key hash consumes); they round-trip the log as tuples.

    *meta* carries optional JSON-scalar annotations — today the
    gateway's client-stamped idempotency key (``{"idem": "..."}``), so
    exactly-once dedup state survives a crash by riding the same log the
    records do.  ``None`` serialises exactly as the pre-meta format, so
    existing golden WAL bytes are unchanged.
    """

    op: str
    record: tuple
    meta: Mapping[str, object] | None = None

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ConfigurationError(
                f"unknown WAL op {self.op!r}; known: {OPS}"
            )
        object.__setattr__(self, "record", tuple(self.record))
        if self.meta is not None:
            if not isinstance(self.meta, Mapping):
                raise ConfigurationError(
                    f"WAL entry meta must be a mapping, got {self.meta!r}"
                )
            object.__setattr__(self, "meta", dict(self.meta))

    def payload(self) -> bytes:
        """Canonical JSON payload bytes (sorted keys, compact separators)."""
        body: dict = {"op": self.op, "record": list(self.record)}
        if self.meta is not None:
            body["meta"] = self.meta
        return json.dumps(
            body, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")

    @classmethod
    def from_payload(cls, data: bytes) -> "WalEntry":
        try:
            obj = json.loads(data)
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise WalError(f"WAL payload is not valid JSON: {error}") from None
        if (
            not isinstance(obj, dict)
            or not isinstance(obj.get("op"), str)
            or not isinstance(obj.get("record"), list)
            or not isinstance(obj.get("meta", {}), dict)
        ):
            raise WalError(f"malformed WAL payload: {obj!r}")
        try:
            return cls(obj["op"], tuple(obj["record"]), obj.get("meta"))
        except ConfigurationError as error:
            raise WalError(str(error)) from None

    def frame(self) -> bytes:
        payload = self.payload()
        return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass(frozen=True)
class CrashPoint:
    """Crash deterministically at one WAL record boundary.

    The append of entry number *after_records* (0-based count of complete
    entries already in the log) raises instead of writing; with
    *torn_tail* the first half of the frame lands in the log first, the
    way a power cut mid-write would leave it.
    """

    after_records: int
    torn_tail: bool = False

    def __post_init__(self) -> None:
        if self.after_records < 0:
            raise ConfigurationError(
                f"crash boundary must be non-negative, got {self.after_records}"
            )


def read_wal(data: bytes) -> tuple[list[WalEntry], int]:
    """Parse WAL bytes into ``(complete entries, torn tail byte count)``.

    A truncated or CRC-failing final frame is the expected residue of a
    crash and is reported, not raised; damage anywhere else raises
    :class:`~repro.errors.WalError`.
    """
    entries: list[WalEntry] = []
    offset = 0
    total = len(data)
    while offset < total:
        if offset + _FRAME.size > total:
            return entries, total - offset
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        end = start + length
        if end > total:
            return entries, total - offset
        payload = bytes(data[start:end])
        if zlib.crc32(payload) != crc:
            if end == total:
                return entries, total - offset
            raise WalError(
                f"WAL frame at byte {offset} fails its CRC mid-log; "
                "the log is corrupted, not merely torn"
            )
        entries.append(WalEntry.from_payload(payload))
        offset = end
    return entries, 0


class WriteAheadLog:
    """Append-only framed log with optional deterministic crash injection.

    >>> wal = WriteAheadLog()
    >>> wal.append("insert", (1, 2))
    >>> wal.entry_count
    1
    >>> read_wal(wal.to_bytes())[0][0].record
    (1, 2)
    """

    def __init__(self, crash: CrashPoint | None = None):
        self._buffer = bytearray()
        self._count = 0
        self.crash = crash
        self._crashed = False
        #: Torn tail bytes dropped when this log was reopened from bytes.
        self.torn_bytes_discarded = 0

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(
        self,
        op: str,
        record: Sequence[object],
        meta: Mapping[str, object] | None = None,
    ) -> None:
        """Frame and append one entry; fires the crash point if armed."""
        entry = WalEntry(op, tuple(record), meta)
        if self._crashed:
            raise SimulatedCrashError(
                "write-ahead log already crashed; recover before writing"
            )
        if (
            self.crash is not None
            and self._count >= self.crash.after_records
        ):
            self._crashed = True
            if self.crash.torn_tail:
                frame = entry.frame()
                self._buffer += frame[: max(1, len(frame) // 2)]
            raise SimulatedCrashError(
                f"simulated crash at WAL record boundary {self._count}"
            )
        self._buffer += entry.frame()
        self._count += 1

    def append_insert(
        self,
        record: Sequence[object],
        meta: Mapping[str, object] | None = None,
    ) -> None:
        self.append("insert", record, meta)

    def append_delete(self, record: Sequence[object]) -> None:
        self.append("delete", record)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def entry_count(self) -> int:
        """Complete entries written (a torn tail is not an entry)."""
        return self._count

    @property
    def crashed(self) -> bool:
        return self._crashed

    @property
    def byte_size(self) -> int:
        return len(self._buffer)

    def to_bytes(self) -> bytes:
        return bytes(self._buffer)

    def scan(self) -> tuple[list[WalEntry], int]:
        """Parse the log: ``(complete entries, torn tail byte count)``."""
        return read_wal(bytes(self._buffer))

    def entries(self) -> list[WalEntry]:
        """The complete entries, torn tail (if any) discarded."""
        return self.scan()[0]

    @classmethod
    def from_bytes(cls, data: bytes) -> "WriteAheadLog":
        """Reopen a log from its serialised bytes (e.g. after a crash).

        A torn tail is truncated away — exactly what a journal reopen
        does — and its size recorded in :attr:`torn_bytes_discarded`, so
        further appends land after the last *complete* frame.
        """
        entries, torn = read_wal(data)
        wal = cls()
        wal._buffer = bytearray(data[: len(data) - torn])
        wal._count = len(entries)
        wal.torn_bytes_discarded = torn
        return wal

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WriteAheadLog(entries={self._count}, bytes={len(self._buffer)}"
            f"{', crashed' if self._crashed else ''})"
        )
