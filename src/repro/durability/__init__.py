"""Durability and self-healing: the layer that survives real failures.

PR 2's runtime masks *transient* faults (retries, failover); this package
closes the loop on the *persistent* ones the declustering literature
spreads data across devices to survive:

* :mod:`repro.durability.checksum` — canonical record encoding and CRC
  page checksums,
* :mod:`repro.durability.checksummed_store` —
  :class:`ChecksummedBucketStore`, a bucket store that verifies every
  read and detects silent corruption
  (:class:`~repro.errors.CorruptPageError`),
* :mod:`repro.durability.wal` — an append-only :class:`WriteAheadLog`
  with deterministic crash injection (:class:`CrashPoint`) at any record
  boundary and torn-tail detection,
* :mod:`repro.durability.durable_file` — :class:`DurableFile` (WAL in
  front of a partitioned/replicated file) and :func:`recover`, the replay
  that restores a crashed file to a state byte-identical to the
  fault-free run,
* :mod:`repro.durability.scrubber` — :class:`Scrubber`, the background
  sweep that detects corrupt/missing pages and repairs them from the
  chained replica,
* :mod:`repro.durability.rebuild` — :class:`DeviceRebuilder`, permanent
  device loss handled by reconstructing the lost buckets from replicas
  and re-verifying the ``ceil(|R(q)|/M)`` optimality bound.

Corruption and crash schedules come from the same seeded splitmix64
stream as every other fault (:class:`~repro.runtime.faults.FaultPlan`
``corruption_rate`` / ``crash_after_writes``), so every failure scenario
in tests and the ``python -m repro recover`` CLI is exactly
reproducible.
"""

from repro.durability.checksum import encode_page, page_checksum
from repro.durability.checksummed_store import (
    ChecksummedBucketStore,
    PackedChecksummedStore,
)
from repro.durability.durable_file import DurableFile, RecoveryReport, recover
from repro.durability.rebuild import DeviceRebuilder, RebuildReport
from repro.durability.scrubber import ScrubReport, Scrubber
from repro.durability.wal import CrashPoint, WalEntry, WriteAheadLog, read_wal

__all__ = [
    "encode_page",
    "page_checksum",
    "ChecksummedBucketStore",
    "PackedChecksummedStore",
    "WriteAheadLog",
    "WalEntry",
    "CrashPoint",
    "read_wal",
    "DurableFile",
    "RecoveryReport",
    "recover",
    "Scrubber",
    "ScrubReport",
    "DeviceRebuilder",
    "RebuildReport",
]
