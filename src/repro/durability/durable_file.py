"""Write-ahead-logged files and crash recovery by replay.

:class:`DurableFile` puts a :class:`~repro.durability.wal.WriteAheadLog`
in front of a :class:`~repro.storage.parallel_file.PartitionedFile` or
:class:`~repro.storage.replicated_file.ReplicatedFile`: every insert and
delete is framed into the log *before* it is applied to any device.  A
simulated crash (the WAL's :class:`~repro.durability.wal.CrashPoint`
firing) therefore leaves the log holding exactly the mutations that were
durably acknowledged; :func:`recover` replays them into a fresh file.

The acceptance property — proved over *every* crash boundary in
``tests/test_durability.py`` — is byte-identity: for a crash at record
boundary ``k``, the recovered file's :meth:`state_digest` equals that of
a fault-free run of the first ``k`` mutations.  Replay re-derives every
bucket address and device placement from the file's own multi-key hash
and distribution method, so recovery also re-validates placement: a
recovered file passes ``check_invariants`` or recovery itself fails.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.durability.wal import CrashPoint, WriteAheadLog
from repro.errors import RecoveryError
from repro.hashing.fields import Bucket

__all__ = ["DurableFile", "RecoveryReport", "recover"]


@dataclass
class RecoveryReport:
    """Outcome of one WAL replay into a fresh file."""

    entries_replayed: int = 0
    inserts: int = 0
    deletes: int = 0
    moves_skipped: int = 0
    torn_bytes: int = 0
    digest: str = ""

    @property
    def had_torn_tail(self) -> bool:
        return self.torn_bytes > 0

    def summary(self) -> str:
        torn = (
            f", torn tail of {self.torn_bytes} bytes discarded"
            if self.had_torn_tail
            else ""
        )
        return (
            f"recovered {self.entries_replayed} WAL entries "
            f"({self.inserts} inserts, {self.deletes} deletes{torn})"
        )

    def to_dict(self) -> dict:
        return {
            "entries_replayed": self.entries_replayed,
            "inserts": self.inserts,
            "deletes": self.deletes,
            "moves_skipped": self.moves_skipped,
            "torn_bytes": self.torn_bytes,
            "had_torn_tail": self.had_torn_tail,
            "digest": self.digest,
        }


def recover(wal: WriteAheadLog | bytes, file) -> RecoveryReport:
    """Replay a (possibly crash-truncated) WAL into *file*.

    *file* must be freshly constructed — replaying on top of existing
    state would double-apply the log.  *wal* may be a live
    :class:`WriteAheadLog` (e.g. the one a :class:`DurableFile` held when
    its crash point fired) or raw serialised bytes.  Emits one
    ``recovery.replay`` span with a ``wal.torn_tail`` event when a torn
    frame was discarded.
    """
    from repro.obs import telemetry, trace_span

    if isinstance(wal, (bytes, bytearray)):
        wal = WriteAheadLog.from_bytes(bytes(wal))
    if file.record_count != 0:
        raise RecoveryError(
            f"recovery target already holds {file.record_count} records; "
            "replay needs a fresh file"
        )
    entries, torn = wal.scan()
    torn += wal.torn_bytes_discarded
    report = RecoveryReport(torn_bytes=torn)
    with trace_span("recovery.replay", entries=len(entries)) as span:
        for entry in entries:
            if entry.op == "insert":
                file.insert(entry.record)
                report.inserts += 1
            elif entry.op == "delete":
                file.delete(entry.record)
                report.deletes += 1
            else:
                report.moves_skipped += 1
            report.entries_replayed += 1
        if torn:
            span.add_event("wal.torn_tail", bytes=torn)
        file.check_invariants()
        report.digest = file.state_digest()
        span.set_attr("inserts", report.inserts)
        span.set_attr("deletes", report.deletes)
        span.set_attr("torn_bytes", torn)
    telemetry().metrics.add("durability.wal_replayed", report.entries_replayed)
    if torn:
        telemetry().metrics.add("durability.torn_tails", 1)
    return report


class DurableFile:
    """A partitioned or replicated file fronted by a write-ahead log.

    >>> from repro.api import make_durable_file
    >>> durable = make_durable_file("fx", fields=(4, 4), devices=4)
    >>> __ = durable.insert((3, 1))
    >>> durable.wal.entry_count
    1
    """

    def __init__(self, file, wal: WriteAheadLog | None = None):
        self.file = file
        self.wal = wal if wal is not None else WriteAheadLog()

    # ------------------------------------------------------------------
    # Logged mutations
    # ------------------------------------------------------------------
    def insert(self, record: Sequence[object]) -> Bucket:
        """Log, then apply.  If the WAL's crash point fires, the record was
        neither logged nor applied — the crash lands exactly on the record
        boundary, which is what makes every-offset recovery exact."""
        self.wal.append_insert(record)
        return self.file.insert(record)

    def insert_all(self, records: Sequence[Sequence[object]]) -> None:
        for record in records:
            self.insert(record)

    def delete(self, record: Sequence[object]) -> bool:
        self.wal.append_delete(record)
        return self.file.delete(record)

    # ------------------------------------------------------------------
    # Reads (pass-through)
    # ------------------------------------------------------------------
    def query(self, specified: Mapping[int, object]):
        return self.file.query(specified)

    def execute(self, query):
        return self.file.execute(query)

    def search(self, specified: Mapping[int, object]):
        return self.file.search(specified)

    # ------------------------------------------------------------------
    # Introspection and recovery
    # ------------------------------------------------------------------
    @property
    def filesystem(self):
        return self.file.filesystem

    @property
    def devices(self):
        return self.file.devices

    @property
    def record_count(self) -> int:
        return self.file.record_count

    @property
    def crashed(self) -> bool:
        return self.wal.crashed

    def state_digest(self) -> str:
        return self.file.state_digest()

    def check_invariants(self) -> None:
        self.file.check_invariants()

    def recover_into(self, fresh_file) -> RecoveryReport:
        """Replay this file's WAL into *fresh_file* (crash recovery)."""
        return recover(self.wal, fresh_file)

    def arm_crash(self, after_records: int, torn_tail: bool = False) -> None:
        """Arm a deterministic crash at a future WAL record boundary."""
        self.wal.crash = CrashPoint(after_records, torn_tail=torn_tail)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DurableFile({self.file!r}, wal={self.wal!r})"
