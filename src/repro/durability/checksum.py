"""Canonical page encoding and CRC checksums.

A "page" here is one bucket's record list on one device — the unit real
devices read, and therefore the unit silent corruption hits.  The encoding
must be *canonical* (two stores holding the same records produce the same
bytes) so checksums transfer between replicas: the scrubber verifies a
suspect page against the checksum *recomputed from the replica's copy*.

Records are immutable Python values (tuples of ints/strings in this
repository); ``repr`` of the ``(bucket, records)`` pair is deterministic
for those types and keeps the encoding readable in test failures.  CRC-32
(:func:`zlib.crc32`) is the page checksum — the standard strength/speed
point for storage-page integrity (detection, not authentication).
"""

from __future__ import annotations

import zlib
from collections.abc import Iterable

from repro.hashing.fields import Bucket

__all__ = ["encode_page", "page_checksum"]


def encode_page(bucket: Bucket, records: Iterable[object]) -> bytes:
    """Canonical byte encoding of one bucket page."""
    return repr((tuple(bucket), tuple(records))).encode("utf-8")


def page_checksum(bucket: Bucket, records: Iterable[object]) -> int:
    """CRC-32 over the canonical page encoding.

    >>> page_checksum((0, 1), [(7, "blue")]) == page_checksum((0, 1), ((7, "blue"),))
    True
    >>> page_checksum((0, 1), []) != page_checksum((0, 2), [])
    True
    """
    return zlib.crc32(encode_page(bucket, records))
