"""Field transformation functions (paper section 4.1).

When a field's size ``F`` is smaller than the number of devices ``M``, Basic
FX distribution cannot spread its values over all devices.  The paper fixes
this by passing each small field through an injective map ``X : f -> Z_M``
before XOR-ing.  Four families are defined (``d1 = M / F``; ``d2 = d1 / F``
when ``F**2 < M`` and ``0`` otherwise):

``I``    identity,
``U``    ``l -> l * d1``              (equally spaced values),
``IU1``  ``l -> l ^ (l * d1)``        (one element per ``d1``-interval,
         Lemma 5.4),
``IU2``  ``l -> l ^ (l * d1) ^ (l * d2)`` (degenerates to ``IU1`` when
         ``F**2 >= M``, cf. the remark after Lemma 7.1).

Fields with ``F >= M`` always use the identity; they never hurt optimality
(Theorem 2).

Two transformation functions are the *same transformation method* when they
belong to the same family, regardless of their ``M`` and ``F`` parameters
(section 4.1).  The optimality conditions of section 4.2 compare methods by
family, with the caveat that an ``IU2`` whose ``d2`` collapsed to zero *is*
an ``IU1`` — :attr:`FieldTransform.effective_method` captures that.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

from repro.errors import ConfigurationError, FieldValueError, TransformError
from repro.util.validation import check_power_of_two

__all__ = [
    "FieldTransform",
    "IdentityTransform",
    "UTransform",
    "IU1Transform",
    "IU2Transform",
    "TRANSFORM_FAMILIES",
    "make_transform",
    "assign_transforms",
    "paper_assignment",
    "theorem9_assignment",
]


class FieldTransform(ABC):
    """An injective map from a field domain ``{0..F-1}`` into ``Z_M``.

    Subclasses implement :meth:`apply`; inversion and the image are derived.
    Instances are immutable and hashable so they can key caches.
    """

    #: Family name ("I", "U", "IU1", "IU2"); set by each subclass.
    method: str = ""

    def __init__(self, field_size: int, m: int):
        check_power_of_two("field size F", field_size)
        check_power_of_two("device count M", m)
        self.field_size = field_size
        self.m = m
        self._inverse_table: dict[int, int] | None = None

    @abstractmethod
    def apply(self, value: int) -> int:
        """Map one field value into the device address space."""

    @property
    def effective_method(self) -> str:
        """Family name after degenerate collapses (``IU2`` -> ``IU1``)."""
        return self.method

    def image(self) -> tuple[int, ...]:
        """Transformed values in field-value order: ``(X(0), ..., X(F-1))``."""
        return tuple(self.apply(value) for value in range(self.field_size))

    def inverse(self, transformed: int) -> int | None:
        """Return the field value mapping to *transformed*, or ``None``.

        Used by inverse mapping (section 5's "find qualified buckets residing
        in a device") to solve for the last unspecified field.
        """
        if self._inverse_table is None:
            self._inverse_table = {self.apply(v): v for v in range(self.field_size)}
        return self._inverse_table.get(transformed)

    def same_method(self, other: "FieldTransform") -> bool:
        """True when both transforms belong to the same effective family."""
        return self.effective_method == other.effective_method

    def _check_value(self, value: int) -> None:
        if not 0 <= value < self.field_size:
            raise FieldValueError(
                f"value {value} outside field domain [0, {self.field_size})"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.method}(F={self.field_size}, M={self.m})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FieldTransform)
            and type(self) is type(other)
            and self.field_size == other.field_size
            and self.m == other.m
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.field_size, self.m))


class IdentityTransform(FieldTransform):
    """``I(l) = l``.  Legal for any field; mandatory when ``F >= M``."""

    method = "I"

    def apply(self, value: int) -> int:
        self._check_value(value)
        return value


class _SmallFieldTransform(FieldTransform):
    """Common base for U/IU1/IU2: requires ``F < M`` and precomputes ``d1``."""

    def __init__(self, field_size: int, m: int):
        super().__init__(field_size, m)
        if field_size >= m:
            raise TransformError(
                f"{self.method} transformation requires F < M, "
                f"got F={field_size}, M={m}"
            )
        #: The paper's ``d`` (or ``d1``): spacing ``M / F``.
        self.d1 = m // field_size


class UTransform(_SmallFieldTransform):
    """``U(l) = l * d1``: spreads the field values evenly over ``Z_M``."""

    method = "U"

    def apply(self, value: int) -> int:
        self._check_value(value)
        return value * self.d1


class IU1Transform(_SmallFieldTransform):
    """``IU1(l) = l ^ (l * d1)``.

    Injective (Lemma 5.1), with exactly one image element in every aligned
    interval of width ``d1`` (Lemma 5.4) — simultaneously "identity-like" in
    the low bits and "U-like" in the high bits.
    """

    method = "IU1"

    def apply(self, value: int) -> int:
        self._check_value(value)
        return value ^ (value * self.d1)


class IU2Transform(_SmallFieldTransform):
    """``IU2(l) = l ^ (l * d1) ^ (l * d2)`` with ``d2 = d1/F`` if ``F² < M``.

    When ``F**2 >= M`` the paper sets ``d2 = 0`` and IU2 coincides with IU1;
    :attr:`effective_method` then reports ``"IU1"`` so the section 4.2
    conditions treat it correctly.
    """

    method = "IU2"

    def __init__(self, field_size: int, m: int):
        super().__init__(field_size, m)
        #: The paper's ``d2``: ``d1 / F`` when ``F**2 < M``, else ``0``.
        self.d2 = self.d1 // field_size if field_size * field_size < m else 0

    @property
    def effective_method(self) -> str:
        return "IU1" if self.d2 == 0 else "IU2"

    def apply(self, value: int) -> int:
        self._check_value(value)
        return value ^ (value * self.d1) ^ (value * self.d2)


TRANSFORM_FAMILIES: dict[str, type[FieldTransform]] = {
    "I": IdentityTransform,
    "U": UTransform,
    "IU1": IU1Transform,
    "IU2": IU2Transform,
}


def make_transform(method: str, field_size: int, m: int) -> FieldTransform:
    """Instantiate a transform by family name ("I", "U", "IU1" or "IU2").

    >>> make_transform("IU1", 8, 16).image()
    (0, 3, 6, 5, 12, 15, 10, 9)
    """
    try:
        family = TRANSFORM_FAMILIES[method]
    except KeyError:
        raise TransformError(
            f"unknown transformation method {method!r}; "
            f"expected one of {sorted(TRANSFORM_FAMILIES)}"
        ) from None
    return family(field_size, m)


def paper_assignment(
    field_sizes: Sequence[int], m: int, variant: str = "IU1"
) -> tuple[FieldTransform, ...]:
    """The assignment used in the paper's experiments (section 5).

    Fields with ``F >= M`` get the identity.  Fields with ``F < M`` cycle
    through ``I, U, IU1`` (Tables 7 and 8, Figures 1-2) or ``I, U, IU2``
    (Table 9, Figures 3-4) in field order, so fields 1 and 4 are I, 2 and 5
    are U, 3 and 6 are IU1/IU2.
    """
    if variant not in ("IU1", "IU2"):
        raise ConfigurationError(f"variant must be 'IU1' or 'IU2', got {variant!r}")
    cycle = ("I", "U", variant)
    transforms = []
    small_index = 0
    for field_size in field_sizes:
        if field_size >= m:
            transforms.append(IdentityTransform(field_size, m))
        else:
            transforms.append(make_transform(cycle[small_index % 3], field_size, m))
            small_index += 1
    return tuple(transforms)


def theorem9_assignment(
    field_sizes: Sequence[int], m: int
) -> tuple[FieldTransform, ...]:
    """Size-aware assignment following Theorem 9's recipe.

    With at most three small fields this choice is *perfect optimal*: sort the
    small fields by size, give the largest ``I``, the smallest ``U`` and the
    middle one ``IU2`` (IU2's field must be at least as large as U's —
    Lemma 9.1 condition 2).  With more than three small fields no perfect
    optimal method exists [Sung87]; we extend the recipe by cycling
    ``I, U, IU2`` down the size-sorted list, which keeps every 3-subset that
    receives distinct methods well-ordered.
    """
    small = sorted(
        (i for i, size in enumerate(field_sizes) if size < m),
        key=lambda i: (-field_sizes[i], i),
    )
    cycle = ("I", "IU2", "U")  # size-descending: largest I, middle IU2, smallest U
    methods: dict[int, str] = {}
    if len(small) == 2:
        methods[small[0]] = "I"
        methods[small[1]] = "IU2"
    else:
        for rank, field_index in enumerate(small):
            methods[field_index] = cycle[rank % 3]
    transforms = []
    for i, field_size in enumerate(field_sizes):
        if field_size >= m:
            transforms.append(IdentityTransform(field_size, m))
        else:
            transforms.append(make_transform(methods[i], field_size, m))
    return tuple(transforms)


def assign_transforms(
    field_sizes: Sequence[int],
    m: int,
    policy: str | Sequence[str] = "paper",
    variant: str = "IU1",
) -> tuple[FieldTransform, ...]:
    """Build one transform per field.

    *policy* is either the string ``"paper"`` (round-robin I/U/IU1-or-IU2 in
    field order, as in the paper's experiments), ``"theorem9"`` (size-sorted,
    perfect optimal for up to three small fields), or an explicit sequence of
    family names, one per field.  *variant* selects IU1 vs IU2 for the
    ``"paper"`` policy.
    """
    check_power_of_two("device count M", m)
    if isinstance(policy, str):
        if policy == "paper":
            return paper_assignment(field_sizes, m, variant=variant)
        if policy == "theorem9":
            return theorem9_assignment(field_sizes, m)
        raise ConfigurationError(
            f"unknown assignment policy {policy!r}; expected 'paper', "
            f"'theorem9' or an explicit list of methods"
        )
    if len(policy) != len(field_sizes):
        raise ConfigurationError(
            f"explicit policy names {len(policy)} fields, file has {len(field_sizes)}"
        )
    transforms = []
    for method, field_size in zip(policy, field_sizes):
        if field_size >= m and method != "I":
            raise TransformError(
                f"field of size {field_size} >= M={m} must use the identity, "
                f"got {method!r}"
            )
        transforms.append(make_transform(method, field_size, m))
    return tuple(transforms)
