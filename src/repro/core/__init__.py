"""The paper's primary contribution: FX distribution and its optimality theory.

Contents
--------

``bitops``
    The exclusive-or algebra of section 2 (XOR on integers and integer sets,
    the ``T_M`` truncation operator) plus Lemmas 1.1 and 4.1 as executable
    statements.
``transforms``
    The four field transformation functions of section 4.1 (I, U, IU1, IU2)
    and policies for assigning them to fields.
``fx``
    Basic and Extended FX distribution (sections 3 and 4).
``inverse``
    Inverse mapping: enumerating, per device, the qualified buckets it holds.
``theorems``
    Theorems 1-9 and Corollaries 6.1 / 9.1 as sufficient-condition predicates,
    including the consolidated section 4.2 rule.
``optimality``
    Empirical strict/k/perfect-optimality checkers used to validate the
    theorem predicates and to evaluate arbitrary distribution methods.
``gf2`` / ``linear``
    Section 6 extension: GF(2) linear algebra, linear field transformations
    generalising I/U/IU1/IU2, the exact rank-based optimality criterion and
    random matrix search.
"""

from repro.core.bitops import truncate, xor_fold, xor_set
from repro.core.fx import BasicFXDistribution, FXDistribution
from repro.core.optimality import (
    OptimalityReport,
    is_k_optimal,
    is_perfect_optimal,
    is_strict_optimal,
    response_histogram,
)
from repro.core.gf2 import GF2Matrix
from repro.core.linear import (
    LinearTransform,
    linear_optimal_fraction,
    linear_pattern_is_optimal,
    linearize,
    matrix_of_transform,
    random_matrix_search,
)
from repro.core.transforms import (
    IU1Transform,
    IU2Transform,
    IdentityTransform,
    UTransform,
    assign_transforms,
    make_transform,
)

__all__ = [
    "truncate",
    "xor_fold",
    "xor_set",
    "BasicFXDistribution",
    "FXDistribution",
    "IdentityTransform",
    "UTransform",
    "IU1Transform",
    "IU2Transform",
    "make_transform",
    "assign_transforms",
    "GF2Matrix",
    "LinearTransform",
    "matrix_of_transform",
    "linearize",
    "linear_pattern_is_optimal",
    "linear_optimal_fraction",
    "random_matrix_search",
    "OptimalityReport",
    "is_strict_optimal",
    "is_k_optimal",
    "is_perfect_optimal",
    "response_histogram",
]
