"""The exclusive-or algebra of the paper (section 2) as executable code.

The paper overloads ``[+]`` (bitwise XOR) to operate on integers, on an
integer and a set of integers, and on two sets of integers.  ``xor_set``
mirrors that overloading; ``truncate`` is the ``T_M`` operator that keeps the
rightmost ``log2 M`` bits of a value; ``xor_fold`` is the n-ary
``[+](Y_i)`` shorthand.

Two lemmas from the paper live here as plain functions so that tests (and the
theorem predicates in :mod:`repro.core.theorems`) can reference them
directly:

* **Lemma 1.1** — ``Z_M [+] k == Z_M`` for any ``0 <= k < M``: XOR by a
  constant permutes the device address space.
* **Lemma 4.1** — with ``W = {0..w-1}`` (``w`` a power of two) and
  ``L = a*w + b`` (``0 <= b < w``), ``W [+] L == {a*w, ..., (a+1)*w - 1}``:
  XOR by any value maps an aligned block onto an aligned block.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import ConfigurationError
from repro.util.numbers import is_power_of_two
from repro.util.validation import check_power_of_two

__all__ = [
    "truncate",
    "xor_set",
    "xor_fold",
    "z_m",
    "lemma_1_1_holds",
    "lemma_4_1_block",
]


def truncate(value: int, m: int) -> int:
    """The paper's ``T_M``: keep the rightmost ``log2 M`` bits of *value*.

    ``M`` must be a power of two, in which case ``T_M(x) == x & (M - 1)``
    (equivalently ``x mod M``).  ``T_M`` distributes over XOR:
    ``T_M(a ^ b) == T_M(a) ^ T_M(b)``, a fact Theorem 1's proof leans on.

    >>> truncate(0b1101, 4)
    1
    """
    check_power_of_two("M", m)
    if value < 0:
        raise ConfigurationError(
            f"T_M is defined on non-negative integers, got {value}"
        )
    return value & (m - 1)


def xor_set(left: int | Iterable[int], right: int | Iterable[int]) -> int | set[int]:
    """The paper's overloaded ``[+]`` operator.

    * int ``[+]`` int — plain bitwise XOR,
    * int ``[+]`` set (or set ``[+]`` int) — XOR the integer into every
      element,
    * set ``[+]`` set — the set of all pairwise XORs.

    >>> xor_set(2, 3)
    1
    >>> sorted(xor_set(2, {0, 1, 2, 3}))
    [0, 1, 2, 3]
    """
    left_is_int = isinstance(left, int)
    right_is_int = isinstance(right, int)
    if left_is_int and right_is_int:
        return left ^ right
    if left_is_int:
        return {left ^ y for y in right}
    if right_is_int:
        return {x ^ right for x in left}
    return {x ^ y for x in left for y in right}


def xor_fold(values: Iterable[int]) -> int:
    """The n-ary shorthand ``[+](Y_i) = Y_1 [+] ... [+] Y_n`` for integers.

    An empty iterable folds to 0, the XOR identity.

    >>> xor_fold([1, 2, 4])
    7
    """
    result = 0
    for value in values:
        result ^= value
    return result


def z_m(m: int) -> set[int]:
    """The device address space ``Z_M = {0, 1, ..., M-1}``."""
    check_power_of_two("M", m)
    return set(range(m))


def lemma_1_1_holds(m: int, k: int) -> bool:
    """Check Lemma 1.1: ``Z_M [+] k == Z_M`` for ``0 <= k < M``.

    Always ``True`` for valid inputs; exposed so property tests can assert
    the lemma over its whole hypothesis space.
    """
    if not is_power_of_two(m) or not 0 <= k < m:
        raise ConfigurationError(
            "Lemma 1.1 requires a power-of-two M and 0 <= k < M"
        )
    return xor_set(k, z_m(m)) == z_m(m)


def lemma_4_1_block(w: int, value: int) -> set[int]:
    """Lemma 4.1: image of the aligned block ``{0..w-1}`` under XOR by *value*.

    Returns ``{0..w-1} [+] value`` which, per the lemma, equals the aligned
    block ``{a*w, ..., (a+1)*w - 1}`` containing *value* (``a = value // w``).

    >>> sorted(lemma_4_1_block(4, 6))
    [4, 5, 6, 7]
    """
    check_power_of_two("w", w)
    if value < 0:
        raise ConfigurationError("Lemma 4.1 is stated for non-negative L")
    block = xor_set(value, set(range(w)))
    assert isinstance(block, set)
    return block
