"""FX (Fieldwise eXclusive-or) distribution — the paper's contribution.

Basic FX (section 3) places bucket ``<J_1, ..., J_n>`` on device
``T_M(J_1 ^ ... ^ J_n)``.  Extended FX (section 4) first passes each field
through a transformation ``X_j`` (identity for fields with ``F_j >= M``, one
of I/U/IU1/IU2 otherwise)::

    device = T_M( X_1(J_1) ^ X_2(J_2) ^ ... ^ X_n(J_n) )

Because ``T_M`` distributes over XOR, the per-field contribution can be
truncated eagerly; :class:`FXDistribution` is therefore a
:class:`~repro.distribution.base.SeparableMethod` over the XOR group, which
unlocks the exact convolution evaluator and the algebraic inverse mapping.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.transforms import (
    FieldTransform,
    IdentityTransform,
    assign_transforms,
)
from repro.distribution.base import SeparableMethod, register_method
from repro.errors import ConfigurationError
from repro.hashing.fields import Bucket, FileSystem
from repro.query.partial_match import PartialMatchQuery

__all__ = ["FXDistribution", "BasicFXDistribution"]


@register_method
class FXDistribution(SeparableMethod):
    """Extended FX distribution with per-field transformations.

    *transforms* may be:

    * ``None`` — use the assignment *policy* (default the paper's
      round-robin I/U/IU1 over small fields; pass ``variant="IU2"`` for the
      IU2 flavour or ``policy="theorem9"`` for the size-sorted recipe that is
      perfect optimal whenever at most three fields are small),
    * a sequence of family names (``["I", "U", "IU1"]``), or
    * a sequence of :class:`~repro.core.transforms.FieldTransform` objects.

    >>> fs = FileSystem.of(2, 8, m=4)
    >>> fx = FXDistribution(fs)          # both transforms identity here
    >>> fx.device_of((1, 6))
    3
    """

    name = "fx"
    combine = "xor"

    def __init__(
        self,
        filesystem: FileSystem,
        transforms: Sequence[FieldTransform | str] | None = None,
        policy: str = "paper",
        variant: str = "IU1",
    ):
        super().__init__(filesystem)
        self.transforms = _resolve_transforms(
            filesystem, transforms, policy=policy, variant=variant
        )
        m = filesystem.m
        # Contribution tables: T_M(X_j(v)) for every field value.  Small
        # fields' transforms land inside Z_M already; identity on large
        # fields is truncated here (T_M distributes over XOR).
        self._tables = tuple(
            tuple(t.apply(v) & (m - 1) for v in range(t.field_size))
            for t in self.transforms
        )

    def field_contribution(self, field_index: int, value: int) -> int:
        return self._tables[field_index][value]

    def transform_methods(self) -> tuple[str, ...]:
        """Effective family name per field (IU2 collapses to IU1 when
        ``F**2 >= M``), as used by the section 4.2 optimality conditions."""
        return tuple(t.effective_method for t in self.transforms)

    def describe(self) -> str:
        methods = ",".join(t.method for t in self.transforms)
        return f"fx[{methods}] on {self.filesystem.describe()}"


class BasicFXDistribution(FXDistribution):
    """Basic FX (section 3): plain XOR of the untransformed field values.

    Kept as its own class because the paper analyses it separately
    (Theorems 1-3 hold for Basic FX with no assumptions on transforms).

    >>> fs = FileSystem.of(2, 8, m=4)
    >>> [BasicFXDistribution(fs).device_of((1, j)) for j in range(8)]
    [1, 0, 3, 2, 1, 0, 3, 2]
    """

    name = "fx-basic"

    def __init__(self, filesystem: FileSystem):
        identities = [
            IdentityTransform(size, filesystem.m)
            for size in filesystem.field_sizes
        ]
        super().__init__(filesystem, identities)

    def describe(self) -> str:
        return f"fx-basic on {self.filesystem.describe()}"


# register the subclass under its own name as well
register_method(BasicFXDistribution)


def _resolve_transforms(
    filesystem: FileSystem,
    transforms: Sequence[FieldTransform | str] | None,
    policy: str,
    variant: str,
) -> tuple[FieldTransform, ...]:
    """Normalise the flexible ``transforms`` argument to objects."""
    if transforms is None:
        return assign_transforms(
            filesystem.field_sizes, filesystem.m, policy=policy, variant=variant
        )
    if len(transforms) != filesystem.n_fields:
        raise ConfigurationError(
            f"{len(transforms)} transforms for {filesystem.n_fields} fields"
        )
    if all(isinstance(t, str) for t in transforms):
        return assign_transforms(
            filesystem.field_sizes, filesystem.m, policy=list(transforms)  # type: ignore[arg-type]
        )
    resolved = []
    for i, t in enumerate(transforms):
        if not isinstance(t, FieldTransform):
            raise ConfigurationError(
                f"transform {i} is {t!r}; mixing names and objects is not "
                "supported - pass all names or all FieldTransform instances"
            )
        if t.field_size != filesystem.field_sizes[i]:
            raise ConfigurationError(
                f"transform {i} built for field size {t.field_size}, "
                f"field has size {filesystem.field_sizes[i]}"
            )
        if t.m != filesystem.m:
            raise ConfigurationError(
                f"transform {i} built for M={t.m}, file system has "
                f"M={filesystem.m}"
            )
        resolved.append(t)
    return tuple(resolved)
