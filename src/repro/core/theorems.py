"""The paper's sufficient optimality conditions as executable predicates.

Theorems 1-9 and Corollaries 6.1 / 9.1 identify classes of partial match
queries for which FX distribution is provably strict optimal; section 4.2
consolidates them into one five-case rule.  This module encodes that rule
(:func:`fx_strict_optimal_sufficient`) plus the published sufficient
condition for Modulo allocation, and exposes finer-grained per-theorem
predicates so the test suite can confront each theorem with the empirical
checkers in :mod:`repro.core.optimality`.

All predicates are *sufficient*: ``True`` guarantees strict optimality,
``False`` is silent (the distribution may still happen to be optimal).  The
gap between the sufficient rule and exact optimality is itself measured by
the ablation benchmark ``bench_ablation_sufficiency``.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterable

from repro.core.fx import FXDistribution
from repro.core.transforms import FieldTransform
from repro.hashing.fields import FileSystem
from repro.query.patterns import all_patterns

__all__ = [
    "methods_differ",
    "theorem1_applies",
    "theorem2_applies",
    "pair_condition",
    "triple_condition",
    "fx_strict_optimal_sufficient",
    "fx_perfect_optimal_sufficient",
    "modulo_strict_optimal_sufficient",
    "theorem3_uniform_subset_exists",
]


def methods_differ(a: FieldTransform, b: FieldTransform) -> bool:
    """Do two transforms count as *different methods* for section 4.2?

    Uses effective family names (an IU2 whose ``d2`` collapsed is an IU1)
    and excludes the {IU1, IU2} pairing, which the paper explicitly rules
    out of conditions (3), (4)-a and (5)-a.
    """
    first, second = a.effective_method, b.effective_method
    if first == second:
        return False
    return {first, second} != {"IU1", "IU2"}


def theorem1_applies(pattern: Iterable[int]) -> bool:
    """Theorem 1: FX is 0-optimal and 1-optimal unconditionally."""
    return len(set(pattern)) <= 1


def theorem2_applies(filesystem: FileSystem, pattern: Iterable[int]) -> bool:
    """Theorem 2: some unspecified field has ``F >= M``."""
    sizes = filesystem.field_sizes
    return any(sizes[i] >= filesystem.m for i in pattern)


def pair_condition(
    fx: FXDistribution, pattern: Iterable[int], require_product: bool
) -> bool:
    """Conditions (3)/(4)-a/(5)-a: a pair of unspecified fields with
    different transformation methods (and, when *require_product*,
    ``F_i * F_j >= M``)."""
    fields = sorted(set(pattern))
    sizes = fx.filesystem.field_sizes
    m = fx.filesystem.m
    for i, j in itertools.combinations(fields, 2):
        if require_product and sizes[i] * sizes[j] < m:
            continue
        if methods_differ(fx.transforms[i], fx.transforms[j]):
            return True
    return False


def triple_condition(
    fx: FXDistribution, pattern: Iterable[int], require_product: bool
) -> bool:
    """Conditions (4)-b/(5)-b: an unspecified triple transformed by
    {I, U, IU2} with ``F_IU2 >= F_U`` (Lemma 9.1's second condition; the
    IU2 field's effective method being IU2 already encodes ``F**2 < M``),
    and ``F_i F_j F_k >= M`` when *require_product*."""
    fields = sorted(set(pattern))
    sizes = fx.filesystem.field_sizes
    m = fx.filesystem.m
    for combo in itertools.combinations(fields, 3):
        if require_product and math.prod(sizes[i] for i in combo) < m:
            continue
        by_method = {fx.transforms[i].effective_method: i for i in combo}
        if set(by_method) != {"I", "U", "IU2"}:
            continue
        if sizes[by_method["IU2"]] >= sizes[by_method["U"]]:
            return True
    return False


def fx_strict_optimal_sufficient(
    fx: FXDistribution, pattern: Iterable[int]
) -> bool:
    """The consolidated section 4.2 rule for one query pattern.

    FX is strict optimal for every query with unspecified set *pattern* if
    any of the following holds:

    1. at most one field is unspecified (Theorem 1),
    2. some unspecified field has ``F >= M`` (Theorem 2),
    3. exactly two are unspecified, with different methods (Theorems 4-8),
    4. exactly three are unspecified and either (a) a pair has
       ``F_i F_j >= M`` with different methods, or (b) the triple is
       {I, U, IU2} with ``F_IU2 >= F_U`` (Lemma 9.1),
    5. four or more are unspecified and either (a) as 4-a, or (b) a triple
       has ``F_i F_j F_k >= M`` and is {I, U, IU2} with ``F_IU2 >= F_U``
       (Corollary 9.1).
    """
    fields = frozenset(pattern)
    if theorem1_applies(fields):
        return True
    if theorem2_applies(fx.filesystem, fields):
        return True
    if len(fields) == 2:
        return pair_condition(fx, fields, require_product=False)
    if len(fields) == 3:
        return pair_condition(fx, fields, require_product=True) or triple_condition(
            fx, fields, require_product=False
        )
    return pair_condition(fx, fields, require_product=True) or triple_condition(
        fx, fields, require_product=True
    )


def fx_perfect_optimal_sufficient(fx: FXDistribution) -> bool:
    """Does the section 4.2 rule certify *every* pattern (perfect optimal)?

    Theorem 9 guarantees this is achievable whenever at most three fields
    are smaller than ``M`` and the transforms follow its recipe.
    """
    return all(
        fx_strict_optimal_sufficient(fx, pattern)
        for pattern in all_patterns(fx.filesystem.n_fields)
    )


def modulo_strict_optimal_sufficient(
    filesystem: FileSystem, pattern: Iterable[int]
) -> bool:
    """[DuSo82] sufficient condition for Modulo allocation (see
    :meth:`repro.distribution.modulo.ModuloDistribution.sufficient_condition_holds`):
    at most one unspecified field, or some unspecified ``F_i`` divisible by
    ``M``."""
    fields = frozenset(pattern)
    if len(fields) <= 1:
        return True
    sizes = filesystem.field_sizes
    return any(sizes[i] % filesystem.m == 0 for i in fields)


def theorem3_uniform_subset_exists(
    fx: FXDistribution, pattern: Iterable[int], max_subset: int = 3
) -> bool:
    """Theorem 3's condition, checked constructively.

    Strict optimality follows when some subset of the unspecified fields has
    a Cartesian product of size ``>= M`` whose projected buckets spread
    uniformly over the devices.  We search subsets up to *max_subset* fields
    and test uniformity exactly via the convolution engine — a strictly
    stronger (but costlier) sufficient check than the closed-form rule.
    """
    from repro.analysis.histograms import evaluator_for

    fields = sorted(set(pattern))
    if theorem1_applies(fields):
        return True
    sizes = fx.filesystem.field_sizes
    m = fx.filesystem.m
    evaluator = evaluator_for(fx)
    for subset_size in range(1, min(max_subset, len(fields)) + 1):
        for combo in itertools.combinations(fields, subset_size):
            if math.prod(sizes[i] for i in combo) < m:
                continue
            histogram = evaluator.histogram(frozenset(combo))
            if int(histogram.max()) == int(histogram.min()):
                return True
    return False
