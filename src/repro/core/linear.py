"""Linear (GF(2)-matrix) field transformations — generalising section 4.

Observation: write a field value ``l < F = 2^f`` as a bit vector.  Then each
of the paper's transformations is a linear map into ``Z_M = GF(2)^m``:

* ``I``   — the embedding matrix (rows pick bits 0..f-1),
* ``U``   — a shift matrix (multiply by ``d1 = 2^(m-f)``),
* ``IU1`` — embedding + shift,
* ``IU2`` — embedding + two shifts,

and the *whole* FX device computation ``T_M(X_1(J_1) ^ ... ^ X_n(J_n))`` is
an affine map over GF(2).  That yields a closed-form exact optimality
criterion subsuming all of Theorems 1-9:

    a query pattern is strict optimal  <=>  the horizontally stacked matrix
    of its unspecified fields' transforms has rank ``min(B, m)``, where
    ``B`` is the total number of unspecified input bits.

(The per-device count is ``2^(B - r)`` on a coset of the column space and 0
elsewhere; comparing with ``ceil(2^B / M)`` gives the criterion.)

This module provides :class:`LinearTransform` (a drop-in
:class:`~repro.core.transforms.FieldTransform`), the rank criterion, and a
random search over injective matrices — a concrete answer to the paper's
closing call for "more general transformation functions ... for much larger
classes of partial match queries".
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.core.fx import FXDistribution
from repro.core.gf2 import GF2Matrix
from repro.core.transforms import (
    FieldTransform,
    IU1Transform,
    IU2Transform,
    IdentityTransform,
    UTransform,
)
from repro.errors import ConfigurationError, TransformError
from repro.hashing.fields import FileSystem
from repro.util.numbers import ilog2

__all__ = [
    "LinearTransform",
    "matrix_of_transform",
    "linearize",
    "linear_pattern_is_optimal",
    "linear_optimal_fraction",
    "LinearSearchResult",
    "random_matrix_search",
]


class LinearTransform(FieldTransform):
    """A field transformation defined by an injective GF(2) matrix.

    The matrix has ``log2 M`` rows and ``log2 F`` columns and must have full
    column rank so the map is one-to-one (the requirement the paper places
    on every field transformation function).
    """

    method = "LIN"

    def __init__(self, field_size: int, m: int, matrix: GF2Matrix):
        super().__init__(field_size, m)
        expected = (ilog2(m), ilog2(field_size))
        if matrix.shape != expected:
            raise TransformError(
                f"matrix shape {matrix.shape} does not match "
                f"(log2 M, log2 F) = {expected}"
            )
        if not matrix.is_injective():
            raise TransformError(
                "matrix does not have full column rank; the transformation "
                "would not be one-to-one"
            )
        self.matrix = matrix

    def apply(self, value: int) -> int:
        self._check_value(value)
        return self.matrix.apply(value)

    @classmethod
    def random(
        cls, field_size: int, m: int, rng: random.Random
    ) -> "LinearTransform":
        """Sample a uniformly random injective linear transformation."""
        matrix = GF2Matrix.random_full_column_rank(
            ilog2(m), ilog2(field_size), rng
        )
        return cls(field_size, m, matrix)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, LinearTransform)
            and self.field_size == other.field_size
            and self.m == other.m
            and self.matrix == other.matrix
        )

    def __hash__(self) -> int:
        return hash(("LIN", self.field_size, self.m, self.matrix.rows))


def matrix_of_transform(transform: FieldTransform) -> GF2Matrix:
    """The GF(2) matrix (``log2 M x log2 F``) of any paper transform.

    For identity on a field with ``F > M`` this is the matrix of
    ``T_M o I`` (projection onto the low ``log2 M`` bits), which is how the
    transform actually enters the device computation.
    """
    m_bits = ilog2(transform.m)
    f_bits = ilog2(transform.field_size)
    embed = GF2Matrix.shift(m_bits, f_bits, 0)
    if isinstance(transform, LinearTransform):
        return transform.matrix
    if isinstance(transform, IdentityTransform):
        return embed
    if isinstance(transform, UTransform):
        return GF2Matrix.shift(m_bits, f_bits, ilog2(transform.d1))
    if isinstance(transform, IU2Transform):
        matrix = embed.add(GF2Matrix.shift(m_bits, f_bits, ilog2(transform.d1)))
        if transform.d2:
            matrix = matrix.add(
                GF2Matrix.shift(m_bits, f_bits, ilog2(transform.d2))
            )
        return matrix
    if isinstance(transform, IU1Transform):
        return embed.add(GF2Matrix.shift(m_bits, f_bits, ilog2(transform.d1)))
    raise TransformError(
        f"no matrix form for {type(transform).__name__}"
    )


def linearize(fx: FXDistribution) -> tuple[GF2Matrix, ...]:
    """Per-field matrices of an FX distribution (all FX methods are linear)."""
    return tuple(matrix_of_transform(t) for t in fx.transforms)


def linear_pattern_is_optimal(
    matrices: Sequence[GF2Matrix],
    pattern: Iterable[int],
    m: int,
) -> bool:
    """The rank criterion: exact strict optimality of one pattern.

    *matrices* is the per-field matrix list; *pattern* the unspecified
    field indices.  O(sum-of-bits * m) per call — fast enough to census
    thousands of patterns per second.
    """
    m_bits = ilog2(m)
    fields = sorted(set(pattern))
    if not fields:
        return True
    stacked = matrices[fields[0]]
    for i in fields[1:]:
        stacked = stacked.hstack(matrices[i])
    return stacked.rank() == min(stacked.n_cols, m_bits)


def linear_optimal_fraction(
    filesystem: FileSystem,
    matrices: Sequence[GF2Matrix],
    p: float = 0.5,
) -> float:
    """Exact fraction of strict-optimal queries under linear transforms.

    Equivalent to :func:`repro.analysis.optim_prob.exact_fraction` for FX
    methods, but via ranks instead of convolutions — the two are
    property-tested against each other.
    """
    from repro.analysis.optim_prob import optimal_pattern_fraction

    if len(matrices) != filesystem.n_fields:
        raise ConfigurationError(
            f"{len(matrices)} matrices for {filesystem.n_fields} fields"
        )
    return optimal_pattern_fraction(
        filesystem.n_fields,
        lambda pattern: linear_pattern_is_optimal(
            matrices, pattern, filesystem.m
        ),
        p=p,
    )


@dataclass
class LinearSearchResult:
    """Outcome of the random search over injective matrices.

    ``transforms`` holds a :class:`LinearTransform` per small field and the
    mandatory identity per large field, ready for ``FXDistribution``.
    """

    transforms: tuple[FieldTransform, ...]
    score: float
    evaluations: int
    history: list[tuple[int, float]] = field(default_factory=list)

    def build(self, filesystem: FileSystem) -> FXDistribution:
        """An FX distribution using the winning linear transforms."""
        return FXDistribution(filesystem, transforms=list(self.transforms))


def random_matrix_search(
    filesystem: FileSystem,
    iterations: int = 200,
    p: float = 0.5,
    seed: int = 0,
) -> LinearSearchResult:
    """Random restarts over injective linear transforms for the small fields.

    Large fields (``F >= M``) keep the projection matrix (their identity
    transform).  Each iteration draws fresh random injective matrices for
    every small field and scores the assignment exactly with the rank
    criterion; the incumbent is the best seen.  Stops early on a perfect
    score.
    """
    if iterations <= 0:
        raise ConfigurationError("iterations must be positive")
    rng = random.Random(seed)
    small = filesystem.small_fields()
    fixed = {
        i: IdentityTransform(filesystem.field_sizes[i], filesystem.m)
        for i in filesystem.large_fields()
    }
    fixed_matrices = {i: matrix_of_transform(t) for i, t in fixed.items()}

    best_transforms: tuple[FieldTransform, ...] | None = None
    best_score = -1.0
    history: list[tuple[int, float]] = []
    evaluations = 0
    for __ in range(iterations):
        drawn = {
            i: LinearTransform.random(filesystem.field_sizes[i], filesystem.m, rng)
            for i in small
        }
        matrices = [
            drawn[i].matrix if i in drawn else fixed_matrices[i]
            for i in range(filesystem.n_fields)
        ]
        score = linear_optimal_fraction(filesystem, matrices, p=p)
        evaluations += 1
        if score > best_score:
            best_score = score
            best_transforms = tuple(
                drawn.get(i, fixed.get(i))
                for i in range(filesystem.n_fields)
            )
            history.append((evaluations, score))
        if best_score == 1.0:
            break
    assert best_transforms is not None
    return LinearSearchResult(
        transforms=best_transforms,
        score=best_score,
        evaluations=evaluations,
        history=history,
    )
