"""Linear algebra over GF(2), sized for declustering analysis.

Every field transformation the paper defines is a *linear* map on the bit
representation of the field value: U multiplies by a power of two (a bit
shift), and I/IU1/IU2 are sums (XORs) of shifts.  Representing transforms as
GF(2) matrices therefore subsumes the whole section-4 toolkit and opens the
paper's section-6 question — "more general transformation functions" — to
systematic search (:mod:`repro.core.linear`).

Matrices are stored row-wise as Python ints (bit ``j`` of ``rows[i]`` is the
entry in row ``i``, column ``j``), which keeps rank/multiply loops tight
without numpy round trips.  Vectors are plain ints (bit ``j`` is coordinate
``j``).
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["GF2Matrix", "parity"]


def parity(word: int) -> int:
    """Parity (mod-2 popcount) of a non-negative integer."""
    return bin(word).count("1") & 1


@dataclass(frozen=True)
class GF2Matrix:
    """An ``n_rows x n_cols`` matrix over GF(2).

    Immutable and hashable; all operations return new matrices.

    >>> m = GF2Matrix.identity(3)
    >>> m.apply(0b101)
    5
    """

    rows: tuple[int, ...]
    n_cols: int

    def __post_init__(self) -> None:
        if self.n_cols < 0:
            raise ConfigurationError("n_cols must be non-negative")
        mask = (1 << self.n_cols) - 1
        for i, row in enumerate(self.rows):
            if row < 0 or row & ~mask:
                raise ConfigurationError(
                    f"row {i} ({row:#x}) has bits outside {self.n_cols} columns"
                )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def identity(cls, n: int) -> "GF2Matrix":
        return cls(tuple(1 << j for j in range(n)), n)

    @classmethod
    def zero(cls, n_rows: int, n_cols: int) -> "GF2Matrix":
        return cls((0,) * n_rows, n_cols)

    @classmethod
    def from_rows(cls, rows: Iterable[Sequence[int]]) -> "GF2Matrix":
        """Build from nested 0/1 lists (row-major, column 0 leftmost bit 0).

        >>> GF2Matrix.from_rows([[1, 0], [1, 1]]).rows
        (1, 3)
        """
        packed = []
        width = None
        for row in rows:
            if width is None:
                width = len(row)
            elif len(row) != width:
                raise ConfigurationError("ragged rows")
            value = 0
            for j, bit in enumerate(row):
                if bit not in (0, 1):
                    raise ConfigurationError(f"entry {bit!r} is not a GF(2) value")
                value |= bit << j
            packed.append(value)
        return cls(tuple(packed), width or 0)

    @classmethod
    def shift(cls, n_rows: int, n_cols: int, amount: int) -> "GF2Matrix":
        """The matrix of ``x -> x << amount`` truncated to ``n_rows`` bits.

        Row ``i`` picks input bit ``i - amount`` — exactly the paper's
        multiply-by-``2**amount`` inside ``T_M``.
        """
        if amount < 0:
            raise ConfigurationError("shift amount must be non-negative")
        rows = []
        for i in range(n_rows):
            j = i - amount
            rows.append(1 << j if 0 <= j < n_cols else 0)
        return cls(tuple(rows), n_cols)

    @classmethod
    def random(cls, n_rows: int, n_cols: int, rng: random.Random) -> "GF2Matrix":
        return cls(
            tuple(rng.getrandbits(n_cols) if n_cols else 0 for __ in range(n_rows)),
            n_cols,
        )

    @classmethod
    def random_full_column_rank(
        cls, n_rows: int, n_cols: int, rng: random.Random, max_tries: int = 1000
    ) -> "GF2Matrix":
        """Rejection-sample a matrix with rank ``n_cols`` (injective map).

        Requires ``n_cols <= n_rows``; the success probability per draw is
        at least ``prod (1 - 2^(i - n_rows))`` > 0.28, so a thousand tries
        never realistically fail.
        """
        if n_cols > n_rows:
            raise ConfigurationError(
                f"injective map needs n_cols <= n_rows, got {n_cols} > {n_rows}"
            )
        for __ in range(max_tries):
            candidate = cls.random(n_rows, n_cols, rng)
            if candidate.rank() == n_cols:
                return candidate
        raise ConfigurationError("failed to sample a full-column-rank matrix")

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return len(self.rows)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_rows, self.n_cols)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def apply(self, vector: int) -> int:
        """Matrix-vector product: bit ``i`` of the result is
        ``<row_i, vector>`` mod 2."""
        if vector < 0 or vector >> self.n_cols:
            raise ConfigurationError(
                f"vector {vector} outside GF(2)^{self.n_cols}"
            )
        result = 0
        for i, row in enumerate(self.rows):
            result |= parity(row & vector) << i
        return result

    def add(self, other: "GF2Matrix") -> "GF2Matrix":
        """Entrywise XOR (matrix addition over GF(2))."""
        if self.shape != other.shape:
            raise ConfigurationError(
                f"shape mismatch: {self.shape} vs {other.shape}"
            )
        return GF2Matrix(
            tuple(a ^ b for a, b in zip(self.rows, other.rows)), self.n_cols
        )

    def multiply(self, other: "GF2Matrix") -> "GF2Matrix":
        """Matrix product ``self @ other``."""
        if self.n_cols != other.n_rows:
            raise ConfigurationError(
                f"inner dimensions differ: {self.shape} @ {other.shape}"
            )
        # column j of the product = self.apply(column j of other)
        other_cols = other._columns()
        product_cols = [self.apply(col) for col in other_cols]
        rows = []
        for i in range(self.n_rows):
            row = 0
            for j, col in enumerate(product_cols):
                row |= ((col >> i) & 1) << j
            rows.append(row)
        return GF2Matrix(tuple(rows), other.n_cols)

    def hstack(self, other: "GF2Matrix") -> "GF2Matrix":
        """Concatenate columns: ``[self | other]``."""
        if self.n_rows != other.n_rows:
            raise ConfigurationError(
                f"row counts differ: {self.n_rows} vs {other.n_rows}"
            )
        return GF2Matrix(
            tuple(
                a | (b << self.n_cols) for a, b in zip(self.rows, other.rows)
            ),
            self.n_cols + other.n_cols,
        )

    def rank(self) -> int:
        """Rank by Gaussian elimination on the rows."""
        pivots: list[int] = []
        for row in self.rows:
            for pivot in pivots:
                row = min(row, row ^ pivot)
            if row:
                pivots.append(row)
        return len(pivots)

    def is_injective(self) -> bool:
        """Full column rank: distinct inputs map to distinct outputs."""
        return self.rank() == self.n_cols

    def column(self, j: int) -> int:
        if not 0 <= j < self.n_cols:
            raise ConfigurationError(f"no column {j}")
        value = 0
        for i, row in enumerate(self.rows):
            value |= ((row >> j) & 1) << i
        return value

    def _columns(self) -> list[int]:
        return [self.column(j) for j in range(self.n_cols)]

    def to_lists(self) -> list[list[int]]:
        """Dense 0/1 nested lists (for display and debugging)."""
        return [
            [(row >> j) & 1 for j in range(self.n_cols)] for row in self.rows
        ]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "\n".join(
            " ".join(str(bit) for bit in row) for row in self.to_lists()
        )
