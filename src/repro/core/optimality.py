"""Empirical optimality checkers for arbitrary distribution methods.

These implement the paper's definitions directly:

* **strict optimal** for query ``q`` — no device holds more than
  ``ceil(|R(q)| / M)`` qualified buckets,
* **k-optimal** — strict optimal for every query with exactly ``k``
  unspecified fields,
* **perfect optimal** — k-optimal for every ``k``.

For separable methods (FX, Modulo, GDM) the histogram shape is
pattern-invariant, so one representative query per pattern settles the whole
class; for arbitrary methods every concrete query must be checked, which the
functions do (guarded by an explicit work budget rather than silently
running forever).
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.distribution.base import DistributionMethod, SeparableMethod
from repro.errors import AnalysisError
from repro.query.partial_match import PartialMatchQuery
from repro.query.patterns import (
    SpecPattern,
    all_patterns,
    patterns_with_k_unspecified,
    queries_for_pattern,
)
from repro.util.numbers import ceil_div

__all__ = [
    "response_histogram",
    "is_strict_optimal",
    "pattern_is_strict_optimal",
    "is_k_optimal",
    "is_perfect_optimal",
    "OptimalityReport",
    "optimality_report",
]

#: Default ceiling on the number of bucket evaluations a single exhaustive
#: check may spend before raising, to keep accidental blow-ups loud.
DEFAULT_WORK_LIMIT = 50_000_000


def response_histogram(
    method: DistributionMethod, query: PartialMatchQuery
) -> list[int]:
    """Per-device qualified-bucket counts for *query* (exact)."""
    return method.response_histogram(query)


def is_strict_optimal(method: DistributionMethod, query: PartialMatchQuery) -> bool:
    """Strict optimality of one concrete query."""
    return method.is_strict_optimal_for(query)


def pattern_is_strict_optimal(
    method: DistributionMethod,
    pattern: Iterable[int],
    work_limit: int = DEFAULT_WORK_LIMIT,
) -> bool:
    """Strict optimality of *every* query sharing one unspecified set.

    Separable methods settle this with one histogram; other methods fall
    back to sweeping all specified-value combinations.
    """
    fields = frozenset(pattern)
    fs = method.filesystem
    if isinstance(method, SeparableMethod):
        from repro.analysis.histograms import evaluator_for

        return evaluator_for(method).is_strict_optimal(fields)
    qualified = math.prod(fs.field_sizes[i] for i in fields)
    specified_combos = fs.bucket_count // qualified
    _check_budget(qualified * specified_combos, work_limit)
    return all(
        method.is_strict_optimal_for(query)
        for query in queries_for_pattern(fs, fields)
    )


def is_k_optimal(
    method: DistributionMethod,
    k: int,
    work_limit: int = DEFAULT_WORK_LIMIT,
    parallel: int | None = None,
) -> bool:
    """The paper's k-optimality: strict optimal for all k-unspecified queries.

    *parallel* fans the per-pattern checks over a thread pool
    (:func:`repro.perf.parallel.parallel_map`); the verdict is identical to
    serial evaluation, the patterns are just checked concurrently.
    """
    from repro.perf.parallel import parallel_map

    return all(
        parallel_map(
            lambda pattern: pattern_is_strict_optimal(
                method, pattern, work_limit=work_limit
            ),
            patterns_with_k_unspecified(method.filesystem.n_fields, k),
            parallel=parallel,
        )
    )


def is_perfect_optimal(
    method: DistributionMethod,
    work_limit: int = DEFAULT_WORK_LIMIT,
    parallel: int | None = None,
) -> bool:
    """Perfect optimality: k-optimal for every k in 0..n."""
    from repro.perf.parallel import parallel_map

    return all(
        parallel_map(
            lambda pattern: pattern_is_strict_optimal(
                method, pattern, work_limit=work_limit
            ),
            all_patterns(method.filesystem.n_fields),
            parallel=parallel,
        )
    )


@dataclass
class OptimalityReport:
    """Per-pattern optimality census of one method on one file system.

    ``failures`` lists the non-optimal patterns with their observed and
    permitted maximum loads, most overloaded first.
    """

    method_name: str
    filesystem_description: str
    total_patterns: int = 0
    optimal_patterns: int = 0
    failures: list[tuple[SpecPattern, int, int]] = field(default_factory=list)

    @property
    def optimal_fraction(self) -> float:
        """Share of patterns that are strict optimal, in [0, 1]."""
        if self.total_patterns == 0:
            return 1.0
        return self.optimal_patterns / self.total_patterns

    def summary(self) -> str:
        return (
            f"{self.method_name}: {self.optimal_patterns}/{self.total_patterns} "
            f"patterns strict optimal ({100 * self.optimal_fraction:.1f}%)"
        )


def optimality_report(
    method: DistributionMethod,
    patterns: Iterable[SpecPattern] | None = None,
    work_limit: int = DEFAULT_WORK_LIMIT,
    parallel: int | None = None,
) -> OptimalityReport:
    """Census strict optimality over *patterns* (default: all ``2**n``).

    For separable methods records the exact worst load per failing pattern;
    for others the worst load across the pattern's queries.

    *parallel* spreads the per-pattern worst-load evaluation over a thread
    pool; results come back in input order and are folded serially, so the
    report (counts, failure list, ordering) is byte-identical to serial.
    """
    from repro.perf.parallel import parallel_map

    fs = method.filesystem
    report = OptimalityReport(
        method_name=method.name or type(method).__name__,
        filesystem_description=fs.describe(),
    )
    if patterns is None:
        patterns = all_patterns(fs.n_fields)
    separable = isinstance(method, SeparableMethod)
    if separable:
        from repro.analysis.histograms import evaluator_for

        evaluator = evaluator_for(method)

    def worst_load(pattern: SpecPattern) -> int:
        if separable:
            return evaluator.largest_response(pattern)
        qualified = math.prod(fs.field_sizes[i] for i in pattern)
        specified_combos = fs.bucket_count // qualified
        _check_budget(qualified * specified_combos, work_limit)
        return max(
            method.largest_response(query)
            for query in queries_for_pattern(fs, pattern)
        )

    from repro.obs import trace_span

    patterns = list(patterns)
    with trace_span(
        "optimality.census",
        method=report.method_name,
        patterns=len(patterns),
        separable=separable,
    ) as span:
        worsts = parallel_map(worst_load, patterns, parallel=parallel)
        for pattern, worst in zip(patterns, worsts):
            report.total_patterns += 1
            qualified = math.prod(fs.field_sizes[i] for i in pattern)
            bound = ceil_div(qualified, fs.m)
            if worst <= bound:
                report.optimal_patterns += 1
            else:
                report.failures.append((pattern, worst, bound))
        report.failures.sort(
            key=lambda item: (-(item[1] - item[2]), sorted(item[0]))
        )
        span.set_attr("optimal_patterns", report.optimal_patterns)
        span.set_attr("failures", len(report.failures))
    return report


def _check_budget(cost: int, work_limit: int) -> None:
    if cost > work_limit:
        raise AnalysisError(
            f"exhaustive check needs ~{cost} bucket evaluations, above the "
            f"work limit of {work_limit}; raise work_limit explicitly to force"
        )
