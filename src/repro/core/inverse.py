"""Inverse mapping: enumerate a device's qualified buckets algebraically.

Section 5.2 of the paper stresses that each device must *find the qualified
buckets residing in it* quickly ("inverse mapping"), since a device only
holds a fraction of ``R(q)``.  For any separable method the device address is
a group fold of per-field contributions, so inverse mapping reduces to
solving one group equation: enumerate value choices for all unspecified
fields but one, then solve the remaining field's contribution for the target
device and invert it through a precomputed contribution index.

Cost: ``|R(q)| / F_s`` fold evaluations where ``F_s`` is the size of the
solved field — we always solve for the largest unspecified field, which for
an optimal distribution is within a constant factor of the per-device output
size, i.e. the enumeration is output-sensitive up to ``ceil`` effects.

Two implementations share that algebra:

* :func:`separable_qualified_on_device` — the reference iterator, one
  Python tuple at a time, kept for laziness and as the correctness oracle;
* :func:`separable_qualified_on_device_array` — the serving fast path,
  which materialises the same buckets (same row-major order, bit-identical)
  as one ``(N, n_fields)`` NumPy array via broadcasted fold enumeration and
  a sorted solve-field lookup.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator
from typing import TYPE_CHECKING

import numpy as np

from repro.hashing.fields import Bucket
from repro.obs.clock import now as _now
from repro.perf.counters import record_work
from repro.query.partial_match import PartialMatchQuery

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from repro.distribution.base import SeparableMethod

__all__ = [
    "separable_qualified_on_device",
    "separable_qualified_on_device_array",
    "contribution_index",
]


def contribution_index(
    method: "SeparableMethod", field_index: int
) -> dict[int, list[int]]:
    """Map each contribution value of a field to the field values producing it.

    For injective transforms every list has length one; for an identity on a
    large field (``F >= M``) each contribution is produced by ``F / M``
    values.  Cached on the method instance — methods are immutable, and the
    inverse mapping solves the same field for every device of a query.
    """
    cache = method.__dict__.setdefault("_contribution_index_cache", {})
    index = cache.get(field_index)
    if index is None:
        index = {}
        for value, contribution in enumerate(
            method.contribution_table(field_index)
        ):
            index.setdefault(contribution, []).append(value)
        cache[field_index] = index
    return index


def _solve_lookup(
    method: "SeparableMethod", field_index: int
) -> tuple[np.ndarray, np.ndarray]:
    """Sorted-contribution lookup of one field, cached on the method.

    Returns ``(order, sorted_contributions)`` where ``order`` is the stable
    argsort of the contribution table.  ``searchsorted`` over
    ``sorted_contributions`` then inverts any batch of needed contributions,
    and stability keeps the pre-images in ascending field-value order — the
    same order :func:`contribution_index` stores them in.
    """
    cache = method.__dict__.setdefault("_solve_lookup_cache", {})
    found = cache.get(field_index)
    if found is None:
        table = method.contribution_array(field_index)
        order = np.argsort(table, kind="stable")
        found = (order, table[order])
        cache[field_index] = found
    return found


def separable_qualified_on_device(
    method: "SeparableMethod", device: int, query: PartialMatchQuery
) -> Iterator[Bucket]:
    """Yield the qualified buckets of *query* stored on *device*.

    Works for any :class:`~repro.distribution.base.SeparableMethod`
    (``combine`` is ``"xor"`` or ``"add"``).  Buckets are yielded in
    row-major order over the enumerated fields.
    """
    fs = method.filesystem
    m = fs.m
    unspecified = list(query.unspecified_fields)

    # Fold the specified fields' contributions once.
    partial = _fold(
        method,
        (method.field_contribution(i, v) for i, v in query.specified_items()),
    )

    if not unspecified:
        # Exact match: the single qualified bucket either is or is not here.
        # Contributions are in Z_M by contract, so both folds land in Z_M.
        if partial == device:
            yield tuple(v for v in query.values)  # type: ignore[misc]
        return

    # Solve for the largest unspecified field; enumerate the others.
    solve_field = max(unspecified, key=lambda i: fs.field_sizes[i])
    enumerate_fields = [i for i in unspecified if i != solve_field]
    solve_index = contribution_index(method, solve_field)
    tables = {i: method.contribution_table(i) for i in enumerate_fields}

    axes = [range(fs.field_sizes[i]) for i in enumerate_fields]
    for choice in itertools.product(*axes):
        acc = partial
        if method.combine == "xor":
            for i, value in zip(enumerate_fields, choice):
                acc ^= tables[i][value]
            needed = acc ^ device
        else:
            for i, value in zip(enumerate_fields, choice):
                acc += tables[i][value]
            needed = (device - acc) % m
        for solve_value in solve_index.get(needed, ()):
            yield _build_bucket(
                query, dict(zip(enumerate_fields, choice)), solve_field, solve_value
            )


def separable_qualified_on_device_array(
    method: "SeparableMethod", device: int, query: PartialMatchQuery
) -> np.ndarray:
    """All qualified buckets of *query* on *device* as an int64 array.

    Bit-identical to :func:`separable_qualified_on_device`: row *k* of the
    result equals the *k*-th bucket the iterator yields.  The algebra is the
    same — fold the specified contributions, enumerate every unspecified
    field but the largest, solve that one — but each step runs over the
    whole enumeration at once:

    1. the fold over enumerated fields is built by broadcasting each
       contribution table against the accumulator (row-major order falls
       out of ``ravel``),
    2. the solve-field equation is inverted for all combinations with one
       ``searchsorted`` into the field's sorted contribution table, and
    3. variable pre-image counts (non-injective transforms) are expanded
       with ``repeat`` arithmetic instead of an inner Python loop.

    Throughput is recorded under the ``inverse_array`` perf counter
    (buckets/sec); see ``benchmarks/bench_vectorized_inverse.py``.
    """
    started = _now()
    fs = method.filesystem
    m = fs.m
    n = fs.n_fields
    unspecified = list(query.unspecified_fields)

    partial = _fold(
        method,
        (method.field_contribution(i, v) for i, v in query.specified_items()),
    )

    if not unspecified:
        if partial == device:
            out = np.asarray([query.values], dtype=np.int64)
        else:
            out = np.empty((0, n), dtype=np.int64)
        record_work("inverse_array", out.shape[0], _now() - started)
        return out

    solve_field = max(unspecified, key=lambda i: fs.field_sizes[i])
    enumerate_fields = [i for i in unspecified if i != solve_field]

    # Step 1: folded contribution of every enumerated-field combination, in
    # the iterator's row-major order.
    acc = np.asarray([partial], dtype=np.int64)
    for i in enumerate_fields:
        table = method.contribution_array(i)
        if method.combine == "xor":
            acc = (acc[:, None] ^ table[None, :]).ravel()
        else:
            acc = (acc[:, None] + table[None, :]).ravel()
    if method.combine == "xor":
        needed = acc ^ device
    else:
        needed = (device - acc) % m

    # Step 2: invert the solve field for the whole batch.
    order, sorted_contribs = _solve_lookup(method, solve_field)
    start = np.searchsorted(sorted_contribs, needed, side="left")
    end = np.searchsorted(sorted_contribs, needed, side="right")
    counts = end - start
    total = int(counts.sum())

    # Step 3: expand combinations with multiple (or zero) solve values.
    # ``combo`` maps output rows back to enumeration indices; ``within``
    # ranks each output row inside its combination's pre-image group.
    combo = np.repeat(np.arange(acc.shape[0], dtype=np.int64), counts)
    group_offsets = np.cumsum(counts) - counts
    within = np.arange(total, dtype=np.int64) - np.repeat(group_offsets, counts)
    solve_values = order[np.repeat(start, counts) + within]

    out = np.empty((total, n), dtype=np.int64)
    # Strides decode a flat enumeration index into per-field values
    # (row-major over ``enumerate_fields``, matching itertools.product).
    stride = 1
    strides: dict[int, int] = {}
    for i in reversed(enumerate_fields):
        strides[i] = stride
        stride *= fs.field_sizes[i]
    for i in range(n):
        value = query.values[i]
        if value is not None:
            out[:, i] = value
        elif i == solve_field:
            out[:, i] = solve_values
        else:
            out[:, i] = (combo // strides[i]) % fs.field_sizes[i]
    record_work("inverse_array", total, _now() - started)
    return out


def _fold(method: "SeparableMethod", contributions: Iterator[int]) -> int:
    """Fold contributions under the method's group operation."""
    if method.combine == "xor":
        acc = 0
        for c in contributions:
            acc ^= c
        return acc
    total = 0
    for c in contributions:
        total += c
    return total % method.filesystem.m


def _build_bucket(
    query: PartialMatchQuery,
    enumerated: dict[int, int],
    solve_field: int,
    solve_value: int,
) -> Bucket:
    """Assemble a full bucket address from the query plus solved values."""
    values = []
    for i, v in enumerate(query.values):
        if v is not None:
            values.append(v)
        elif i == solve_field:
            values.append(solve_value)
        else:
            values.append(enumerated[i])
    return tuple(values)
