"""Inverse mapping: enumerate a device's qualified buckets algebraically.

Section 5.2 of the paper stresses that each device must *find the qualified
buckets residing in it* quickly ("inverse mapping"), since a device only
holds a fraction of ``R(q)``.  For any separable method the device address is
a group fold of per-field contributions, so inverse mapping reduces to
solving one group equation: enumerate value choices for all unspecified
fields but one, then solve the remaining field's contribution for the target
device and invert it through a precomputed contribution index.

Cost: ``|R(q)| / F_s`` fold evaluations where ``F_s`` is the size of the
solved field — we always solve for the largest unspecified field, which for
an optimal distribution is within a constant factor of the per-device output
size, i.e. the enumeration is output-sensitive up to ``ceil`` effects.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.hashing.fields import Bucket
from repro.query.partial_match import PartialMatchQuery

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from repro.distribution.base import SeparableMethod

__all__ = ["separable_qualified_on_device", "contribution_index"]


def contribution_index(
    method: "SeparableMethod", field_index: int
) -> dict[int, list[int]]:
    """Map each contribution value of a field to the field values producing it.

    For injective transforms every list has length one; for an identity on a
    large field (``F >= M``) each contribution is produced by ``F / M``
    values.
    """
    index: dict[int, list[int]] = {}
    for value, contribution in enumerate(method.contribution_table(field_index)):
        index.setdefault(contribution, []).append(value)
    return index


def separable_qualified_on_device(
    method: "SeparableMethod", device: int, query: PartialMatchQuery
) -> Iterator[Bucket]:
    """Yield the qualified buckets of *query* stored on *device*.

    Works for any :class:`~repro.distribution.base.SeparableMethod`
    (``combine`` is ``"xor"`` or ``"add"``).  Buckets are yielded in
    row-major order over the enumerated fields.
    """
    fs = method.filesystem
    m = fs.m
    unspecified = list(query.unspecified_fields)

    # Fold the specified fields' contributions once.
    partial = _fold(
        method,
        (method.field_contribution(i, v) for i, v in query.specified_items()),
    )

    if not unspecified:
        # Exact match: the single qualified bucket either is or is not here.
        # Contributions are in Z_M by contract, so both folds land in Z_M.
        if partial == device:
            yield tuple(v for v in query.values)  # type: ignore[misc]
        return

    # Solve for the largest unspecified field; enumerate the others.
    solve_field = max(unspecified, key=lambda i: fs.field_sizes[i])
    enumerate_fields = [i for i in unspecified if i != solve_field]
    solve_index = contribution_index(method, solve_field)
    tables = {i: method.contribution_table(i) for i in enumerate_fields}

    axes = [range(fs.field_sizes[i]) for i in enumerate_fields]
    for choice in itertools.product(*axes):
        acc = partial
        if method.combine == "xor":
            for i, value in zip(enumerate_fields, choice):
                acc ^= tables[i][value]
            needed = acc ^ device
        else:
            for i, value in zip(enumerate_fields, choice):
                acc += tables[i][value]
            needed = (device - acc) % m
        for solve_value in solve_index.get(needed, ()):
            yield _build_bucket(
                query, dict(zip(enumerate_fields, choice)), solve_field, solve_value
            )


def _fold(method: "SeparableMethod", contributions: Iterator[int]) -> int:
    """Fold contributions under the method's group operation."""
    if method.combine == "xor":
        acc = 0
        for c in contributions:
            acc ^= c
        return acc
    total = 0
    for c in contributions:
        total += c
    return total % method.filesystem.m


def _build_bucket(
    query: PartialMatchQuery,
    enumerated: dict[int, int],
    solve_field: int,
    solve_value: int,
) -> Bucket:
    """Assemble a full bucket address from the query plus solved values."""
    values = []
    for i, v in enumerate(query.values):
        if v is not None:
            values.append(v)
        elif i == solve_field:
            values.append(solve_value)
        else:
            values.append(enumerated[i])
    return tuple(values)
