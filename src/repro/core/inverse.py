"""Inverse mapping: enumerate a device's qualified buckets algebraically.

Section 5.2 of the paper stresses that each device must *find the qualified
buckets residing in it* quickly ("inverse mapping"), since a device only
holds a fraction of ``R(q)``.  For any separable method the device address is
a group fold of per-field contributions, so inverse mapping reduces to
solving one group equation: enumerate value choices for all unspecified
fields but one, then solve the remaining field's contribution for the target
device and invert it through a precomputed contribution index.

Cost: ``|R(q)| / F_s`` fold evaluations where ``F_s`` is the size of the
solved field — we always solve for the largest unspecified field, which for
an optimal distribution is within a constant factor of the per-device output
size, i.e. the enumeration is output-sensitive up to ``ceil`` effects.

Two implementations share that algebra:

* :func:`separable_qualified_on_device` — the reference iterator, one
  Python tuple at a time, kept for laziness and as the correctness oracle;
* :func:`separable_qualified_on_device_array` — the serving fast path,
  which materialises the same buckets (same row-major order, bit-identical)
  as one ``(N, n_fields)`` NumPy array via broadcasted fold enumeration and
  a sorted solve-field lookup.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator, Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.hashing.fields import Bucket
from repro.obs.clock import now as _now
from repro.perf.counters import record_work
from repro.query.partial_match import PartialMatchQuery

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from repro.distribution.base import SeparableMethod

__all__ = [
    "separable_qualified_on_device",
    "separable_qualified_on_device_array",
    "separable_qualified_flat_batch",
    "bucket_strides",
    "contribution_index",
]

#: Ceiling on the (queries x devices x combinations) working set one chunk
#: of the batched solver materialises; larger groups are processed in
#: query sub-chunks so peak memory stays bounded (~64 MB of int64).
_BATCH_CELL_LIMIT = 1 << 23


def bucket_strides(filesystem) -> np.ndarray:
    """Row-major strides flattening a bucket address to one int64.

    ``flat(bucket) = sum_i bucket[i] * strides[i]`` is a bijection onto
    ``[0, bucket_count)`` that preserves lexicographic order — the encoding
    every engine fast path shares so whole bucket sets can live in flat
    int64 arrays instead of tuples.
    """
    sizes = filesystem.field_sizes
    strides = np.empty(len(sizes), dtype=np.int64)
    stride = 1
    for i in range(len(sizes) - 1, -1, -1):
        strides[i] = stride
        stride *= sizes[i]
    return strides


def contribution_index(
    method: "SeparableMethod", field_index: int
) -> dict[int, list[int]]:
    """Map each contribution value of a field to the field values producing it.

    For injective transforms every list has length one; for an identity on a
    large field (``F >= M``) each contribution is produced by ``F / M``
    values.  Cached on the method instance — methods are immutable, and the
    inverse mapping solves the same field for every device of a query.
    """
    cache = method.__dict__.setdefault("_contribution_index_cache", {})
    index = cache.get(field_index)
    if index is None:
        index = {}
        for value, contribution in enumerate(
            method.contribution_table(field_index)
        ):
            index.setdefault(contribution, []).append(value)
        cache[field_index] = index
    return index


def _solve_lookup(
    method: "SeparableMethod", field_index: int
) -> tuple[np.ndarray, np.ndarray]:
    """Sorted-contribution lookup of one field, cached on the method.

    Returns ``(order, starts)`` where ``order`` is the stable argsort of
    the contribution table and ``starts[c]`` is the offset in ``order`` of
    the first pre-image of contribution ``c`` (``starts`` has ``m + 1``
    entries, so ``starts[c + 1] - starts[c]`` counts them).  Contributions
    live in ``Z_M``, so inverting a batch of needed contributions is two
    table gathers — no per-batch ``searchsorted``.  Stability keeps the
    pre-images in ascending field-value order — the same order
    :func:`contribution_index` stores them in.
    """
    cache = method.__dict__.setdefault("_solve_lookup_cache", {})
    found = cache.get(field_index)
    if found is None:
        table = method.contribution_array(field_index)
        order = np.argsort(table, kind="stable")
        starts = np.searchsorted(
            table[order], np.arange(method.filesystem.m + 1, dtype=np.int64)
        )
        found = (order, starts)
        cache[field_index] = found
    return found


def separable_qualified_on_device(
    method: "SeparableMethod", device: int, query: PartialMatchQuery
) -> Iterator[Bucket]:
    """Yield the qualified buckets of *query* stored on *device*.

    Works for any :class:`~repro.distribution.base.SeparableMethod`
    (``combine`` is ``"xor"`` or ``"add"``).  Buckets are yielded in
    row-major order over the enumerated fields.
    """
    fs = method.filesystem
    m = fs.m
    unspecified = list(query.unspecified_fields)

    # Fold the specified fields' contributions once.
    partial = _fold(
        method,
        (method.field_contribution(i, v) for i, v in query.specified_items()),
    )

    if not unspecified:
        # Exact match: the single qualified bucket either is or is not here.
        # Contributions are in Z_M by contract, so both folds land in Z_M.
        if partial == device:
            yield tuple(v for v in query.values)  # type: ignore[misc]
        return

    # Solve for the largest unspecified field; enumerate the others.
    solve_field = max(unspecified, key=lambda i: fs.field_sizes[i])
    enumerate_fields = [i for i in unspecified if i != solve_field]
    solve_index = contribution_index(method, solve_field)
    tables = {i: method.contribution_table(i) for i in enumerate_fields}

    axes = [range(fs.field_sizes[i]) for i in enumerate_fields]
    for choice in itertools.product(*axes):
        acc = partial
        if method.combine == "xor":
            for i, value in zip(enumerate_fields, choice):
                acc ^= tables[i][value]
            needed = acc ^ device
        else:
            for i, value in zip(enumerate_fields, choice):
                acc += tables[i][value]
            needed = (device - acc) % m
        for solve_value in solve_index.get(needed, ()):
            yield _build_bucket(
                query, dict(zip(enumerate_fields, choice)), solve_field, solve_value
            )


def separable_qualified_on_device_array(
    method: "SeparableMethod", device: int, query: PartialMatchQuery
) -> np.ndarray:
    """All qualified buckets of *query* on *device* as an int64 array.

    Bit-identical to :func:`separable_qualified_on_device`: row *k* of the
    result equals the *k*-th bucket the iterator yields.  The algebra is the
    same — fold the specified contributions, enumerate every unspecified
    field but the largest, solve that one — but each step runs over the
    whole enumeration at once:

    1. the fold over enumerated fields is built by broadcasting each
       contribution table against the accumulator (row-major order falls
       out of ``ravel``),
    2. the solve-field equation is inverted for all combinations with
       gathers through the field's cached pre-image offset table, and
    3. variable pre-image counts (non-injective transforms) are expanded
       with ``repeat`` arithmetic instead of an inner Python loop.

    Throughput is recorded under the ``inverse_array`` perf counter
    (buckets/sec); see ``benchmarks/bench_vectorized_inverse.py``.
    """
    started = _now()
    fs = method.filesystem
    m = fs.m
    n = fs.n_fields
    unspecified = list(query.unspecified_fields)

    partial = _fold(
        method,
        (method.field_contribution(i, v) for i, v in query.specified_items()),
    )

    if not unspecified:
        if partial == device:
            out = np.asarray([query.values], dtype=np.int64)
        else:
            out = np.empty((0, n), dtype=np.int64)
        record_work("inverse_array", out.shape[0], _now() - started)
        return out

    solve_field = max(unspecified, key=lambda i: fs.field_sizes[i])
    enumerate_fields = [i for i in unspecified if i != solve_field]

    # Step 1: folded contribution of every enumerated-field combination, in
    # the iterator's row-major order.
    acc = np.asarray([partial], dtype=np.int64)
    for i in enumerate_fields:
        table = method.contribution_array(i)
        if method.combine == "xor":
            acc = (acc[:, None] ^ table[None, :]).ravel()
        else:
            acc = (acc[:, None] + table[None, :]).ravel()
    if method.combine == "xor":
        needed = acc ^ device
    else:
        needed = (device - acc) % m

    # Step 2: invert the solve field for the whole batch.
    order, starts = _solve_lookup(method, solve_field)
    start = starts[needed]
    counts = starts[needed + 1] - start
    total = int(counts.sum())

    # Step 3: expand combinations with multiple (or zero) solve values.
    # ``combo`` maps output rows back to enumeration indices; ``within``
    # ranks each output row inside its combination's pre-image group.
    combo = np.repeat(np.arange(acc.shape[0], dtype=np.int64), counts)
    group_offsets = np.cumsum(counts) - counts
    within = np.arange(total, dtype=np.int64) - np.repeat(group_offsets, counts)
    solve_values = order[np.repeat(start, counts) + within]

    out = np.empty((total, n), dtype=np.int64)
    # Strides decode a flat enumeration index into per-field values
    # (row-major over ``enumerate_fields``, matching itertools.product).
    stride = 1
    strides: dict[int, int] = {}
    for i in reversed(enumerate_fields):
        strides[i] = stride
        stride *= fs.field_sizes[i]
    for i in range(n):
        value = query.values[i]
        if value is not None:
            out[:, i] = value
        elif i == solve_field:
            out[:, i] = solve_values
        else:
            out[:, i] = (combo // strides[i]) % fs.field_sizes[i]
    record_work("inverse_array", total, _now() - started)
    return out


def separable_qualified_flat_batch(
    method: "SeparableMethod",
    queries: "Sequence[PartialMatchQuery]",
    strides: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Qualified buckets of a *pattern group* on every device, one pass.

    All *queries* must share one pattern (the same set of unspecified
    fields) — the engine's planner groups by pattern before calling in.
    Returns ``(flat, counts)`` where ``counts[g, d]`` is the number of
    qualified buckets of query *g* on device *d*, and ``flat`` holds every
    qualified bucket as a row-major flat address (see
    :func:`bucket_strides`), ordered by ``(query, device, enumeration
    combination, solve pre-image rank)``.  Within each ``(query, device)``
    slice that is exactly the order :func:`separable_qualified_on_device`
    yields — decode ``flat`` with the strides and you get the iterator's
    buckets bit-identically.

    The algebra generalises the single-(query, device) array path over two
    more axes: per-query specified folds are gathered through the
    contribution arrays, the enumeration fold is built once and shared by
    the whole group, and two gathers through the cached pre-image offset
    table invert the solve field for all ``G x M x E`` cells at once.  Groups whose working set exceeds
    ``_BATCH_CELL_LIMIT`` cells are processed in query sub-chunks so peak
    memory stays bounded (query-major output order is preserved).

    Throughput lands on the ``inverse_batch`` perf counter (buckets/sec).
    """
    started = _now()
    fs = method.filesystem
    m = fs.m
    n = fs.n_fields
    G = len(queries)
    if G == 0:
        record_work("inverse_batch", 0, _now() - started)
        return (
            np.empty(0, dtype=np.int64),
            np.empty((0, m), dtype=np.int64),
        )

    pattern = queries[0].pattern
    specified = [i for i in range(n) if i not in pattern]
    xor = method.combine == "xor"

    # Per-query specified fold + flat prefix, vectorised across the group.
    folds = np.zeros(G, dtype=np.int64)
    spec_flat = np.zeros(G, dtype=np.int64)
    if specified:
        vals = np.asarray(
            [[query.values[i] for i in specified] for query in queries],
            dtype=np.int64,
        )
        spec_flat = vals @ strides[specified]
        for k, i in enumerate(specified):
            table = method.contribution_array(i)
            if xor:
                folds ^= table[vals[:, k]]
            else:
                folds += table[vals[:, k]]
        if not xor:
            folds %= m

    if not pattern:
        # Exact match: each query's single bucket sits on its fold device.
        counts = np.zeros((G, m), dtype=np.int64)
        counts[np.arange(G), folds] = 1
        record_work("inverse_batch", G, _now() - started)
        return spec_flat, counts

    unspecified = sorted(pattern)
    solve_field = max(unspecified, key=lambda i: fs.field_sizes[i])
    enumerate_fields = [i for i in unspecified if i != solve_field]

    # Shared enumeration fold and flat offsets, row-major like the iterator.
    acc = np.zeros(1, dtype=np.int64)
    enum_flat = np.zeros(1, dtype=np.int64)
    for i in enumerate_fields:
        table = method.contribution_array(i)
        offsets = np.arange(fs.field_sizes[i], dtype=np.int64) * strides[i]
        if xor:
            acc = (acc[:, None] ^ table[None, :]).ravel()
        else:
            acc = (acc[:, None] + table[None, :]).ravel()
        enum_flat = (enum_flat[:, None] + offsets[None, :]).ravel()

    e_size = acc.shape[0]
    devices = np.arange(m, dtype=np.int64)
    order, starts = _solve_lookup(method, solve_field)
    solve_stride = int(strides[solve_field])

    chunk = max(1, _BATCH_CELL_LIMIT // (m * e_size))
    flat_parts: list[np.ndarray] = []
    count_parts: list[np.ndarray] = []
    total = 0
    for lo in range(0, G, chunk):
        hi = min(G, lo + chunk)
        if xor:
            needed = (
                folds[lo:hi, None, None]
                ^ devices[None, :, None]
                ^ acc[None, None, :]
            )
        else:
            needed = (
                devices[None, :, None]
                - folds[lo:hi, None, None]
                - acc[None, None, :]
            ) % m
        cells = needed.ravel()  # (query, device, combination) major order
        start = starts[cells]
        cell_counts = starts[cells + 1] - start
        part_total = int(cell_counts.sum())
        total += part_total

        cell = np.repeat(
            np.arange(cells.shape[0], dtype=np.int64), cell_counts
        )
        group_offsets = np.cumsum(cell_counts) - cell_counts
        within = np.arange(part_total, dtype=np.int64) - np.repeat(
            group_offsets, cell_counts
        )
        solve_values = order[np.repeat(start, cell_counts) + within]

        g_idx = cell // (m * e_size)
        e_idx = cell % e_size
        flat_parts.append(
            spec_flat[lo:hi][g_idx]
            + enum_flat[e_idx]
            + solve_values * solve_stride
        )
        count_parts.append(
            cell_counts.reshape(hi - lo, m, e_size).sum(axis=2)
        )

    flat = flat_parts[0] if len(flat_parts) == 1 else np.concatenate(flat_parts)
    counts = (
        count_parts[0] if len(count_parts) == 1 else np.concatenate(count_parts)
    )
    record_work("inverse_batch", total, _now() - started)
    return flat, counts


def _fold(method: "SeparableMethod", contributions: Iterator[int]) -> int:
    """Fold contributions under the method's group operation."""
    if method.combine == "xor":
        acc = 0
        for c in contributions:
            acc ^= c
        return acc
    total = 0
    for c in contributions:
        total += c
    return total % method.filesystem.m


def _build_bucket(
    query: PartialMatchQuery,
    enumerated: dict[int, int],
    solve_field: int,
    solve_value: int,
) -> Bucket:
    """Assemble a full bucket address from the query plus solved values."""
    values = []
    for i, v in enumerate(query.values):
        if v is not None:
            values.append(v)
        elif i == solve_field:
            values.append(solve_value)
        else:
            values.append(enumerated[i])
    return tuple(values)
