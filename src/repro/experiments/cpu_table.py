"""Section 5.2.2: CPU address-computation cycles, FX vs GDM vs Modulo.

The paper's claim: on an MC68000 (XOR 8, ADD 4, AND 4, n-bit shift 6+2n,
MUL 70 cycles), FX address computation "takes about only one third" of
GDM's, because FX's power-of-two multipliers compile to shifts while GDM's
odd multipliers need true multiplies.  This module renders that comparison
for the evaluation file systems and both cycle tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cpu_cost import CYCLE_TABLES, CpuCostModel
from repro.experiments.filesystems import table7_setup, table9_setup
from repro.util.tables import format_table

__all__ = ["CpuComparison", "cpu_comparison", "render_cpu_table"]


@dataclass(frozen=True)
class CpuComparison:
    """Cycle counts for one file system on one processor."""

    processor: str
    scenario: str
    fx_cycles: int
    gdm_cycles: int
    modulo_cycles: int

    @property
    def fx_to_gdm(self) -> float:
        """The paper's headline ratio (about 1/3 on the MC68000)."""
        return self.fx_cycles / self.gdm_cycles


def cpu_comparison(processor: str = "mc68000") -> list[CpuComparison]:
    """Address-computation cycles on the Table 7 and Table 9 scenarios."""
    model = CpuCostModel.for_processor(processor)
    rows = []
    for setup in (table7_setup(), table9_setup()):
        fx = setup.methods["FX"]
        gdm = setup.methods["GDM1"]
        modulo = setup.methods["Modulo"]
        rows.append(
            CpuComparison(
                processor=CYCLE_TABLES[processor].name,
                scenario=setup.title,
                fx_cycles=model.address_cycles(fx),
                gdm_cycles=model.address_cycles(gdm),
                modulo_cycles=model.address_cycles(modulo),
            )
        )
    return rows


def render_cpu_table(processor: str = "mc68000") -> str:
    """Plain-text rendering of the section 5.2.2 comparison."""
    rows = cpu_comparison(processor)
    return format_table(
        ["scenario", "FX cycles", "GDM cycles", "Modulo cycles", "FX/GDM"],
        [
            [
                row.scenario,
                row.fx_cycles,
                row.gdm_cycles,
                row.modulo_cycles,
                round(row.fx_to_gdm, 2),
            ]
            for row in rows
        ],
        title=f"Address computation cycles ({rows[0].processor})",
        float_digits=2,
    )
