"""Tables 1-6: the paper's worked example distributions, as golden data.

Each table in the paper body prints the device number of every bucket of a
tiny file system under a specific FX configuration (and, in Table 2, under
Modulo as well).  The published device columns are recorded here verbatim;
:func:`golden_table` recomputes them with this library so tests and the
benchmark harness can diff reproduction against publication cell by cell.

Bucket enumeration order is the paper's: row-major with the first field
outermost (exactly :meth:`repro.hashing.fields.FileSystem.buckets`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.fx import BasicFXDistribution, FXDistribution
from repro.distribution.base import DistributionMethod
from repro.distribution.modulo import ModuloDistribution
from repro.errors import ConfigurationError
from repro.hashing.fields import FileSystem

__all__ = ["GoldenTable", "GOLDEN_TABLES", "golden_table", "golden_report"]


@dataclass(frozen=True)
class GoldenTable:
    """One worked example: configuration plus the published device column."""

    table_id: str
    caption: str
    filesystem: FileSystem
    #: Transform families per field; ``None`` means Basic FX.
    transforms: tuple[str, ...] | None
    #: Device number per bucket, in paper (row-major) order.
    expected_devices: tuple[int, ...]
    #: For Table 2 the paper also prints the Modulo column.
    expected_modulo: tuple[int, ...] | None = None

    def build_method(self) -> DistributionMethod:
        if self.transforms is None:
            return BasicFXDistribution(self.filesystem)
        return FXDistribution(self.filesystem, transforms=list(self.transforms))

    def computed_devices(self) -> tuple[int, ...]:
        method = self.build_method()
        return tuple(method.device_of(b) for b in self.filesystem.buckets())

    def computed_modulo(self) -> tuple[int, ...]:
        modulo = ModuloDistribution(self.filesystem)
        return tuple(modulo.device_of(b) for b in self.filesystem.buckets())

    def matches_paper(self) -> bool:
        if self.computed_devices() != self.expected_devices:
            return False
        if self.expected_modulo is not None:
            return self.computed_modulo() == self.expected_modulo
        return True


GOLDEN_TABLES: dict[str, GoldenTable] = {
    "table1": GoldenTable(
        table_id="table1",
        caption="Table 1. Basic FX distribution (F = (2, 8), M = 4)",
        filesystem=FileSystem.of(2, 8, m=4),
        transforms=None,
        expected_devices=(
            0, 1, 2, 3, 0, 1, 2, 3,
            1, 0, 3, 2, 1, 0, 3, 2,
        ),
    ),
    "table2": GoldenTable(
        table_id="table2",
        caption="Table 2. FX with I and U transformation (F = (4, 4), M = 16)",
        filesystem=FileSystem.of(4, 4, m=16),
        transforms=("I", "U"),
        expected_devices=(
            0, 4, 8, 12,
            1, 5, 9, 13,
            2, 6, 10, 14,
            3, 7, 11, 15,
        ),
        expected_modulo=(
            0, 1, 2, 3,
            1, 2, 3, 4,
            2, 3, 4, 5,
            3, 4, 5, 6,
        ),
    ),
    "table3": GoldenTable(
        table_id="table3",
        caption="Table 3. FX with I and IU1 transformation (F = (4, 4), M = 16)",
        filesystem=FileSystem.of(4, 4, m=16),
        transforms=("I", "IU1"),
        expected_devices=(
            0, 5, 10, 15,
            1, 4, 11, 14,
            2, 7, 8, 13,
            3, 6, 9, 12,
        ),
    ),
    "table4": GoldenTable(
        table_id="table4",
        caption="Table 4. FX with I, U and IU1 transformation "
                "(F = (2, 4, 2), M = 8)",
        filesystem=FileSystem.of(2, 4, 2, m=8),
        transforms=("I", "U", "IU1"),
        expected_devices=(
            0, 5, 2, 7, 4, 1, 6, 3,
            1, 4, 3, 6, 5, 0, 7, 2,
        ),
    ),
    "table5": GoldenTable(
        table_id="table5",
        caption="Table 5. FX with I and IU2 transformation (F = (8, 2), M = 16)",
        filesystem=FileSystem.of(8, 2, m=16),
        transforms=("I", "IU2"),
        expected_devices=(
            0, 13, 1, 12, 2, 15, 3, 14,
            4, 9, 5, 8, 6, 11, 7, 10,
        ),
    ),
    "table6": GoldenTable(
        table_id="table6",
        caption="Table 6. FX with I, U and IU2 transformation "
                "(F = (4, 2, 2), M = 16)",
        filesystem=FileSystem.of(4, 2, 2, m=16),
        transforms=("I", "U", "IU2"),
        expected_devices=(
            0, 13, 8, 5,
            1, 12, 9, 4,
            2, 15, 10, 7,
            3, 14, 11, 6,
        ),
    ),
}


def golden_table(table_id: str) -> GoldenTable:
    """Fetch one golden table by id ("table1" .. "table6")."""
    try:
        return GOLDEN_TABLES[table_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown golden table {table_id!r}; known: {sorted(GOLDEN_TABLES)}"
        ) from None


def golden_report() -> list[tuple[str, bool]]:
    """(table_id, matches_paper) for every worked example."""
    return [
        (table_id, table.matches_paper())
        for table_id, table in sorted(GOLDEN_TABLES.items())
    ]
