"""Reproduction harness: one module per paper artefact.

``filesystems``
    The exact file-system scenarios of the evaluation section.
``golden``
    Tables 1-6 (worked examples in the paper body) with the published
    device columns, as machine-checkable golden data.
``response_tables``
    Tables 7-9 (average largest response size) plus the paper's printed
    values for side-by-side comparison.
``figures``
    Figures 1-4 (percentage of strict-optimal queries).
``cpu_table``
    Section 5.2.2 (address-computation cycle counts).
``runner``
    Regenerates everything and writes the EXPERIMENTS.md report
    (``python -m repro.experiments``).
"""

from repro.experiments.filesystems import (
    figure_scenario,
    table7_setup,
    table8_setup,
    table9_setup,
)
from repro.experiments.golden import GOLDEN_TABLES, golden_table
from repro.experiments.response_tables import (
    PAPER_RESPONSE_TABLES,
    reproduce_table,
)
from repro.experiments.figures import (
    extension_figure,
    reproduce_figure,
    reproduce_figure_exact,
)
from repro.experiments.store import load_artifact, save_artifact
from repro.experiments.verification import verify_method

__all__ = [
    "figure_scenario",
    "table7_setup",
    "table8_setup",
    "table9_setup",
    "GOLDEN_TABLES",
    "golden_table",
    "PAPER_RESPONSE_TABLES",
    "reproduce_table",
    "reproduce_figure",
    "reproduce_figure_exact",
    "extension_figure",
    "save_artifact",
    "load_artifact",
    "verify_method",
]
