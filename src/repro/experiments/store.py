"""JSON persistence for experiment artefacts.

Long sweeps (figures, response tables, skew censuses, simulator runs) are
cheap here but still worth persisting: the benchmark harness can diff a
fresh run against a stored baseline, and downstream notebooks can consume
the JSON without re-running anything.  The format is a tagged envelope::

    {"kind": "response_table", "version": 1, "payload": {...}}

so a file is self-describing and future schema changes stay detectable.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.optim_prob import OptimalitySeries
from repro.analysis.response import ResponseTable
from repro.errors import AnalysisError
from repro.hashing.fields import FileSystem

__all__ = [
    "response_table_to_dict",
    "response_table_from_dict",
    "series_to_dict",
    "series_from_dict",
    "save_artifact",
    "load_artifact",
]

_VERSION = 1


def response_table_to_dict(table: ResponseTable) -> dict:
    """Plain-JSON representation of a Tables-7-9-style result."""
    return {
        "kind": "response_table",
        "version": _VERSION,
        "payload": {
            "title": table.title,
            "field_sizes": list(table.filesystem.field_sizes),
            "num_devices": table.filesystem.num_devices,
            "ks": list(table.ks),
            "columns": list(table.columns),
            "rows": [list(row) for row in table.rows],
        },
    }


def response_table_from_dict(data: dict) -> ResponseTable:
    payload = _payload(data, "response_table")
    return ResponseTable(
        title=payload["title"],
        filesystem=FileSystem.of(
            *payload["field_sizes"], m=payload["num_devices"]
        ),
        ks=tuple(payload["ks"]),
        columns=tuple(payload["columns"]),
        rows=tuple(tuple(row) for row in payload["rows"]),
    )


def series_to_dict(series: OptimalitySeries) -> dict:
    """Plain-JSON representation of a Figures-1-4-style result."""
    return {
        "kind": "optimality_series",
        "version": _VERSION,
        "payload": {
            "title": series.title,
            "x_label": series.x_label,
            "x": list(series.x),
            "series": {name: list(values) for name, values in series.series.items()},
        },
    }


def series_from_dict(data: dict) -> OptimalitySeries:
    payload = _payload(data, "optimality_series")
    return OptimalitySeries(
        title=payload["title"],
        x_label=payload["x_label"],
        x=tuple(payload["x"]),
        series={
            name: tuple(values) for name, values in payload["series"].items()
        },
    )


_CODECS = {
    "response_table": (response_table_to_dict, response_table_from_dict),
    "optimality_series": (series_to_dict, series_from_dict),
}


def save_artifact(path: str | Path, artifact: ResponseTable | OptimalitySeries) -> None:
    """Serialise one artefact to a JSON file.

    >>> import tempfile, os
    >>> from repro.experiments.response_tables import reproduce_table
    >>> with tempfile.TemporaryDirectory() as d:
    ...     p = os.path.join(d, "t7.json")
    ...     save_artifact(p, reproduce_table("table7"))
    ...     load_artifact(p).column("FX")[0]
    3.2
    """
    if isinstance(artifact, ResponseTable):
        data = response_table_to_dict(artifact)
    elif isinstance(artifact, OptimalitySeries):
        data = series_to_dict(artifact)
    else:
        raise AnalysisError(
            f"cannot serialise {type(artifact).__name__}; supported: "
            f"{sorted(_CODECS)}"
        )
    Path(path).write_text(json.dumps(data, indent=2), encoding="utf-8")


def load_artifact(path: str | Path):
    """Load a previously saved artefact, dispatching on its ``kind``."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    kind = data.get("kind")
    if kind not in _CODECS:
        raise AnalysisError(f"unknown artefact kind {kind!r} in {path}")
    __, decode = _CODECS[kind]
    return decode(data)


def _payload(data: dict, expected_kind: str) -> dict:
    if data.get("kind") != expected_kind:
        raise AnalysisError(
            f"expected a {expected_kind} artefact, got {data.get('kind')!r}"
        )
    if data.get("version") != _VERSION:
        raise AnalysisError(
            f"artefact version {data.get('version')!r} not supported "
            f"(this build reads version {_VERSION})"
        )
    return data["payload"]
