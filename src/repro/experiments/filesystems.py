"""The evaluation scenarios of paper section 5, as constructors.

Tables 7-9 fix one file system each and compare Modulo, three GDM parameter
sets and FX; Figures 1-4 sweep the number of fields whose sizes are smaller
than ``M`` inside two regimes (pairwise products of small sizes >= M with
I/U/IU1, pairwise < M but triple >= M with I/U/IU2).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.core.fx import FXDistribution
from repro.distribution.base import DistributionMethod
from repro.distribution.gdm import GDMDistribution
from repro.distribution.modulo import ModuloDistribution
from repro.errors import ConfigurationError
from repro.hashing.fields import FileSystem
from repro.util.numbers import is_power_of_two

__all__ = [
    "TableSetup",
    "table7_setup",
    "table8_setup",
    "table9_setup",
    "FigureScenario",
    "figure_scenario",
]


@dataclass(frozen=True)
class TableSetup:
    """One response-size table: its file system, methods and k range."""

    table_id: str
    filesystem: FileSystem
    methods: dict[str, DistributionMethod]
    ks: tuple[int, ...]
    title: str


def _table_methods(
    filesystem: FileSystem, fx_variant: str
) -> dict[str, DistributionMethod]:
    """The six columns of Tables 7-9, in the paper's order."""
    return {
        "Modulo": ModuloDistribution(filesystem),
        "GDM1": GDMDistribution.preset(filesystem, "GDM1"),
        "GDM2": GDMDistribution.preset(filesystem, "GDM2"),
        "GDM3": GDMDistribution.preset(filesystem, "GDM3"),
        "FX": FXDistribution(filesystem, policy="paper", variant=fx_variant),
    }


def table7_setup() -> TableSetup:
    """Table 7: ``M = 32``, six fields of size 8, FX uses I/U/IU1."""
    fs = FileSystem.uniform(6, 8, m=32)
    return TableSetup(
        table_id="table7",
        filesystem=fs,
        methods=_table_methods(fs, "IU1"),
        ks=(2, 3, 4, 5, 6),
        title="Table 7. M = 32, F1 = ... = F6 = 8",
    )


def table8_setup() -> TableSetup:
    """Table 8: ``M = 64``, six fields of size 8, FX uses I/U/IU1."""
    fs = FileSystem.uniform(6, 8, m=64)
    return TableSetup(
        table_id="table8",
        filesystem=fs,
        methods=_table_methods(fs, "IU1"),
        ks=(2, 3, 4, 5, 6),
        title="Table 8. M = 64, F1 = ... = F6 = 8",
    )


def table9_setup() -> TableSetup:
    """Table 9: ``M = 512``, sizes (8,8,8,16,16,16), FX uses I/U/IU2."""
    fs = FileSystem.of(8, 8, 8, 16, 16, 16, m=512)
    return TableSetup(
        table_id="table9",
        filesystem=fs,
        methods=_table_methods(fs, "IU2"),
        ks=(2, 3, 4, 5, 6),
        title="Table 9. M = 512, F1 = F2 = F3 = 8 and F4 = F5 = F6 = 16",
    )


@dataclass(frozen=True)
class FigureScenario:
    """One optimality-percentage figure: the x sweep plus the FX builder."""

    figure_id: str
    title: str
    filesystems: tuple[FileSystem, ...]
    x_values: tuple[int, ...]
    fx_builder: Callable[[FileSystem], FXDistribution]


def figure_scenario(figure_id: str) -> FigureScenario:
    """Build Figures 1-4's sweeps.

    * Figures 1/2 (n = 6 / 10): any two small fields have ``Fp Fq >= M``
      (small size ``sqrt(M)``); FX uses I, U and IU1.
    * Figures 3/4 (n = 6 / 10): pairwise products of small sizes < M but
      any triple ``>= M`` (small size ``cbrt(M)``); FX uses I, U and IU2.

    The x axis is the number of fields whose sizes are less than ``M``;
    large fields have size exactly ``M``.
    """
    scenarios = {
        "figure1": (6, 64, 8, "IU1", "Figure 1. n = 6, FpFq >= M (I/U/IU1)"),
        "figure2": (10, 64, 8, "IU1", "Figure 2. n = 10, FpFq >= M (I/U/IU1)"),
        "figure3": (6, 512, 8, "IU2",
                    "Figure 3. n = 6, FpFq < M <= FpFqFr (I/U/IU2)"),
        "figure4": (10, 512, 8, "IU2",
                    "Figure 4. n = 10, FpFq < M <= FpFqFr (I/U/IU2)"),
    }
    try:
        n_fields, m, small_size, variant, title = scenarios[figure_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown figure {figure_id!r}; known: {sorted(scenarios)}"
        ) from None
    filesystems = tuple(
        small_field_sweep_filesystem(n_fields, m, small_size, num_small)
        for num_small in range(n_fields + 1)
    )

    def build_fx(fs: FileSystem) -> FXDistribution:
        return FXDistribution(fs, policy="paper", variant=variant)

    return FigureScenario(
        figure_id=figure_id,
        title=title,
        filesystems=filesystems,
        x_values=tuple(range(n_fields + 1)),
        fx_builder=build_fx,
    )


def small_field_sweep_filesystem(
    n_fields: int, m: int, small_size: int, num_small: int
) -> FileSystem:
    """A file system whose first *num_small* fields have size *small_size*
    (< M) and the rest size ``M``."""
    if not 0 <= num_small <= n_fields:
        raise ConfigurationError(
            f"num_small={num_small} outside [0, {n_fields}]"
        )
    if not (is_power_of_two(small_size) and small_size < m):
        raise ConfigurationError(
            f"small size must be a power of two below M, got {small_size}"
        )
    sizes = [small_size] * num_small + [m] * (n_fields - num_small)
    return FileSystem.of(*sizes, m=m)
