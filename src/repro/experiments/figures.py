"""Figures 1-4: percentage of strict optimal queries, FX vs Modulo.

The paper computes these curves *from each method's sufficient conditions*
(section 5.1); :func:`reproduce_figure` does the same, and
:func:`reproduce_figure_exact` additionally evaluates the ground truth with
the convolution engine, which the paper could not do at scale in 1988 — the
gap between the two is the conservativeness of the published conditions.
"""

from __future__ import annotations

from repro.analysis.optim_prob import (
    OptimalitySeries,
    exact_optimality_series,
    sufficient_optimality_series,
)
from repro.experiments.filesystems import FigureScenario, figure_scenario

__all__ = [
    "reproduce_figure",
    "reproduce_figure_exact",
    "extension_figure",
    "figure_scenario",
]


def reproduce_figure(figure_id: str, p: float = 0.5) -> OptimalitySeries:
    """Regenerate one figure the paper's way (sufficient conditions)."""
    scenario: FigureScenario = figure_scenario(figure_id)
    return sufficient_optimality_series(
        scenario.filesystems,
        scenario.fx_builder,
        x_values=scenario.x_values,
        p=p,
        title=f"{scenario.title} - sufficient conditions",
    )


def reproduce_figure_exact(figure_id: str, p: float = 0.5) -> OptimalitySeries:
    """Ground-truth companion: exact per-pattern optimality."""
    scenario: FigureScenario = figure_scenario(figure_id)
    return exact_optimality_series(
        scenario.filesystems,
        scenario.fx_builder,
        x_values=scenario.x_values,
        p=p,
        title=f"{scenario.title} - exact",
    )


def extension_figure(
    figure_id: str = "figure3",
    p: float = 0.5,
    iterations: int = 120,
    seed: int = 1,
) -> OptimalitySeries:
    """"Figure 5": a figure scenario with a searched-linear-transform curve.

    Adds to the paper's FD/MD comparison a third series, LD: FX with
    GF(2)-linear transforms found by random search (the section 6
    direction).  On the figure-3 scenario LD dominates the published FX
    policy at every x and stays perfect one step further.
    """
    from repro.analysis.optim_prob import exact_fraction
    from repro.core.linear import random_matrix_search
    from repro.distribution.modulo import ModuloDistribution

    scenario: FigureScenario = figure_scenario(figure_id)
    fd, md, ld = [], [], []
    for fs in scenario.filesystems:
        fd.append(100.0 * exact_fraction(scenario.fx_builder(fs), p=p))
        md.append(100.0 * exact_fraction(ModuloDistribution(fs), p=p))
        searched = random_matrix_search(fs, iterations=iterations, p=p, seed=seed)
        ld.append(100.0 * searched.score)
    return OptimalitySeries(
        title=f"{scenario.title} + searched linear transforms (extension)",
        x_label="fields with F < M",
        x=scenario.x_values,
        series={
            "FD (FX)": tuple(fd),
            "MD (Modulo)": tuple(md),
            "LD (linear, searched)": tuple(ld),
        },
    )
