"""Cross-engine verification: three independent evaluators must agree.

The library contains three ways to decide strict optimality of an FX
pattern, with no shared code on the hot path:

1. brute force — enumerate the representative query's buckets,
2. the convolution engine — FWHT over contribution histograms,
3. the rank criterion — GF(2) rank of stacked transform matrices.

:func:`verify_method` runs all applicable engines over every pattern of a
file system and reports agreement.  It exists for trust: any future change
that breaks one engine trips this immediately, and the CLI exposes it
(``python -m repro verify``) so users can certify their own configurations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.analysis.histograms import evaluator_for
from repro.core.fx import FXDistribution
from repro.core.linear import linear_pattern_is_optimal, linearize
from repro.distribution.base import SeparableMethod
from repro.errors import AnalysisError
from repro.query.patterns import all_patterns, representative_query
from repro.util.numbers import ceil_div

__all__ = ["VerificationReport", "verify_method"]

#: Brute force is skipped for patterns needing more bucket visits than this.
BRUTE_FORCE_LIMIT = 200_000


@dataclass
class VerificationReport:
    """Outcome of one cross-engine verification run."""

    method_description: str
    patterns_checked: int = 0
    brute_force_checked: int = 0
    rank_checked: int = 0
    disagreements: list[tuple[frozenset[int], str]] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        return not self.disagreements

    def summary(self) -> str:
        status = "CONSISTENT" if self.consistent else "DISAGREEMENT"
        return (
            f"{status}: {self.method_description} - "
            f"{self.patterns_checked} patterns via convolution, "
            f"{self.brute_force_checked} cross-checked by brute force, "
            f"{self.rank_checked} by the rank criterion"
        )


def verify_method(
    method: SeparableMethod,
    brute_force_limit: int = BRUTE_FORCE_LIMIT,
) -> VerificationReport:
    """Check every pattern of *method*'s file system across all engines.

    The convolution engine is the reference; brute force joins wherever the
    pattern is small enough, and the rank criterion joins for FX methods
    (which are always GF(2)-linear).  Disagreements are collected, not
    raised, so a report can show the full extent of any breakage.
    """
    fs = method.filesystem
    report = VerificationReport(method_description=method.describe())
    evaluator = evaluator_for(method)
    matrices = linearize(method) if isinstance(method, FXDistribution) else None

    for pattern in all_patterns(fs.n_fields):
        report.patterns_checked += 1
        qualified = math.prod(fs.field_sizes[i] for i in pattern)
        bound = ceil_div(qualified, fs.m)
        convolution_verdict = evaluator.is_strict_optimal(pattern)

        if qualified <= brute_force_limit:
            report.brute_force_checked += 1
            counts = [0] * fs.m
            query = representative_query(fs, pattern)
            for bucket in query.qualified_buckets():
                counts[method.device_of(bucket)] += 1
            brute_verdict = max(counts) <= bound
            if brute_verdict != convolution_verdict:
                report.disagreements.append(
                    (pattern, "brute force vs convolution")
                )

        if matrices is not None:
            report.rank_checked += 1
            rank_verdict = linear_pattern_is_optimal(matrices, pattern, fs.m)
            if rank_verdict != convolution_verdict:
                report.disagreements.append(
                    (pattern, "rank criterion vs convolution")
                )
    return report


def verify_or_raise(method: SeparableMethod) -> VerificationReport:
    """As :func:`verify_method`, but raising on any disagreement."""
    report = verify_method(method)
    if not report.consistent:
        raise AnalysisError(
            f"engines disagree on {len(report.disagreements)} patterns: "
            f"{report.disagreements[:3]}"
        )
    return report
