"""Entry point: ``python -m repro.experiments`` regenerates EXPERIMENTS.md."""

import sys

from repro.experiments.runner import main

if __name__ == "__main__":
    sys.exit(main())
