"""Tables 7-9: average largest response size, reproduced and compared.

``PAPER_RESPONSE_TABLES`` records the values printed in the paper (rows are
k = 2..6 unspecified fields).  Source caveat: the available scan of the
paper garbles a few cells — in Table 7 row k = 3 the GDM2/FX cells read
"16.0 / 18.9", which contradicts the paper's own prose ("FX distribution
gives smaller largest-response-size than the other methods" outside the
noted exceptions) and the arithmetic of the Optimal column; the values below
keep the printed digits, and EXPERIMENTS.md flags every cell where the
reproduction and the scan disagree.
"""

from __future__ import annotations

from repro.analysis.response import ResponseTable, largest_response_table
from repro.errors import ConfigurationError
from repro.experiments.filesystems import (
    TableSetup,
    table7_setup,
    table8_setup,
    table9_setup,
)

__all__ = ["PAPER_RESPONSE_TABLES", "reproduce_table", "table_setup"]

#: Published values; column order (Modulo, GDM1, GDM2, GDM3, FX, Optimal).
PAPER_RESPONSE_TABLES: dict[str, dict[str, tuple[float, ...]]] = {
    "table7": {
        "Modulo": (8.0, 48.0, 344.0, 2460.0, 18152.0),
        "GDM1": (3.3, 18.1, 130.5, 1026.3, 8196.0),
        "GDM2": (3.6, 16.0, 132.7, 1029.7, 8198.0),
        "GDM3": (3.7, 18.9, 132.5, 1031.7, 8202.0),
        "FX": (3.2, 18.9, 128.0, 1024.0, 8192.0),
        "Optimal": (2.0, 16.0, 128.0, 1024.0, 8192.0),
    },
    "table8": {
        "Modulo": (8.0, 48.0, 344.0, 2460.0, 18152.0),
        "GDM1": (2.1, 10.2, 68.3, 520.5, 4114.0),
        "GDM2": (2.2, 10.3, 68.1, 517.0, 4102.0),
        "GDM3": (2.4, 10.6, 67.5, 517.3, 4102.0),
        "FX": (2.4, 8.0, 64.0, 512.0, 4096.0),
        "Optimal": (1.0, 8.0, 64.0, 512.0, 4096.0),
    },
    "table9": {
        "Modulo": (9.6, 91.2, 911.2, 9076.0, 90404.0),
        "GDM1": (1.7, 10.0, 90.3, 909.5, 9176.0),
        "GDM2": (1.4, 3.2, 40.5, 397.3, 4144.0),
        "GDM3": (1.3, 5.5, 42.2, 408.67, 4313.0),
        "FX": (2.3, 5.6, 37.3, 384.0, 4096.0),
        "Optimal": (1.0, 5.1, 35.2, 384.0, 4096.0),
    },
}


def table_setup(table_id: str) -> TableSetup:
    """The scenario behind one response table ("table7".."table9")."""
    setups = {
        "table7": table7_setup,
        "table8": table8_setup,
        "table9": table9_setup,
    }
    try:
        return setups[table_id]()
    except KeyError:
        raise ConfigurationError(
            f"unknown response table {table_id!r}; known: {sorted(setups)}"
        ) from None


def reproduce_table(table_id: str, weighted: bool = False) -> ResponseTable:
    """Recompute one of Tables 7-9 exactly.

    *weighted* averages over all concrete queries; the default (unweighted,
    every pattern counted once) is what the paper actually computed — its
    Table 9 entries (e.g. Optimal 35.2 at k = 4, Modulo 9.6 at k = 2) match
    the unweighted average exactly and the weighted one not at all.  With
    the uniform field sizes of Tables 7-8 the flag is irrelevant.
    """
    setup = table_setup(table_id)
    return largest_response_table(
        setup.filesystem,
        setup.methods,
        ks=setup.ks,
        title=setup.title,
        weighted=weighted,
    )
