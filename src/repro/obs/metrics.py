"""Metrics registry: counters, gauges and fixed-boundary latency histograms.

One process-wide :class:`MetricsRegistry` (owned by the telemetry facade in
:mod:`repro.obs`) holds every metric the engine records:

* :class:`Counter` — a monotonically increasing tally,
* :class:`Gauge` — a last-write-wins sample,
* :class:`Histogram` — a fixed-boundary latency histogram with p50/p95/p99
  and exact min/max/sum summaries, and
* :class:`PerfCounter` — the engine's original hit/miss/throughput counter,
  folded into this registry so ``repro.perf.counters`` keeps its public API
  while ``obs report``/``obs export`` see one unified store.

All mutation happens under one registry lock, and :meth:`MetricsRegistry.
snapshot` copies everything atomically — reports render from a snapshot,
never from live objects (a live render can interleave with concurrent
updates and print a torn row).

**Dimensional (labeled) series.**  Every recorder takes an optional
``labels=`` mapping (e.g. ``{"tenant": "alpha"}``).  A labeled sample is
recorded twice under the one lock hold: once into the bare base series
(the roll-up existing flat-name callers — ``repro.perf.counters``, the
reports — keep reading) and once into a canonical per-label series keyed
``name{key=value,...}`` with label keys sorted.  :func:`labeled_name` and
:func:`parse_labeled_name` are the two sides of that key convention;
consumers such as :mod:`repro.obs.slo` split snapshot keys back into
``(base, labels)`` pairs to aggregate per tenant.
"""

from __future__ import annotations

import bisect
import threading
from collections.abc import Mapping
from dataclasses import dataclass, field

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "PerfCounter",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BOUNDARIES_MS",
    "labeled_name",
    "parse_labeled_name",
]

#: Default histogram boundaries, in milliseconds: sub-ms resolution at the
#: bottom (Python-level hot paths), decades up to a minute at the top.
DEFAULT_LATENCY_BOUNDARIES_MS: tuple[float, ...] = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
    30000.0, 60000.0,
)


def labeled_name(name: str, labels: Mapping[str, object] | None) -> str:
    """Canonical series key for *name* under *labels*.

    Label keys are sorted, so ``{"b": 1, "a": 2}`` and ``{"a": 2, "b": 1}``
    address the same series; an empty/None mapping returns the bare name.

    >>> labeled_name("gateway.ok", {"tenant": "alpha"})
    'gateway.ok{tenant=alpha}'
    """
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


def parse_labeled_name(series: str) -> tuple[str, dict[str, str]]:
    """Split a series key back into ``(base_name, labels)``.

    Bare names come back with an empty label dict, so callers can iterate
    a snapshot uniformly.

    >>> parse_labeled_name("gateway.ok{tenant=alpha}")
    ('gateway.ok', {'tenant': 'alpha'})
    """
    if not series.endswith("}"):
        return series, {}
    brace = series.find("{")
    if brace < 0:
        return series, {}
    labels: dict[str, str] = {}
    inner = series[brace + 1 : -1]
    if inner:
        for pair in inner.split(","):
            key, _, value = pair.partition("=")
            labels[key] = value
    return series[:brace], labels


@dataclass
class Counter:
    """A monotonically increasing tally."""

    name: str
    value: int = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount


@dataclass
class Gauge:
    """A last-write-wins sample (e.g. current queue depth)."""

    name: str
    value: float = 0.0
    #: False until the first ``set`` so reports can print "-" not "0".
    measured: bool = False

    def set(self, value: float) -> None:
        self.value = float(value)
        self.measured = True


class Histogram:
    """A fixed-boundary histogram of non-negative samples (latencies, sizes).

    ``boundaries`` are the inclusive upper edges of the buckets; samples
    above the last boundary land in an overflow bucket.  Quantiles are
    resolved to the upper edge of the bucket where the cumulative count
    crosses the rank (the conservative convention monitoring systems use);
    ``min``/``max``/``sum`` are exact.
    """

    def __init__(
        self,
        name: str,
        boundaries: tuple[float, ...] = DEFAULT_LATENCY_BOUNDARIES_MS,
    ):
        if list(boundaries) != sorted(boundaries) or not boundaries:
            raise ValueError(f"histogram boundaries must be sorted non-empty: {boundaries!r}")
        self.name = name
        self.boundaries = tuple(float(b) for b in boundaries)
        self.counts = [0] * (len(self.boundaries) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.boundaries, value)] += 1
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def quantile(self, q: float) -> float | None:
        """Upper-edge estimate of the q-quantile (None when empty)."""
        if self.count == 0:
            return None
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if index < len(self.boundaries):
                    return self.boundaries[index]
                return self.max  # overflow bucket: exact max is the edge
        return self.max

    def summary(self) -> dict:
        """JSON-ready summary: count, sum, min/max, p50/p95/p99."""
        return {
            "count": self.count,
            "sum": round(self.sum, 6),
            "min": None if self.min is None else round(self.min, 6),
            "max": None if self.max is None else round(self.max, 6),
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def copy(self) -> "Histogram":
        clone = Histogram(self.name, self.boundaries)
        clone.counts = list(self.counts)
        clone.count = self.count
        clone.sum = self.sum
        clone.min = self.min
        clone.max = self.max
        return clone


@dataclass
class PerfCounter:
    """Hit/miss and throughput tallies of one cache or fast path.

    ``hits``/``misses`` count cache lookups; ``events`` counts units of
    work done (e.g. buckets enumerated) over ``seconds`` of measured time,
    so ``rate`` is a throughput in events per second.

    ``hit_rate``/``rate`` keep their historical contract of returning 0.0
    when nothing was measured; the ``*_or_none`` accessors distinguish
    "unmeasured" (None) from "genuinely zero" (0.0) so reports can print
    ``-`` vs ``0`` correctly.
    """

    name: str
    hits: int = 0
    misses: int = 0
    events: int = 0
    seconds: float = 0.0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate_or_none(self) -> float | None:
        """Fraction of lookups served from cache; None when no lookups."""
        if self.lookups == 0:
            return None
        return self.hits / self.lookups

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache, in [0, 1]."""
        measured = self.hit_rate_or_none
        return 0.0 if measured is None else measured

    @property
    def rate_or_none(self) -> float | None:
        """Events per second; None when no time was measured."""
        if self.seconds <= 0.0:
            return None
        return self.events / self.seconds

    @property
    def rate(self) -> float:
        """Events per second over the measured time (0 when unmeasured)."""
        measured = self.rate_or_none
        return 0.0 if measured is None else measured

    @property
    def measured(self) -> bool:
        """True once the counter has recorded anything at all."""
        return bool(self.lookups or self.events or self.seconds > 0.0)


@dataclass
class MetricsSnapshot:
    """Atomic point-in-time copy of the whole registry."""

    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float | None] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)
    perf: dict[str, PerfCounter] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready form with deterministic (sorted) key order."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].summary() for k in sorted(self.histograms)
            },
            "perf": {
                k: {
                    "hits": c.hits,
                    "misses": c.misses,
                    "events": c.events,
                    "seconds": round(c.seconds, 6),
                }
                for k, c in sorted(self.perf.items())
            },
        }


class MetricsRegistry:
    """Thread-safe registry of every metric family, keyed by name."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._perf: dict[str, PerfCounter] = {}

    # ------------------------------------------------------------------
    # Accessors (create on first use)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            found = self._counters.get(name)
            if found is None:
                found = self._counters[name] = Counter(name)
            return found

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            found = self._gauges.get(name)
            if found is None:
                found = self._gauges[name] = Gauge(name)
            return found

    def histogram(
        self,
        name: str,
        boundaries: tuple[float, ...] = DEFAULT_LATENCY_BOUNDARIES_MS,
    ) -> Histogram:
        with self._lock:
            found = self._histograms.get(name)
            if found is None:
                found = self._histograms[name] = Histogram(name, boundaries)
            return found

    def perf_counter(self, name: str) -> PerfCounter:
        with self._lock:
            found = self._perf.get(name)
            if found is None:
                found = self._perf[name] = PerfCounter(name)
            return found

    # ------------------------------------------------------------------
    # Recording (one lock acquisition per sample)
    # ------------------------------------------------------------------
    def add(
        self,
        name: str,
        amount: int = 1,
        labels: Mapping[str, object] | None = None,
    ) -> None:
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter(name)
            counter.add(amount)
            if labels:
                series = labeled_name(name, labels)
                labeled = self._counters.get(series)
                if labeled is None:
                    labeled = self._counters[series] = Counter(series)
                labeled.add(amount)

    def set_gauge(
        self,
        name: str,
        value: float,
        labels: Mapping[str, object] | None = None,
    ) -> None:
        with self._lock:
            self._gauges.setdefault(name, Gauge(name)).set(value)
            if labels:
                series = labeled_name(name, labels)
                self._gauges.setdefault(series, Gauge(series)).set(value)

    def observe(
        self,
        name: str,
        value: float,
        labels: Mapping[str, object] | None = None,
    ) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(name)
            histogram.observe(value)
            if labels:
                series = labeled_name(name, labels)
                labeled = self._histograms.get(series)
                if labeled is None:
                    labeled = self._histograms[series] = Histogram(
                        series, histogram.boundaries
                    )
                labeled.observe(value)

    def record_perf_hit(self, name: str, count: int = 1) -> None:
        with self._lock:
            self._perf.setdefault(name, PerfCounter(name)).hits += count

    def record_perf_miss(self, name: str, count: int = 1) -> None:
        with self._lock:
            self._perf.setdefault(name, PerfCounter(name)).misses += count

    def record_perf_work(
        self, name: str, events: int, seconds: float = 0.0
    ) -> None:
        with self._lock:
            found = self._perf.setdefault(name, PerfCounter(name))
            found.events += events
            found.seconds += seconds

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        """Atomic copy of every metric (one lock hold for the whole read)."""
        with self._lock:
            return MetricsSnapshot(
                counters={name: c.value for name, c in self._counters.items()},
                gauges={
                    name: (g.value if g.measured else None)
                    for name, g in self._gauges.items()
                },
                histograms={
                    name: h.copy() for name, h in self._histograms.items()
                },
                perf={
                    name: PerfCounter(
                        name=c.name,
                        hits=c.hits,
                        misses=c.misses,
                        events=c.events,
                        seconds=c.seconds,
                    )
                    for name, c in self._perf.items()
                },
            )

    def reset(self) -> None:
        """Drop every metric (tests and repeated CLI runs)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._perf.clear()

    def reset_perf(self) -> None:
        """Drop only the folded perf counters (``perf.reset_counters``)."""
        with self._lock:
            self._perf.clear()


#: The process-wide registry.  It lives here — a leaf module — so both the
#: telemetry facade (:mod:`repro.obs`) and the legacy perf-counter API
#: (:mod:`repro.perf.counters`) can share it without an import cycle.
_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The registry the global telemetry instance observes into."""
    return _DEFAULT_REGISTRY
