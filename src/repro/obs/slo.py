"""Per-tenant SLO evaluation over the labeled metrics plane.

The gateway records every admission outcome and request latency twice:
once into the flat roll-up series (``gateway.ok``, ``gateway.latency_ms``)
and once into the per-tenant labeled series
(``gateway.ok{tenant=alpha}``, ``gateway.latency_ms{tenant=alpha}``) — see
:mod:`repro.obs.metrics`.  :class:`SloMonitor` consumes those labeled
series and evaluates two objectives per tenant against an
:class:`SloPolicy`:

* **availability** — ``ok / (ok + shed + rate_limited + timeout)``, i.e.
  every request the tenant offered that the gateway failed to serve
  (admission shed, rate limit, or service deadline) burns the
  availability error budget, and
* **latency** — the fraction of served requests completing within
  ``latency_threshold_ms``, read from the labeled latency *histogram
  buckets* (the threshold is snapped to a bucket boundary, conservative
  in the same upper-edge convention the histogram quantiles use).

Error budgets follow the standard form: with target ``t`` the allowed bad
fraction is ``1 - t``, the budget consumed is ``bad_fraction / (1 - t)``,
and the **burn rate** over a trailing window is the windowed bad fraction
divided by the allowed fraction (burn rate 1.0 = exactly spending the
budget; >1 = on course to exhaust it).  Windowed rates come from
timestamped snapshot samples the monitor retains on each
:meth:`SloMonitor.sample` call, so a live gateway serving the
``{"op": "obs"}`` wire operation accumulates history simply by being
asked.  All arithmetic is pure and the clock is injectable, so reports
are deterministic under :class:`~repro.obs.clock.ManualClock`.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.obs.metrics import (
    MetricsRegistry,
    MetricsSnapshot,
    default_registry,
    parse_labeled_name,
)

__all__ = ["SloPolicy", "TenantSlo", "SloReport", "SloMonitor"]

#: The counter base the availability numerator reads.
GOOD_OUTCOME = "ok"
#: Counter bases that burn the availability budget.
BAD_OUTCOMES = ("shed", "rate_limited", "timeout")
#: Prefix of the outcome counters the gateway records per tenant.
OUTCOME_PREFIX = "gateway."
#: The labeled latency histogram the latency objective reads.
LATENCY_SERIES = "gateway.latency_ms"


@dataclass(frozen=True)
class SloPolicy:
    """The objectives one gateway holds every tenant to."""

    #: Fraction of offered requests that must be served (not shed/timed out).
    availability_target: float = 0.999
    #: Latency objective threshold, milliseconds.
    latency_threshold_ms: float = 50.0
    #: Fraction of served requests that must complete within the threshold.
    latency_target: float = 0.95
    #: Trailing windows (seconds) burn rates are evaluated over.
    burn_windows_s: tuple[float, ...] = (60.0, 300.0, 3600.0)

    def __post_init__(self) -> None:
        for name, target in (
            ("availability_target", self.availability_target),
            ("latency_target", self.latency_target),
        ):
            if not 0.0 < target < 1.0:
                raise ConfigurationError(
                    f"{name} must be in (0, 1), got {target}"
                )
        if self.latency_threshold_ms <= 0:
            raise ConfigurationError(
                f"latency_threshold_ms must be positive, got "
                f"{self.latency_threshold_ms}"
            )
        if not self.burn_windows_s or any(w <= 0 for w in self.burn_windows_s):
            raise ConfigurationError(
                f"burn_windows_s must be positive, got {self.burn_windows_s}"
            )

    def to_dict(self) -> dict:
        return {
            "availability_target": self.availability_target,
            "latency_threshold_ms": self.latency_threshold_ms,
            "latency_target": self.latency_target,
            "burn_windows_s": list(self.burn_windows_s),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SloPolicy":
        return cls(
            availability_target=float(data["availability_target"]),
            latency_threshold_ms=float(data["latency_threshold_ms"]),
            latency_target=float(data["latency_target"]),
            burn_windows_s=tuple(
                float(w) for w in data["burn_windows_s"]
            ),
        )


@dataclass
class TenantSlo:
    """One tenant's evaluated objectives (JSON-ready via :meth:`to_dict`)."""

    tenant: str
    requests: int
    good: int
    bad: dict[str, int]
    availability: float | None
    availability_budget_remaining: float | None
    latency_count: int
    latency_within: int
    latency_compliance: float | None
    latency_budget_remaining: float | None
    #: ``{"60s": rate, ...}`` — availability burn per policy window
    #: (None when the window has no traffic yet).
    burn_rates: dict[str, float | None] = field(default_factory=dict)

    @property
    def bad_total(self) -> int:
        return sum(self.bad.values())

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "requests": self.requests,
            "good": self.good,
            "bad": {k: self.bad[k] for k in sorted(self.bad)},
            "availability": _round(self.availability),
            "availability_budget_remaining": _round(
                self.availability_budget_remaining
            ),
            "latency_count": self.latency_count,
            "latency_within": self.latency_within,
            "latency_compliance": _round(self.latency_compliance),
            "latency_budget_remaining": _round(self.latency_budget_remaining),
            "burn_rates": {
                k: _round(v) for k, v in sorted(self.burn_rates.items())
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TenantSlo":
        return cls(
            tenant=str(data["tenant"]),
            requests=int(data["requests"]),
            good=int(data["good"]),
            bad={str(k): int(v) for k, v in data["bad"].items()},
            availability=data["availability"],
            availability_budget_remaining=data[
                "availability_budget_remaining"
            ],
            latency_count=int(data["latency_count"]),
            latency_within=int(data["latency_within"]),
            latency_compliance=data["latency_compliance"],
            latency_budget_remaining=data["latency_budget_remaining"],
            burn_rates=dict(data.get("burn_rates", {})),
        )


@dataclass
class SloReport:
    """Every tenant's objectives under one policy."""

    policy: SloPolicy
    tenants: dict[str, TenantSlo]

    @property
    def healthy(self) -> bool:
        """True when no tenant has exhausted either error budget."""
        for slo in self.tenants.values():
            for remaining in (
                slo.availability_budget_remaining,
                slo.latency_budget_remaining,
            ):
                if remaining is not None and remaining < 0.0:
                    return False
        return True

    def to_dict(self) -> dict:
        return {
            "policy": self.policy.to_dict(),
            "tenants": {
                name: self.tenants[name].to_dict()
                for name in sorted(self.tenants)
            },
            "healthy": self.healthy,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SloReport":
        """Rebuild a report from :meth:`to_dict` output (e.g. the wire
        ``{"op": "obs"}`` snapshot), so remote reports render locally."""
        return cls(
            policy=SloPolicy.from_dict(data["policy"]),
            tenants={
                name: TenantSlo.from_dict(tenant)
                for name, tenant in data["tenants"].items()
            },
        )

    def render(self) -> str:
        """Human-readable table (the ``obs slo`` text output)."""
        lines = [
            f"SLO report — availability target "
            f"{self.policy.availability_target:g}, latency "
            f"<= {self.policy.latency_threshold_ms:g}ms at "
            f"{self.policy.latency_target:g}",
            f"{'tenant':<12} {'requests':>8} {'avail':>8} {'budget':>8} "
            f"{'lat-ok':>8} {'budget':>8}",
        ]
        for name in sorted(self.tenants):
            slo = self.tenants[name]
            lines.append(
                f"{name:<12} {slo.requests:>8} "
                f"{_cell(slo.availability):>8} "
                f"{_cell(slo.availability_budget_remaining):>8} "
                f"{_cell(slo.latency_compliance):>8} "
                f"{_cell(slo.latency_budget_remaining):>8}"
            )
        if not self.tenants:
            lines.append("(no tenant traffic recorded)")
        return "\n".join(lines)


def _round(value: float | None) -> float | None:
    return None if value is None else round(value, 6)


def _cell(value: float | None) -> str:
    return "-" if value is None else f"{value:.4f}"


def _budget_remaining(bad_fraction: float, target: float) -> float:
    return 1.0 - bad_fraction / (1.0 - target)


@dataclass
class _TenantCounts:
    """Raw per-tenant tallies extracted from one metrics snapshot."""

    good: int = 0
    bad: dict[str, int] = field(default_factory=dict)
    latency_count: int = 0
    latency_within: int = 0

    @property
    def total(self) -> int:
        return self.good + sum(self.bad.values())


def _extract(
    snapshot: MetricsSnapshot, threshold_ms: float
) -> dict[str, _TenantCounts]:
    """Per-tenant tallies from the labeled series of one snapshot."""
    tenants: dict[str, _TenantCounts] = {}

    def of(tenant: str) -> _TenantCounts:
        found = tenants.get(tenant)
        if found is None:
            found = tenants[tenant] = _TenantCounts()
        return found

    for series, value in snapshot.counters.items():
        base, labels = parse_labeled_name(series)
        tenant = labels.get("tenant")
        if tenant is None or not base.startswith(OUTCOME_PREFIX):
            continue
        outcome = base[len(OUTCOME_PREFIX) :]
        if outcome == GOOD_OUTCOME:
            of(tenant).good += value
        elif outcome in BAD_OUTCOMES:
            counts = of(tenant)
            counts.bad[outcome] = counts.bad.get(outcome, 0) + value
    for series, histogram in snapshot.histograms.items():
        base, labels = parse_labeled_name(series)
        tenant = labels.get("tenant")
        if tenant is None or base != LATENCY_SERIES:
            continue
        counts = of(tenant)
        counts.latency_count += histogram.count
        within = 0
        for index, edge in enumerate(histogram.boundaries):
            if edge > threshold_ms:
                break
            within += histogram.counts[index]
        counts.latency_within += within
    return tenants


class SloMonitor:
    """Evaluates :class:`SloPolicy` objectives from the live registry.

    The monitor is stateful only for burn-rate windows: each
    :meth:`sample` keeps a timestamped copy of the per-tenant tallies,
    and :meth:`report` differences the newest tally against the oldest
    one inside each policy window.
    """

    def __init__(
        self,
        policy: SloPolicy | None = None,
        registry: MetricsRegistry | None = None,
        clock=None,
        max_samples: int = 512,
    ):
        self.policy = policy or SloPolicy()
        self._registry = registry
        self._clock = clock
        self._lock = threading.Lock()
        self._samples: deque[tuple[float, dict[str, _TenantCounts]]] = deque(
            maxlen=max_samples
        )

    def _now(self) -> float:
        if self._clock is not None:
            return self._clock.now()
        from repro.obs.clock import now

        return now()

    def _snapshot(self) -> MetricsSnapshot:
        registry = self._registry if self._registry is not None else default_registry()
        return registry.snapshot()

    def sample(self) -> None:
        """Record one timestamped tally for burn-rate windows."""
        tallies = _extract(self._snapshot(), self.policy.latency_threshold_ms)
        with self._lock:
            self._samples.append((self._now(), tallies))

    def report(self) -> SloReport:
        """Evaluate every tenant now (also records a sample)."""
        policy = self.policy
        tallies = _extract(self._snapshot(), policy.latency_threshold_ms)
        now = self._now()
        with self._lock:
            self._samples.append((now, tallies))
            samples = list(self._samples)
        tenants: dict[str, TenantSlo] = {}
        for tenant, counts in tallies.items():
            total = counts.total
            bad_total = sum(counts.bad.values())
            availability = None if total == 0 else counts.good / total
            avail_budget = (
                None
                if availability is None
                else _budget_remaining(
                    bad_total / total, policy.availability_target
                )
            )
            compliance = (
                None
                if counts.latency_count == 0
                else counts.latency_within / counts.latency_count
            )
            latency_budget = (
                None
                if compliance is None
                else _budget_remaining(1.0 - compliance, policy.latency_target)
            )
            tenants[tenant] = TenantSlo(
                tenant=tenant,
                requests=total,
                good=counts.good,
                bad=dict(counts.bad),
                availability=availability,
                availability_budget_remaining=avail_budget,
                latency_count=counts.latency_count,
                latency_within=counts.latency_within,
                latency_compliance=compliance,
                latency_budget_remaining=latency_budget,
                burn_rates=self._burn_rates(tenant, counts, now, samples),
            )
        return SloReport(policy=policy, tenants=tenants)

    def _burn_rates(
        self,
        tenant: str,
        latest: _TenantCounts,
        now: float,
        samples: list[tuple[float, dict[str, _TenantCounts]]],
    ) -> dict[str, float | None]:
        """Windowed availability burn vs the allowed bad fraction."""
        allowed = 1.0 - self.policy.availability_target
        rates: dict[str, float | None] = {}
        for window in self.policy.burn_windows_s:
            label = f"{window:g}s"
            baseline: _TenantCounts | None = None
            for at, tallies in samples:
                if at >= now - window:
                    baseline = tallies.get(tenant, _TenantCounts())
                    break
            if baseline is None:
                rates[label] = None
                continue
            delta_total = latest.total - baseline.total
            delta_bad = sum(latest.bad.values()) - sum(baseline.bad.values())
            if delta_total <= 0:
                rates[label] = None
                continue
            rates[label] = (delta_bad / delta_total) / allowed
        return rates
