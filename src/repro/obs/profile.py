"""Query-mix profiler: per-tenant pattern frequencies from exported spans.

ROADMAP item 3 (workload-adaptive declustering) needs the *observed*
query-pattern distribution — how often each partial-match pattern (which
fields are specified) is actually asked, per tenant — so candidate
transforms can be scored against the real mix rather than the uniform
assumption the closed-form analysis uses.  This module derives exactly
that from the telemetry JSONL stream:

* every ``query.execute`` span contributes its one query,
* every ``query.batch`` span contributes each entry of its ``per_query``
  attribute, and
* each contribution is attributed to a tenant by walking the span's
  parent links (within its trace) up to the nearest ancestor carrying a
  ``tenant`` attribute — the ``gateway.request`` span stamped by the
  server when it resumed the caller's trace context.  Spans with no
  tenanted ancestor (in-process runs) land under the empty tenant ``""``.

Patterns are canonicalised as indicator strings over the field order —
``"1*1"`` means fields 0 and 2 specified, field 1 unspecified — parsed
from the query ``describe()`` form (``"<1, *, 3>"``) the spans carry.
Profiles hold only integer counts (no timestamps), so two identical runs
serialise byte-identically regardless of clock behaviour; canonical JSON
uses sorted keys and compact separators, matching the telemetry export
conventions.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from repro.envelope import SCHEMA_VERSION, check_version, versioned
from repro.errors import ReproError

__all__ = [
    "pattern_of",
    "pattern_of_query",
    "span_index",
    "resolve_tenant",
    "TenantProfile",
    "QueryMixProfile",
]


def _check_count(value: object, what: str) -> int:
    """Validate a profile count: a non-negative integer (bools rejected)."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ReproError(f"{what} must be an integer, got {value!r}")
    if value < 0:
        raise ReproError(f"{what} must be non-negative, got {value}")
    return value


def pattern_of(described: str) -> str:
    """Canonical pattern of a ``describe()`` string.

    >>> pattern_of("<1, *, 3>")
    '1*1'
    """
    inner = described.strip()
    if inner.startswith("<") and inner.endswith(">"):
        inner = inner[1:-1]
    if not inner:
        return ""
    return "".join(
        "*" if cell.strip() == "*" else "1" for cell in inner.split(",")
    )


def pattern_of_query(query) -> str:
    """Canonical pattern of a live :class:`PartialMatchQuery`."""
    return "".join("*" if value is None else "1" for value in query.values)


def span_index(records: Iterable[Mapping]) -> dict[tuple[int, int], Mapping]:
    """Index span records by ``(trace, id)`` for parent walks."""
    return {
        (record["trace"], record["id"]): record
        for record in records
        if record.get("type") == "span"
    }


def resolve_tenant(
    record: Mapping,
    index: Mapping[tuple[int, int], Mapping],
    default: str = "",
) -> str:
    """The ``tenant`` attribute of the nearest ancestor span (or *default*).

    The walk stays inside each record's trace; a missing parent (evicted
    from the ring, or remote to the export) or a malformed cycle ends the
    walk at *default*.  The cycle guard keys on ``(trace, id)``, not the
    span id alone: merged multi-run exports legitimately reuse span ids
    across traces, and an id-only guard would mistake such a reuse for a
    cycle and terminate the walk before reaching the tenanted ancestor.
    """
    seen: set[tuple[object, object]] = set()
    current: Mapping | None = record
    while current is not None:
        tenant = current.get("attrs", {}).get("tenant")
        if tenant is not None:
            return str(tenant)
        key = (current.get("trace"), current.get("id"))
        if key in seen:
            return default
        seen.add(key)
        parent = current.get("parent")
        if parent is None:
            return default
        current = index.get((current.get("trace"), parent))
    return default


@dataclass
class TenantProfile:
    """One tenant's observed pattern-frequency histogram."""

    tenant: str
    patterns: dict[str, int] = field(default_factory=dict)

    @property
    def queries(self) -> int:
        return sum(self.patterns.values())

    def record(self, pattern: str, count: int = 1) -> None:
        self.patterns[pattern] = self.patterns.get(pattern, 0) + count

    def frequencies(self) -> dict[str, float]:
        """Pattern → relative frequency (empty profile → empty dict)."""
        total = self.queries
        if total == 0:
            return {}
        return {
            pattern: self.patterns[pattern] / total
            for pattern in sorted(self.patterns)
        }

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "queries": self.queries,
            "patterns": {k: self.patterns[k] for k in sorted(self.patterns)},
        }


@dataclass
class QueryMixProfile:
    """Per-tenant pattern frequencies aggregated from exported spans."""

    tenants: dict[str, TenantProfile] = field(default_factory=dict)
    #: Number of query spans consumed (execute spans + batch entries).
    observed: int = 0

    def tenant(self, name: str) -> TenantProfile:
        found = self.tenants.get(name)
        if found is None:
            found = self.tenants[name] = TenantProfile(name)
        return found

    @classmethod
    def from_records(cls, records: Iterable[Mapping]) -> "QueryMixProfile":
        """Aggregate ``query.execute``/``query.batch`` spans into a profile."""
        records = [r for r in records if r.get("type") == "span"]
        index = span_index(records)
        profile = cls()
        for record in records:
            name = record.get("name")
            if name == "query.execute":
                described = record.get("attrs", {}).get("query")
                if not isinstance(described, str):
                    continue
                owner = resolve_tenant(record, index)
                profile.tenant(owner).record(pattern_of(described))
                profile.observed += 1
            elif name == "query.batch":
                per_query = record.get("attrs", {}).get("per_query")
                if not isinstance(per_query, list):
                    continue
                owner = resolve_tenant(record, index)
                for entry in per_query:
                    described = entry.get("query") if isinstance(entry, dict) else None
                    if not isinstance(described, str):
                        continue
                    profile.tenant(owner).record(pattern_of(described))
                    profile.observed += 1
        return profile

    # ------------------------------------------------------------------
    # Canonical serialisation (byte-identical run over run)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return versioned(
            {
                "type": "profile",
                "observed": self.observed,
                "tenants": {
                    name: self.tenants[name].to_dict()
                    for name in sorted(self.tenants)
                },
            }
        )

    def to_json(self) -> str:
        """One canonical JSON document: sorted keys, compact separators."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Mapping) -> "QueryMixProfile":
        """Parse and *validate* a profile document.

        Counts must be non-negative integers and the top-level
        ``observed`` total must equal the sum of all tenant pattern
        counts (``from_records`` maintains exactly that invariant) —
        anything else would silently corrupt :meth:`frequencies`, so it
        raises :class:`~repro.errors.ReproError` instead.
        """
        check_version(data, where="query-mix profile")
        if data.get("type") != "profile":
            raise ReproError(
                f"not a query-mix profile record: {data.get('type')!r}"
            )
        observed = _check_count(data.get("observed", 0), "observed total")
        profile = cls(observed=observed)
        recorded = 0
        for name, entry in data.get("tenants", {}).items():
            tenant = profile.tenant(name)
            for pattern, count in entry.get("patterns", {}).items():
                if not isinstance(pattern, str) or not all(
                    cell in "1*" for cell in pattern
                ):
                    raise ReproError(
                        f"tenant {name!r}: malformed pattern {pattern!r} "
                        "(expected an indicator string over '1'/'*')"
                    )
                count = _check_count(
                    count, f"tenant {name!r} pattern {pattern!r} count"
                )
                tenant.record(pattern, count)
                recorded += count
        if recorded != observed:
            raise ReproError(
                f"inconsistent query-mix profile: observed total "
                f"{observed} != {recorded} recorded pattern counts"
            )
        return profile

    @classmethod
    def from_json(cls, text: str) -> "QueryMixProfile":
        return cls.from_dict(json.loads(text))
