"""Unified telemetry: spans, metrics and structured run export.

One process-wide :class:`Telemetry` instance ties the subsystem together:

* :func:`trace_span` — the span/tracer API the hot paths use
  (:mod:`repro.obs.spans`),
* ``telemetry().metrics`` — counters, gauges and latency histograms
  (:mod:`repro.obs.metrics`); the legacy ``repro.perf.counters`` registry
  is folded into it behind its unchanged public API,
* ``telemetry().events`` — the structured :class:`EventLog` every finished
  span lands in, exportable as canonical JSONL
  (:mod:`repro.obs.events`), and
* :class:`ObservedOptimalityChecker` — replays a workload trace and
  verifies the paper's ``max_j |R(q) on device j| <= ceil(|R(q)|/M)``
  bound from telemetry alone (:mod:`repro.obs.checker`).

Determinism: :func:`configure` accepts an injectable clock, so tests and
golden files run under :class:`ManualClock` and ``obs export`` output is
byte-identical across runs.  ``python -m repro obs {report,export,tail,
check}`` is the CLI surface.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from repro.obs.checker import (
    ObservedCheckReport,
    ObservedOptimalityChecker,
    TraceAuditObservation,
    TraceAuditReport,
)
from repro.obs.clock import (
    Clock,
    ManualClock,
    MonotonicClock,
    process_clock,
    set_process_clock,
)
from repro.obs.events import (
    DEFAULT_CAPACITY,
    WELL_KNOWN_SPAN_EVENTS,
    EventLog,
    jsonl_line,
    validate_jsonl,
    validate_record,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDARIES_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PerfCounter,
    default_registry,
    labeled_name,
    parse_labeled_name,
)
from repro.obs.profile import QueryMixProfile, TenantProfile
from repro.obs.slo import SloMonitor, SloPolicy, SloReport, TenantSlo
from repro.obs.spans import Span, TraceContext, Tracer

__all__ = [
    "Clock",
    "ManualClock",
    "MonotonicClock",
    "process_clock",
    "set_process_clock",
    "Counter",
    "Gauge",
    "Histogram",
    "PerfCounter",
    "MetricsRegistry",
    "default_registry",
    "labeled_name",
    "parse_labeled_name",
    "DEFAULT_LATENCY_BOUNDARIES_MS",
    "EventLog",
    "DEFAULT_CAPACITY",
    "WELL_KNOWN_SPAN_EVENTS",
    "jsonl_line",
    "validate_record",
    "validate_jsonl",
    "Span",
    "TraceContext",
    "Tracer",
    "Telemetry",
    "telemetry",
    "configure",
    "reset_telemetry",
    "trace_span",
    "current_span",
    "QueryMixProfile",
    "TenantProfile",
    "SloMonitor",
    "SloPolicy",
    "SloReport",
    "TenantSlo",
    "ObservedCheckReport",
    "ObservedOptimalityChecker",
    "TraceAuditObservation",
    "TraceAuditReport",
]


class Telemetry:
    """The clock, event log, metrics registry and tracer of one process."""

    def __init__(
        self,
        clock: Clock | None = None,
        capacity: int = DEFAULT_CAPACITY,
        enabled: bool = True,
        metrics: MetricsRegistry | None = None,
    ):
        self.clock = clock or process_clock()
        self.events = EventLog(capacity)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = Tracer(self.clock, self.events, self.metrics, enabled)

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self.tracer.enabled = bool(value)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear events and metrics, restart span ids and the time origin."""
        self.events.clear()
        self.metrics.reset()
        self.tracer.reset()

    def set_clock(self, clock: Clock) -> None:
        """Swap the clock (e.g. for a deterministic run) and re-anchor."""
        self.clock = clock
        self.tracer.clock = clock
        self.tracer.reset()

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export_records(self) -> list[dict]:
        """Every event record plus a trailing metrics snapshot record."""
        from repro.envelope import versioned

        records = self.events.records()
        snapshot = versioned({"type": "metrics"})
        snapshot.update(self.metrics.snapshot().to_dict())
        records.append(snapshot)
        return records

    def export_jsonl(self) -> str:
        """The whole run as canonical JSON Lines (spans then metrics)."""
        return "".join(jsonl_line(record) for record in self.export_records())


_GLOBAL_LOCK = threading.Lock()
#: The global instance observes into the shared default registry, the same
#: one ``repro.perf.counters`` records through — one unified store.
_TELEMETRY = Telemetry(metrics=default_registry())


def telemetry() -> Telemetry:
    """The process-wide telemetry instance."""
    return _TELEMETRY


def configure(
    enabled: bool | None = None,
    clock: Clock | None = None,
    reset: bool = False,
) -> Telemetry:
    """Adjust the global telemetry in place (references stay valid).

    The instance itself is never replaced: the perf-counter facade and any
    code holding ``telemetry().metrics`` keep observing the same registry.
    """
    with _GLOBAL_LOCK:
        if clock is not None:
            # Engine timing reads (repro.obs.clock.now) follow along, so a
            # deterministic clock makes the perf-counter seconds — and
            # therefore the export — deterministic too.
            set_process_clock(clock)
            _TELEMETRY.set_clock(clock)
        if enabled is not None:
            _TELEMETRY.enabled = enabled
        if reset:
            _TELEMETRY.reset()
    return _TELEMETRY


def reset_telemetry() -> None:
    """Clear the global event log and metrics (tests, repeated CLI runs)."""
    _TELEMETRY.reset()


@contextmanager
def trace_span(name: str, **attrs):
    """Open a span on the global tracer (the hot-path entry point)."""
    with _TELEMETRY.tracer.span(name, **attrs) as span:
        yield span


def current_span():
    """The innermost live span of the calling context, if any."""
    return _TELEMETRY.tracer.current()
