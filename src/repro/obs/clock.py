"""Injectable clocks for the telemetry layer.

Every timestamp the observability subsystem records comes from one clock
object, so tests and golden files can swap the wall clock for a
:class:`ManualClock` and get byte-identical output across runs.  Clocks
speak seconds (like :func:`time.perf_counter`); the telemetry layer
converts to milliseconds at the edges where humans read the numbers.
"""

from __future__ import annotations

import time

__all__ = [
    "Clock",
    "MonotonicClock",
    "ManualClock",
    "process_clock",
    "set_process_clock",
    "now",
]


class Clock:
    """Interface: anything with a ``now() -> float`` (seconds)."""

    def now(self) -> float:  # pragma: no cover - interface
        raise NotImplementedError


class MonotonicClock(Clock):
    """The real monotonic clock (default in production paths)."""

    def now(self) -> float:
        return time.perf_counter()


class ManualClock(Clock):
    """A deterministic clock that advances a fixed *step* per reading.

    Two telemetry runs that make the same sequence of clock reads therefore
    produce identical timestamps — the property the golden-file and
    byte-identical-export tests are built on.

    >>> clock = ManualClock(step=0.5)
    >>> clock.now(), clock.now(), clock.now()
    (0.0, 0.5, 1.0)
    """

    def __init__(self, start: float = 0.0, step: float = 0.001):
        self._next = float(start)
        self.step = float(step)

    def now(self) -> float:
        current = self._next
        self._next += self.step
        return current

    def advance(self, seconds: float) -> None:
        """Jump the clock forward without consuming a reading."""
        self._next += float(seconds)


#: The clock every telemetry timestamp and engine timing read comes from.
#: Swapped by ``repro.obs.configure(clock=...)``; engine code that needs a
#: duration calls :func:`now` instead of ``time.perf_counter`` so that a
#: deterministic run stays deterministic down to the perf-counter seconds.
_PROCESS_CLOCK: Clock = MonotonicClock()


def process_clock() -> Clock:
    """The current process-wide clock."""
    return _PROCESS_CLOCK


def set_process_clock(clock: Clock) -> Clock:
    """Install *clock* as the process-wide clock; returns it."""
    global _PROCESS_CLOCK
    _PROCESS_CLOCK = clock
    return clock


def now() -> float:
    """One reading of the process-wide clock (seconds)."""
    return _PROCESS_CLOCK.now()
