"""Span tracing: nested, timed units of work with structured attributes.

``trace_span`` (re-exported by :mod:`repro.obs`) is the one instrumentation
primitive the engine hot paths use::

    with trace_span("query.execute", qualified=64) as span:
        ...
        span.add_event("device", device=3, buckets=8)
        span.set_attr("largest_response", 8)

Spans nest through a :class:`contextvars.ContextVar`, so concurrent threads
(the parallel sweeps) each see their own ancestry.  A finished span is
appended to the telemetry :class:`~repro.obs.events.EventLog` as one
structured record and its duration is observed into the
``span.<name>.ms`` latency histogram of the metrics registry.

Every span belongs to a **trace**: a 64-bit id shared by a whole request
tree, even when that tree crosses a process boundary.  A root span (no
local parent, no remote context) allocates a fresh trace id from a seeded
splitmix64 stream — deterministic under :class:`~repro.obs.clock.ManualClock`
runs because :meth:`Tracer.reset` restarts the stream.  A server resuming a
request that arrived over the wire activates the caller's
:class:`TraceContext` (:meth:`Tracer.activate`); the next span opened in
that context adopts the remote trace id, parents itself under the remote
span, and is marked ``remote`` in its exported record.

When tracing is disabled the context manager yields a shared no-op span and
touches neither the log nor the clock, keeping the disabled cost to one
attribute check per span.
"""

from __future__ import annotations

import contextvars
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.envelope import SCHEMA_VERSION
from repro.obs.clock import Clock
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.util.numbers import mix64

__all__ = ["Span", "TraceContext", "Tracer", "NULL_SPAN"]

#: Salt separating the trace-id splitmix64 stream from other seeded streams.
_TRACE_SALT = 0xA24BAED4963EE407


@dataclass(frozen=True)
class TraceContext:
    """Portable identity of a trace position: ``(trace_id, span_id)``.

    This is what crosses process boundaries: the client stamps it into the
    wire frame, the server activates it so the resumed span parents under
    the caller.  *span_id* is ``None`` when the caller allocated a trace id
    without opening a span of its own (the thin-client case) — the resumed
    span then becomes the root of the remote trace.  *tenant* is carried as
    a convenience for attribution; it never affects span identity.
    """

    trace_id: int
    span_id: int | None = None
    tenant: str | None = None


@dataclass
class Span:
    """One timed unit of work, possibly nested under a parent span."""

    name: str
    span_id: int
    parent_id: int | None
    start: float
    attrs: dict = field(default_factory=dict)
    events: list[dict] = field(default_factory=list)
    end: float | None = None
    #: 64-bit id of the trace this span belongs to.
    trace_id: int = 0
    #: True when the parent context was adopted via ``Tracer.activate``
    #: rather than lexical nesting — i.e. the link crossed a propagation
    #: boundary (a wire frame, or a thread-pool handoff).
    remote: bool = False

    def set_attr(self, key: str, value) -> None:
        self.attrs[key] = value

    def add_event(self, name: str, **attrs) -> None:
        """Attach a point-in-time event (retry, failover, ...) to the span."""
        self.events.append({"name": name, "attrs": attrs})

    def to_context(self) -> TraceContext:
        """This span's position as a portable :class:`TraceContext`."""
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    @property
    def duration_ms(self) -> float:
        if self.end is None:
            return 0.0
        return (self.end - self.start) * 1000.0

    def to_record(self, origin: float) -> dict:
        """The span as a JSONL-schema record, times relative to *origin*."""
        start_ms = (self.start - origin) * 1000.0
        end_ms = round(start_ms + self.duration_ms, 6)
        record = {
            "v": SCHEMA_VERSION,
            "type": "span",
            "id": self.span_id,
            "trace": self.trace_id,
            "parent": self.parent_id,
            "name": self.name,
            "start_ms": round(start_ms, 6),
            "end_ms": end_ms,
            "duration_ms": round(self.duration_ms, 6),
            "attrs": self.attrs,
            "events": [
                {
                    "name": event["name"],
                    # Default to the span *end*, matching the stamp the
                    # tracer applies at close (events carry no clock reads
                    # of their own).
                    "at_ms": event.get("at_ms", end_ms),
                    "attrs": event["attrs"],
                }
                for event in self.events
            ],
        }
        if self.remote:
            record["remote"] = True
        return record


class _NullSpan:
    """Shared no-op span yielded while tracing is disabled."""

    __slots__ = ()

    def set_attr(self, key: str, value) -> None:
        pass

    def add_event(self, name: str, **attrs) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Creates spans, tracks nesting, and publishes finished spans.

    *origin* (the clock reading at construction/reset) anchors every
    exported timestamp, so a deterministic clock yields identical records
    run over run regardless of process start time.

    *trace_seed* seeds the 64-bit trace-id stream; :meth:`reset` restarts
    it, so a seeded deterministic run exports byte-identical trace ids.
    """

    def __init__(
        self,
        clock: Clock,
        event_log: EventLog,
        metrics: MetricsRegistry,
        enabled: bool = True,
        trace_seed: int = 0,
    ):
        self.clock = clock
        self.event_log = event_log
        self.metrics = metrics
        self.enabled = enabled
        self.trace_seed = trace_seed
        self._lock = threading.Lock()
        self._next_id = 1
        self._next_trace = 1
        self._current: contextvars.ContextVar[Span | None] = (
            contextvars.ContextVar("repro_obs_span", default=None)
        )
        self._remote: contextvars.ContextVar[TraceContext | None] = (
            contextvars.ContextVar("repro_obs_remote", default=None)
        )
        self.origin = clock.now()

    def reset(self) -> None:
        """Restart span/trace ids and the time origin (fresh run)."""
        with self._lock:
            self._next_id = 1
            self._next_trace = 1
        self.origin = self.clock.now()

    def current(self) -> Span | None:
        """The innermost live span of this thread/context, if any."""
        return self._current.get()

    def allocate_trace_id(self) -> int:
        """A fresh 64-bit trace id from the seeded splitmix64 stream."""
        with self._lock:
            nth = self._next_trace
            self._next_trace += 1
        return mix64(self.trace_seed ^ (nth * _TRACE_SALT))

    def current_context(self) -> TraceContext | None:
        """The trace position new work started *here* should inherit.

        The innermost live span wins; with no live span, an activated
        remote context (if any) is returned, so pool threads that re-enter
        a captured context propagate it onward.
        """
        span = self._current.get()
        if span is not None:
            return span.to_context()
        return self._remote.get()

    @contextmanager
    def activate(self, context: TraceContext | None):
        """Resume *context* (a remote caller's trace position) here.

        The next span opened under this context manager — with no local
        parent span — adopts the remote trace id, parents itself under the
        remote span id, and is marked ``remote`` in its record.  ``None``
        deactivates (useful for symmetric call sites).
        """
        token = self._remote.set(context)
        try:
            yield context
        finally:
            self._remote.reset(token)

    @contextmanager
    def span(self, name: str, **attrs):
        if not self.enabled:
            yield NULL_SPAN
            return
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        parent = self._current.get()
        if parent is not None:
            trace_id = parent.trace_id
            parent_id = parent.span_id
            remote = False
        else:
            context = self._remote.get()
            if context is not None:
                trace_id = context.trace_id
                parent_id = context.span_id
                remote = True
            else:
                trace_id = self.allocate_trace_id()
                parent_id = None
                remote = False
        span = Span(
            name=name,
            span_id=span_id,
            parent_id=parent_id,
            start=self.clock.now(),
            attrs=dict(attrs),
            trace_id=trace_id,
            remote=remote,
        )
        token = self._current.set(span)
        try:
            yield span
        finally:
            self._current.reset(token)
            span.end = self.clock.now()
            # Stamp span events with the span's end time (events carry no
            # clock reads of their own, keeping instrumentation cheap and
            # deterministic-clock exports stable).
            end_ms = round((span.end - self.origin) * 1000.0, 6)
            for event in span.events:
                event.setdefault("at_ms", end_ms)
            self.event_log.append(span.to_record(self.origin))
            self.metrics.observe(f"span.{name}.ms", span.duration_ms)
