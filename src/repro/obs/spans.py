"""Span tracing: nested, timed units of work with structured attributes.

``trace_span`` (re-exported by :mod:`repro.obs`) is the one instrumentation
primitive the engine hot paths use::

    with trace_span("query.execute", qualified=64) as span:
        ...
        span.add_event("device", device=3, buckets=8)
        span.set_attr("largest_response", 8)

Spans nest through a :class:`contextvars.ContextVar`, so concurrent threads
(the parallel sweeps) each see their own ancestry.  A finished span is
appended to the telemetry :class:`~repro.obs.events.EventLog` as one
structured record and its duration is observed into the
``span.<name>.ms`` latency histogram of the metrics registry.

When tracing is disabled the context manager yields a shared no-op span and
touches neither the log nor the clock, keeping the disabled cost to one
attribute check per span.
"""

from __future__ import annotations

import contextvars
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.envelope import SCHEMA_VERSION
from repro.obs.clock import Clock
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry

__all__ = ["Span", "Tracer", "NULL_SPAN"]


@dataclass
class Span:
    """One timed unit of work, possibly nested under a parent span."""

    name: str
    span_id: int
    parent_id: int | None
    start: float
    attrs: dict = field(default_factory=dict)
    events: list[dict] = field(default_factory=list)
    end: float | None = None

    def set_attr(self, key: str, value) -> None:
        self.attrs[key] = value

    def add_event(self, name: str, **attrs) -> None:
        """Attach a point-in-time event (retry, failover, ...) to the span."""
        self.events.append({"name": name, "attrs": attrs})

    @property
    def duration_ms(self) -> float:
        if self.end is None:
            return 0.0
        return (self.end - self.start) * 1000.0

    def to_record(self, origin: float) -> dict:
        """The span as a JSONL-schema record, times relative to *origin*."""
        start_ms = (self.start - origin) * 1000.0
        return {
            "v": SCHEMA_VERSION,
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start_ms": round(start_ms, 6),
            "end_ms": round(start_ms + self.duration_ms, 6),
            "duration_ms": round(self.duration_ms, 6),
            "attrs": self.attrs,
            "events": [
                {
                    "name": event["name"],
                    "at_ms": event.get("at_ms", round(start_ms, 6)),
                    "attrs": event["attrs"],
                }
                for event in self.events
            ],
        }


class _NullSpan:
    """Shared no-op span yielded while tracing is disabled."""

    __slots__ = ()

    def set_attr(self, key: str, value) -> None:
        pass

    def add_event(self, name: str, **attrs) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Creates spans, tracks nesting, and publishes finished spans.

    *origin* (the clock reading at construction/reset) anchors every
    exported timestamp, so a deterministic clock yields identical records
    run over run regardless of process start time.
    """

    def __init__(
        self,
        clock: Clock,
        event_log: EventLog,
        metrics: MetricsRegistry,
        enabled: bool = True,
    ):
        self.clock = clock
        self.event_log = event_log
        self.metrics = metrics
        self.enabled = enabled
        self._lock = threading.Lock()
        self._next_id = 1
        self._current: contextvars.ContextVar[Span | None] = (
            contextvars.ContextVar("repro_obs_span", default=None)
        )
        self.origin = clock.now()

    def reset(self) -> None:
        """Restart span ids and the time origin (fresh deterministic run)."""
        with self._lock:
            self._next_id = 1
        self.origin = self.clock.now()

    def current(self) -> Span | None:
        """The innermost live span of this thread/context, if any."""
        return self._current.get()

    @contextmanager
    def span(self, name: str, **attrs):
        if not self.enabled:
            yield NULL_SPAN
            return
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        parent = self._current.get()
        span = Span(
            name=name,
            span_id=span_id,
            parent_id=None if parent is None else parent.span_id,
            start=self.clock.now(),
            attrs=dict(attrs),
        )
        token = self._current.set(span)
        try:
            yield span
        finally:
            self._current.reset(token)
            span.end = self.clock.now()
            # Stamp span events with the span's end time (events carry no
            # clock reads of their own, keeping instrumentation cheap and
            # deterministic-clock exports stable).
            end_ms = round((span.end - self.origin) * 1000.0, 6)
            for event in span.events:
                event.setdefault("at_ms", end_ms)
            self.event_log.append(span.to_record(self.origin))
            self.metrics.observe(f"span.{name}.ms", span.duration_ms)
