"""Verify the paper's optimality bound from observed executions.

``core.optimality`` answers "is this method strict optimal?" from closed
form; :class:`ObservedOptimalityChecker` answers the same question the way
a production evaluation would — replay a workload trace through the real
executor, then read *only the telemetry* (the ``query.execute`` spans'
``buckets_per_device`` attributes) to find the per-device qualified-bucket
maxima, the paper's ``max_j |R(q) on device j|``.  Each observation is then
cross-checked against the closed-form :meth:`response_histogram`, so a
disagreement pinpoints an instrumentation bug and a violation pinpoints a
genuinely non-optimal query.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AnalysisError
from repro.util.numbers import ceil_div

__all__ = ["ObservedQuery", "ObservedCheckReport", "ObservedOptimalityChecker"]


@dataclass(frozen=True)
class ObservedQuery:
    """One query's telemetry-side observation next to its closed form."""

    query: str
    qualified: int
    bound: int
    observed_per_device: tuple[int, ...]
    closed_form_per_device: tuple[int, ...]

    @property
    def observed_max(self) -> int:
        return max(self.observed_per_device, default=0)

    @property
    def closed_form_max(self) -> int:
        return max(self.closed_form_per_device, default=0)

    @property
    def strict_optimal(self) -> bool:
        return self.observed_max <= self.bound

    @property
    def agrees(self) -> bool:
        """Telemetry and closed form report identical device loads."""
        return sorted(self.observed_per_device) == sorted(
            self.closed_form_per_device
        )


@dataclass
class ObservedCheckReport:
    """Outcome of one trace replay, built from telemetry alone."""

    method_name: str
    observations: list[ObservedQuery] = field(default_factory=list)

    @property
    def queries(self) -> int:
        return len(self.observations)

    @property
    def violations(self) -> list[ObservedQuery]:
        """Queries whose observed maximum exceeded ``ceil(|R(q)|/M)``."""
        return [o for o in self.observations if not o.strict_optimal]

    @property
    def disagreements(self) -> list[ObservedQuery]:
        """Observations the closed-form engine does not confirm."""
        return [o for o in self.observations if not o.agrees]

    @property
    def all_strict_optimal(self) -> bool:
        return not self.violations

    @property
    def consistent(self) -> bool:
        return not self.disagreements

    def summary(self) -> str:
        return (
            f"{self.method_name}: {self.queries} queries replayed, "
            f"{self.queries - len(self.violations)} strict optimal from "
            f"telemetry, {len(self.disagreements)} closed-form disagreements"
        )

    def to_dict(self) -> dict:
        return {
            "method": self.method_name,
            "queries": self.queries,
            "violations": [
                {
                    "query": o.query,
                    "observed_max": o.observed_max,
                    "bound": o.bound,
                }
                for o in self.violations
            ],
            "disagreements": [o.query for o in self.disagreements],
            "all_strict_optimal": self.all_strict_optimal,
            "consistent": self.consistent,
        }


class ObservedOptimalityChecker:
    """Replays queries and judges optimality from the emitted spans.

    >>> from repro.core.fx import FXDistribution
    >>> from repro.hashing.fields import FileSystem
    >>> from repro.query.partial_match import PartialMatchQuery
    >>> fs = FileSystem.of(2, 2, 2, m=8)
    >>> checker = ObservedOptimalityChecker(FXDistribution(fs))
    >>> report = checker.replay([PartialMatchQuery.from_dict(fs, {0: 1})])
    >>> report.all_strict_optimal and report.consistent
    True
    """

    def __init__(self, method, telemetry=None):
        if telemetry is None:
            from repro.obs import telemetry as global_telemetry

            telemetry = global_telemetry()
        self.method = method
        self.telemetry = telemetry

    def replay(self, queries, batched: bool = False) -> ObservedCheckReport:
        """Execute *queries* against an (empty) partitioned file and check.

        Record contents are irrelevant to the bound — qualified bucket
        counts come from inverse mapping, not from stored data — so the
        replay file needs no inserts.

        With ``batched=True`` the whole trace runs through the array
        engine as one batch and the audit reads the ``query.batch`` span's
        ``per_query`` attribute instead of ``query.execute`` spans — so
        the bound is verified against what the *batched* read path
        actually did, not just the serial one.
        """
        from repro.storage.parallel_file import PartitionedFile

        if not self.telemetry.enabled:
            raise AnalysisError(
                "telemetry is disabled; the observed checker reads spans "
                "(configure(enabled=True) first)"
            )
        queries = list(queries)
        if len(queries) > self.telemetry.events.capacity:
            raise AnalysisError(
                f"trace of {len(queries)} queries cannot fit the event log "
                f"(capacity {self.telemetry.events.capacity}); raise it"
            )
        appended_before = self.telemetry.events.appended
        if batched:
            from repro.engine.batch import BatchEngine

            BatchEngine(PartitionedFile(self.method)).execute(queries)
        else:
            from repro.storage.executor import QueryExecutor

            executor = QueryExecutor(PartitionedFile(self.method))
            for query in queries:
                executor.execute(query)
        new_count = self.telemetry.events.appended - appended_before
        new_records = (
            self.telemetry.events.records()[-new_count:] if new_count else []
        )
        if batched:
            per_query = self._batch_observations(new_records, len(queries))
        else:
            observed_spans = [
                record
                for record in new_records
                if record["type"] == "span"
                and record["name"] == "query.execute"
            ]
            if len(observed_spans) != len(queries):
                raise AnalysisError(
                    f"expected {len(queries)} query.execute spans, telemetry "
                    f"retained {len(observed_spans)}; event log too small?"
                )
            per_query = [span["attrs"] for span in observed_spans]

        m = self.method.filesystem.m
        report = ObservedCheckReport(
            method_name=self.method.name or type(self.method).__name__
        )
        for query, attrs in zip(queries, per_query):
            observed = tuple(attrs["buckets_per_device"])
            qualified = attrs["qualified"]
            report.observations.append(
                ObservedQuery(
                    query=attrs["query"],
                    qualified=qualified,
                    bound=ceil_div(qualified, m),
                    observed_per_device=observed,
                    closed_form_per_device=tuple(
                        self.method.response_histogram(query)
                    ),
                )
            )
        return report

    @staticmethod
    def _batch_observations(new_records, expected: int) -> list[dict]:
        """Per-query attrs from the replay's single ``query.batch`` span."""
        batch_spans = [
            record
            for record in new_records
            if record["type"] == "span" and record["name"] == "query.batch"
        ]
        if len(batch_spans) != 1:
            raise AnalysisError(
                f"expected one query.batch span, telemetry retained "
                f"{len(batch_spans)}; event log too small?"
            )
        per_query = batch_spans[0]["attrs"]["per_query"]
        if len(per_query) != expected:
            raise AnalysisError(
                f"query.batch span reports {len(per_query)} queries, "
                f"{expected} were replayed"
            )
        return per_query
