"""Verify the paper's optimality bound from observed executions.

``core.optimality`` answers "is this method strict optimal?" from closed
form; :class:`ObservedOptimalityChecker` answers the same question the way
a production evaluation would — replay a workload trace through the real
executor, then read *only the telemetry* (the ``query.execute`` spans'
``buckets_per_device`` attributes) to find the per-device qualified-bucket
maxima, the paper's ``max_j |R(q) on device j|``.  Each observation is then
cross-checked against the closed-form :meth:`response_histogram`, so a
disagreement pinpoints an instrumentation bug and a violation pinpoints a
genuinely non-optimal query.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AnalysisError
from repro.util.numbers import ceil_div

__all__ = [
    "ObservedQuery",
    "ObservedCheckReport",
    "TraceAuditObservation",
    "TraceAuditReport",
    "ObservedOptimalityChecker",
]


@dataclass(frozen=True)
class ObservedQuery:
    """One query's telemetry-side observation next to its closed form."""

    query: str
    qualified: int
    bound: int
    observed_per_device: tuple[int, ...]
    closed_form_per_device: tuple[int, ...]

    @property
    def observed_max(self) -> int:
        return max(self.observed_per_device, default=0)

    @property
    def closed_form_max(self) -> int:
        return max(self.closed_form_per_device, default=0)

    @property
    def strict_optimal(self) -> bool:
        return self.observed_max <= self.bound

    @property
    def agrees(self) -> bool:
        """Telemetry and closed form report identical device loads."""
        return sorted(self.observed_per_device) == sorted(
            self.closed_form_per_device
        )


@dataclass
class ObservedCheckReport:
    """Outcome of one trace replay, built from telemetry alone."""

    method_name: str
    observations: list[ObservedQuery] = field(default_factory=list)

    @property
    def queries(self) -> int:
        return len(self.observations)

    @property
    def violations(self) -> list[ObservedQuery]:
        """Queries whose observed maximum exceeded ``ceil(|R(q)|/M)``."""
        return [o for o in self.observations if not o.strict_optimal]

    @property
    def disagreements(self) -> list[ObservedQuery]:
        """Observations the closed-form engine does not confirm."""
        return [o for o in self.observations if not o.agrees]

    @property
    def all_strict_optimal(self) -> bool:
        return not self.violations

    @property
    def consistent(self) -> bool:
        return not self.disagreements

    def summary(self) -> str:
        return (
            f"{self.method_name}: {self.queries} queries replayed, "
            f"{self.queries - len(self.violations)} strict optimal from "
            f"telemetry, {len(self.disagreements)} closed-form disagreements"
        )

    def to_dict(self) -> dict:
        return {
            "method": self.method_name,
            "queries": self.queries,
            "violations": [
                {
                    "query": o.query,
                    "observed_max": o.observed_max,
                    "bound": o.bound,
                }
                for o in self.violations
            ],
            "disagreements": [o.query for o in self.disagreements],
            "all_strict_optimal": self.all_strict_optimal,
            "consistent": self.consistent,
        }


@dataclass(frozen=True)
class TraceAuditObservation:
    """One query observation from a propagated (possibly remote) trace."""

    tenant: str
    trace: int
    span: int
    query: str
    qualified: int
    observed_per_device: tuple[int, ...]

    @property
    def devices(self) -> int:
        return len(self.observed_per_device)

    @property
    def bound(self) -> int:
        return ceil_div(self.qualified, max(1, self.devices))

    @property
    def observed_max(self) -> int:
        return max(self.observed_per_device, default=0)

    @property
    def strict_optimal(self) -> bool:
        return self.observed_max <= self.bound


@dataclass
class TraceAuditReport:
    """Bound audit of an exported trace, attributed per tenant.

    Unlike :class:`ObservedCheckReport` (which replays a known query list
    through a known method), this report is built from records alone — it
    audits whatever ``query.execute`` spans and ``query.batch``
    ``per_query`` entries the export carries, resolving each span's owner
    by walking its trace to the tenanted ``gateway.request`` ancestor.
    Violations therefore name the *tenant* responsible, not a bare span
    id; spans with no tenanted ancestor land under ``""``.
    """

    observations: list[TraceAuditObservation] = field(default_factory=list)

    @property
    def queries(self) -> int:
        return len(self.observations)

    @property
    def violations(self) -> list[TraceAuditObservation]:
        return [o for o in self.observations if not o.strict_optimal]

    @property
    def all_strict_optimal(self) -> bool:
        return not self.violations

    @property
    def tenants(self) -> list[str]:
        return sorted({o.tenant for o in self.observations})

    def violations_by_tenant(self) -> dict[str, list[TraceAuditObservation]]:
        grouped: dict[str, list[TraceAuditObservation]] = {}
        for observation in self.violations:
            grouped.setdefault(observation.tenant, []).append(observation)
        return {tenant: grouped[tenant] for tenant in sorted(grouped)}

    def summary(self) -> str:
        return (
            f"trace audit: {self.queries} query observations across "
            f"{len(self.tenants)} tenants, {len(self.violations)} bound "
            f"violations"
        )

    def to_dict(self) -> dict:
        return {
            "queries": self.queries,
            "tenants": self.tenants,
            "violations": [
                {
                    "tenant": o.tenant,
                    "query": o.query,
                    "observed_max": o.observed_max,
                    "bound": o.bound,
                    "trace": o.trace,
                }
                for o in self.violations
            ],
            "all_strict_optimal": self.all_strict_optimal,
        }


class ObservedOptimalityChecker:
    """Replays queries and judges optimality from the emitted spans.

    >>> from repro.core.fx import FXDistribution
    >>> from repro.hashing.fields import FileSystem
    >>> from repro.query.partial_match import PartialMatchQuery
    >>> fs = FileSystem.of(2, 2, 2, m=8)
    >>> checker = ObservedOptimalityChecker(FXDistribution(fs))
    >>> report = checker.replay([PartialMatchQuery.from_dict(fs, {0: 1})])
    >>> report.all_strict_optimal and report.consistent
    True
    """

    def __init__(self, method, telemetry=None):
        if telemetry is None:
            from repro.obs import telemetry as global_telemetry

            telemetry = global_telemetry()
        self.method = method
        self.telemetry = telemetry

    def replay(self, queries, batched: bool = False) -> ObservedCheckReport:
        """Execute *queries* against an (empty) partitioned file and check.

        Record contents are irrelevant to the bound — qualified bucket
        counts come from inverse mapping, not from stored data — so the
        replay file needs no inserts.

        With ``batched=True`` the whole trace runs through the array
        engine as one batch and the audit reads the ``query.batch`` span's
        ``per_query`` attribute instead of ``query.execute`` spans — so
        the bound is verified against what the *batched* read path
        actually did, not just the serial one.
        """
        from repro.storage.parallel_file import PartitionedFile

        if not self.telemetry.enabled:
            raise AnalysisError(
                "telemetry is disabled; the observed checker reads spans "
                "(configure(enabled=True) first)"
            )
        queries = list(queries)
        if len(queries) > self.telemetry.events.capacity:
            raise AnalysisError(
                f"trace of {len(queries)} queries cannot fit the event log "
                f"(capacity {self.telemetry.events.capacity}); raise it"
            )
        appended_before = self.telemetry.events.appended
        if batched:
            from repro.engine.batch import BatchEngine

            BatchEngine(PartitionedFile(self.method)).execute(queries)
        else:
            from repro.storage.executor import QueryExecutor

            executor = QueryExecutor(PartitionedFile(self.method))
            for query in queries:
                executor.execute(query)
        new_count = self.telemetry.events.appended - appended_before
        new_records = (
            self.telemetry.events.records()[-new_count:] if new_count else []
        )
        if batched:
            per_query = self._batch_observations(new_records, len(queries))
        else:
            observed_spans = [
                record
                for record in new_records
                if record["type"] == "span"
                and record["name"] == "query.execute"
            ]
            if len(observed_spans) != len(queries):
                raise AnalysisError(
                    f"expected {len(queries)} query.execute spans, telemetry "
                    f"retained {len(observed_spans)}; event log too small?"
                )
            per_query = [span["attrs"] for span in observed_spans]

        m = self.method.filesystem.m
        report = ObservedCheckReport(
            method_name=self.method.name or type(self.method).__name__
        )
        for query, attrs in zip(queries, per_query):
            observed = tuple(attrs["buckets_per_device"])
            qualified = attrs["qualified"]
            report.observations.append(
                ObservedQuery(
                    query=attrs["query"],
                    qualified=qualified,
                    bound=ceil_div(qualified, m),
                    observed_per_device=observed,
                    closed_form_per_device=tuple(
                        self.method.response_histogram(query)
                    ),
                )
            )
        return report

    @staticmethod
    def audit_trace(records) -> TraceAuditReport:
        """Audit an exported record stream, attributing per tenant.

        Every ``query.execute`` span and every ``query.batch``
        ``per_query`` entry is checked against ``ceil(|R(q)|/M)`` (``M``
        read from the span's own ``buckets_per_device`` width, so no
        method object is needed).  A span whose propagated trace leads to
        a tenanted ``gateway.request`` ancestor — including across the
        remote hop the server marked when it resumed the wire context —
        is attributed to that tenant; untenanted spans report as ``""``.
        """
        from repro.obs.profile import resolve_tenant, span_index

        spans = [r for r in records if r.get("type") == "span"]
        index = span_index(spans)
        report = TraceAuditReport()

        def observe(record, attrs) -> None:
            observed = attrs.get("buckets_per_device")
            qualified = attrs.get("qualified")
            described = attrs.get("query")
            if observed is None or qualified is None or described is None:
                return
            report.observations.append(
                TraceAuditObservation(
                    tenant=resolve_tenant(record, index),
                    trace=record.get("trace", 0),
                    span=record["id"],
                    query=str(described),
                    qualified=int(qualified),
                    observed_per_device=tuple(observed),
                )
            )

        for record in spans:
            name = record.get("name")
            if name == "query.execute":
                observe(record, record.get("attrs", {}))
            elif name == "query.batch":
                for entry in record.get("attrs", {}).get("per_query", []):
                    if isinstance(entry, dict):
                        observe(record, entry)
        return report

    @staticmethod
    def _batch_observations(new_records, expected: int) -> list[dict]:
        """Per-query attrs from the replay's single ``query.batch`` span."""
        batch_spans = [
            record
            for record in new_records
            if record["type"] == "span" and record["name"] == "query.batch"
        ]
        if len(batch_spans) != 1:
            raise AnalysisError(
                f"expected one query.batch span, telemetry retained "
                f"{len(batch_spans)}; event log too small?"
            )
        per_query = batch_spans[0]["attrs"]["per_query"]
        if len(per_query) != expected:
            raise AnalysisError(
                f"query.batch span reports {len(per_query)} queries, "
                f"{expected} were replayed"
            )
        return per_query
