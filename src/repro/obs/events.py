"""Structured event log: every finished span and metrics sample, in order.

The :class:`EventLog` is an append-only bounded ring of plain dicts.  Each
record is one JSON object; :meth:`EventLog.to_jsonl` serialises the log to
JSON Lines with sorted keys and compact separators, so two runs that record
the same telemetry (e.g. under a :class:`~repro.obs.clock.ManualClock`)
export byte-identical files.

JSONL schema (documented in ``docs/usage.md`` and enforced by
:func:`validate_record` / the ``obs export --validate`` CLI path):

``{"v": 1, "type": "span", "id": int, "trace": int, "parent": int | null,
"name": str, "start_ms": float, "end_ms": float, "duration_ms": float,
"attrs": {str: scalar}, "events": [{"name": str, "at_ms": float,
"attrs": {...}}]}`` — plus an optional ``"remote": true`` marker on spans
whose parent context arrived over the wire (``trace`` is the 64-bit trace
id shared by a whole cross-process request tree).

``{"v": 1, "type": "metrics", "counters": {...}, "gauges": {...},
"histograms": {name: {count, sum, min, max, p50, p95, p99}},
"perf": {name: {hits, misses, events, seconds}}}``

The leading ``"v"`` is the process-wide envelope version from
:mod:`repro.envelope` — the same marker the gateway wire protocol and the
``--json`` result serialisations carry.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from collections.abc import Iterable
from pathlib import Path

from repro.envelope import SCHEMA_VERSION
from repro.errors import ReproError

__all__ = [
    "EventLog",
    "jsonl_line",
    "validate_record",
    "validate_jsonl",
    "WELL_KNOWN_SPAN_EVENTS",
]

#: Default ring capacity: enough for every span of a sizeable replay while
#: bounding memory for long-lived processes.
DEFAULT_CAPACITY = 65_536

#: The span-event vocabulary the instrumented subsystems emit.  Names are
#: not enforced by the schema (spans may carry ad-hoc events), but dashboards
#: and tests key off these: the degraded runtime emits ``retry`` /
#: ``timeout`` / ``failover`` / ``data_loss`` / ``degraded``, and the
#: durability layer emits ``corruption.detected`` / ``page.repaired`` /
#: ``repair.failed`` / ``wal.torn_tail`` / ``device.rebuilt``.
WELL_KNOWN_SPAN_EVENTS = frozenset(
    {
        "retry",
        "timeout",
        "failover",
        "data_loss",
        "degraded",
        "corruption.detected",
        "page.repaired",
        "repair.failed",
        "wal.torn_tail",
        "device.rebuilt",
    }
)


class EventLog:
    """Bounded, thread-safe, append-only log of telemetry records."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._records: deque[dict] = deque(maxlen=capacity)
        #: Total appends ever, including records the ring has evicted.
        self.appended = 0

    def append(self, record: dict) -> None:
        with self._lock:
            self._records.append(record)
            self.appended += 1

    def records(self) -> list[dict]:
        """Snapshot of the retained records, oldest first."""
        with self._lock:
            return list(self._records)

    def tail(self, count: int) -> list[dict]:
        """The most recent *count* records, oldest of them first."""
        with self._lock:
            if count <= 0:
                return []
            return list(self._records)[-count:]

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self.appended = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_jsonl(self, extra: Iterable[dict] = ()) -> str:
        """The whole log (plus *extra* records) as canonical JSON Lines."""
        lines = [jsonl_line(record) for record in self.records()]
        lines.extend(jsonl_line(record) for record in extra)
        return "".join(lines)

    def write_jsonl(self, path: str | Path, extra: Iterable[dict] = ()) -> int:
        """Write the log to *path*; returns the number of lines written."""
        text = self.to_jsonl(extra)
        Path(path).write_text(text, encoding="utf-8")
        return text.count("\n")


def jsonl_line(record: dict) -> str:
    """One canonical JSONL line: sorted keys, compact separators."""
    return json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"


# ----------------------------------------------------------------------
# Schema validation (used by ``obs export --validate`` and CI obs-smoke)
# ----------------------------------------------------------------------
_SPAN_REQUIRED = {
    "v": int,
    "type": str,
    "id": int,
    "trace": int,
    "name": str,
    "start_ms": (int, float),
    "end_ms": (int, float),
    "duration_ms": (int, float),
    "attrs": dict,
    "events": list,
}
_METRICS_REQUIRED = {
    "v": int,
    "type": str,
    "counters": dict,
    "gauges": dict,
    "histograms": dict,
    "perf": dict,
}
_HISTOGRAM_KEYS = {"count", "sum", "min", "max", "p50", "p95", "p99"}
_PERF_KEYS = {"hits", "misses", "events", "seconds"}


def validate_record(record: dict) -> None:
    """Raise :class:`~repro.errors.ReproError` unless *record* fits the schema."""
    if not isinstance(record, dict):
        raise ReproError(f"telemetry record is not an object: {record!r}")
    if record.get("v") != SCHEMA_VERSION:
        raise ReproError(
            f"telemetry record envelope version {record.get('v')!r} is not "
            f"the supported v{SCHEMA_VERSION}"
        )
    kind = record.get("type")
    if kind == "span":
        _require(record, _SPAN_REQUIRED)
        if record["duration_ms"] < 0:
            raise ReproError(f"span {record['name']!r} has negative duration")
        parent = record.get("parent")
        if parent is not None and not isinstance(parent, int):
            raise ReproError(f"span parent must be int or null: {parent!r}")
        if "remote" in record and record["remote"] is not True:
            raise ReproError(
                f"span remote marker must be true when present: "
                f"{record['remote']!r}"
            )
        for event in record["events"]:
            if not isinstance(event, dict) or not isinstance(
                event.get("name"), str
            ) or not isinstance(event.get("at_ms"), (int, float)) or not isinstance(
                event.get("attrs"), dict
            ):
                raise ReproError(f"malformed span event: {event!r}")
    elif kind == "metrics":
        _require(record, _METRICS_REQUIRED)
        for name, summary in record["histograms"].items():
            if not isinstance(summary, dict) or set(summary) != _HISTOGRAM_KEYS:
                raise ReproError(f"malformed histogram summary {name!r}: {summary!r}")
        for name, perf in record["perf"].items():
            if not isinstance(perf, dict) or set(perf) != _PERF_KEYS:
                raise ReproError(f"malformed perf entry {name!r}: {perf!r}")
    else:
        raise ReproError(f"unknown telemetry record type: {kind!r}")


def _require(record: dict, spec: dict) -> None:
    for key, types in spec.items():
        if key not in record:
            raise ReproError(
                f"telemetry record missing {key!r}: {sorted(record)}"
            )
        if not isinstance(record[key], types) or isinstance(record[key], bool):
            raise ReproError(
                f"telemetry record field {key!r} has wrong type: "
                f"{record[key]!r}"
            )


def validate_jsonl(text: str) -> int:
    """Validate a whole JSONL document; returns the record count."""
    count = 0
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ReproError(
                f"line {line_number} is not valid JSON: {error}"
            ) from None
        try:
            validate_record(record)
        except ReproError as error:
            raise ReproError(f"line {line_number}: {error}") from None
        count += 1
    return count
