"""Array-native batched execution engine.

The serving-tier fast path: many partial match queries planned and executed
in one NumPy pass, with per-query results byte-identical to the serial
:class:`~repro.storage.executor.QueryExecutor`.  See
:mod:`repro.engine.batch` for the execution model, :mod:`repro.engine.plan`
for the planner, and :mod:`repro.engine.signature` for the vectorised query
keys the planner and the result cache share.
"""

from repro.engine.batch import BatchEngine, BatchExecutionReport
from repro.engine.plan import ArrayBatchPlan, ArrayBatchPlanner
from repro.engine.signature import dedupe_queries, pack_queries, pack_query

__all__ = [
    "BatchEngine",
    "BatchExecutionReport",
    "ArrayBatchPlan",
    "ArrayBatchPlanner",
    "pack_query",
    "pack_queries",
    "dedupe_queries",
]
