"""Array-native batch planning: many queries to one read schedule.

The planner turns a batch of partial match queries into flat int64 bucket
addresses (see :func:`repro.core.inverse.bucket_strides`) organised two
ways at once:

* **per (query, device) slices**, in the serial executor's exact
  enumeration order — what result assembly replays to stay byte-identical
  with :class:`~repro.storage.executor.QueryExecutor`, and
* **per-device unique read sets** (``np.unique`` over every slice that
  targets the device) — what the engine actually fetches, touching each
  bucket once per batch no matter how many queries share it.

Duplicate queries are collapsed by signature before any inverse mapping
runs (:func:`repro.engine.signature.dedupe_queries`), and the remaining
distinct queries are grouped by pattern so each group is solved by one call
to the batched kernel :func:`~repro.core.inverse.separable_qualified_flat_batch`.
Non-separable methods fall back to the tuple-at-a-time iterator with
identical plan contents.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.inverse import bucket_strides, separable_qualified_flat_batch
from repro.distribution.base import SeparableMethod
from repro.errors import QueryError
from repro.obs.clock import now as _now
from repro.perf.counters import record_work
from repro.query.partial_match import PartialMatchQuery

__all__ = ["ArrayBatchPlan", "ArrayBatchPlanner"]


@dataclass
class ArrayBatchPlan:
    """The read schedule of one batch, in flat-array form.

    ``slices[(slot, device)]`` holds the flat addresses of the buckets
    distinct query *slot* needs from *device*, in serial enumeration order
    (present or not — absent buckets cost a probe in the serial model too);
    ``unique_per_device[device]`` is the sorted deduplicated union the
    engine will actually read.
    """

    queries: Sequence[PartialMatchQuery]
    #: Indices (into ``queries``) of the distinct queries, first-occurrence
    #: order; ``slot_of[i]`` maps original query *i* to its distinct slot.
    distinct: list[int]
    slot_of: list[int]
    #: ``counts[slot, device]``: planned bucket probes, aligned with
    #: ``distinct`` — exactly serial execution's ``len(assigned)``.
    counts: np.ndarray
    #: Flat bucket addresses per (slot, device), serial enumeration order.
    slices: dict[tuple[int, int], np.ndarray]
    #: Per device: every slot's slice concatenated in slot order, plus the
    #: cumulative slot boundaries (length ``len(distinct)``) — the
    #: assembled view result assembly matches against fetched data in one
    #: pass instead of per (slot, device).
    requests: dict[int, tuple[np.ndarray, np.ndarray]]
    #: Sorted unique flat addresses each device must serve for the batch.
    #: Empty when the bitmap path is active (see ``masks``).
    unique_per_device: dict[int, np.ndarray]
    #: When the flat bucket domain is small enough, a boolean membership
    #: mask per device replaces the sorted unique array: an O(reads)
    #: scatter instead of an O(reads log reads) sort, and the fetch flips
    #: to gathering ``present[mask[present]]`` — the present set is tiny
    #: next to the request stream.
    masks: dict[int, np.ndarray]
    #: Distinct planned (device, bucket) pairs per device, filled by both
    #: the sort and the bitmap paths.
    unique_counts: dict[int, int]
    #: Row-major strides the flat encoding uses.
    strides: np.ndarray
    #: Bucket probes query-at-a-time execution of the *submitted* batch
    #: would make (duplicates included).
    naive_bucket_reads: int = 0
    #: How many submitted queries were dropped as exact duplicates.
    duplicates_removed: int = 0

    @property
    def planned_reads(self) -> int:
        """Bucket probes after deduplication of identical queries."""
        return int(self.counts.sum())

    @property
    def unique_reads(self) -> int:
        """Distinct (device, bucket) pairs the engine will touch."""
        return sum(self.unique_counts.values())


class ArrayBatchPlanner:
    """Plans batches for one distribution method (stateless, shareable)."""

    #: Largest flat bucket domain for which per-device boolean membership
    #: masks are used instead of sort-based dedupe (1 MiB of bool per
    #: device at the limit).
    BITMAP_DOMAIN_LIMIT = 1 << 20

    def __init__(self, method):
        self.method = method
        self.strides = bucket_strides(method.filesystem)
        total_buckets = 1
        for size in method.filesystem.field_sizes:
            total_buckets *= size
        self._domain = (
            total_buckets
            if total_buckets <= self.BITMAP_DOMAIN_LIMIT
            else None
        )
        #: Recycled all-False mask buffers (see :meth:`recycle`) — fresh
        #: ``np.zeros`` per device per batch showed up in small-batch
        #: profiles.
        self._mask_pool: list[np.ndarray] = []

    def recycle(self, plan: ArrayBatchPlan) -> None:
        """Return *plan*'s mask buffers to the pool once the engine is done.

        Each mask is reset by clearing exactly the positions its device's
        request stream set — O(planned reads), not O(domain).  Safe to
        skip (buffers are then simply reallocated next batch) but never
        call while the plan is still in use.
        """
        for device, mask in plan.masks.items():
            requested, __ = plan.requests[device]
            if requested.size:
                mask[requested] = False
            self._mask_pool.append(mask)
        plan.masks = {}

    def plan(self, queries: Sequence[PartialMatchQuery]) -> ArrayBatchPlan:
        started = _now()
        fs = self.method.filesystem
        for query in queries:
            if query.filesystem != fs:
                raise QueryError(
                    "batch contains a query for a different file system"
                )
        from repro.engine.signature import dedupe_queries

        distinct, slot_of = dedupe_queries(queries, self.strides)
        plan = ArrayBatchPlan(
            queries=queries,
            distinct=distinct,
            slot_of=slot_of,
            counts=np.zeros((len(distinct), fs.m), dtype=np.int64),
            slices={},
            requests={},
            unique_per_device={},
            masks={},
            unique_counts={},
            strides=self.strides,
            naive_bucket_reads=sum(q.qualified_count for q in queries),
            duplicates_removed=len(queries) - len(distinct),
        )
        if isinstance(self.method, SeparableMethod):
            self._plan_separable(plan)
        else:
            self._plan_generic(plan)
        for device in range(fs.m):
            parts = [
                plan.slices[(slot, device)] for slot in range(len(distinct))
            ]
            requested = (
                np.concatenate(parts)
                if parts
                else np.empty(0, dtype=np.int64)
            )
            boundaries = np.cumsum(
                np.asarray([part.size for part in parts], dtype=np.int64)
            )
            plan.requests[device] = (requested, boundaries)
            if self._domain is not None:
                mask = (
                    self._mask_pool.pop()
                    if self._mask_pool
                    else np.zeros(self._domain, dtype=bool)
                )
                if requested.size:
                    mask[requested] = True
                    # Distinct count: popcount the mask when the stream is
                    # dense, sort the (small) stream when scanning the
                    # whole domain would cost more.
                    if requested.size * 16 < self._domain:
                        merged = np.sort(requested)
                        distinct_count = 1 + int(
                            np.count_nonzero(merged[1:] != merged[:-1])
                        )
                    else:
                        distinct_count = int(np.count_nonzero(mask))
                else:
                    distinct_count = 0
                plan.masks[device] = mask
                plan.unique_counts[device] = distinct_count
            elif requested.size:
                merged = np.sort(requested, kind="stable")
                # sort + adjacent-difference dedupe: same result as
                # ``np.unique`` but without its hashing pass, which
                # dominated planning time on large batches.
                keep = np.empty(merged.size, dtype=bool)
                keep[0] = True
                np.not_equal(merged[1:], merged[:-1], out=keep[1:])
                unique = merged[keep]
                plan.unique_per_device[device] = unique
                plan.unique_counts[device] = int(unique.size)
            else:
                plan.unique_per_device[device] = np.empty(0, dtype=np.int64)
                plan.unique_counts[device] = 0
        record_work("engine_plan", plan.planned_reads, _now() - started)
        return plan

    def _plan_separable(self, plan: ArrayBatchPlan) -> None:
        """One batched-kernel call per pattern group of distinct queries."""
        m = self.method.filesystem.m
        groups: dict[frozenset[int], list[int]] = {}
        for slot, query_index in enumerate(plan.distinct):
            pattern = plan.queries[query_index].pattern
            groups.setdefault(pattern, []).append(slot)
        for slots in groups.values():
            group_queries = [
                plan.queries[plan.distinct[slot]] for slot in slots
            ]
            flat, counts = separable_qualified_flat_batch(
                self.method, group_queries, self.strides
            )
            # ``flat`` is (query, device, ...)-major: plain slicing at the
            # count boundaries recovers each (slot, device) view (cheaper
            # than ``np.split`` for thousands of pieces).
            offsets = np.concatenate(
                (np.zeros(1, dtype=np.int64), np.cumsum(counts.ravel()))
            ).tolist()
            for g, slot in enumerate(slots):
                plan.counts[slot] = counts[g]
                base = g * m
                for device in range(m):
                    plan.slices[(slot, device)] = flat[
                        offsets[base + device]:offsets[base + device + 1]
                    ]

    def _plan_generic(self, plan: ArrayBatchPlan) -> None:
        """Iterator fallback for non-separable methods (same plan shape)."""
        m = self.method.filesystem.m
        strides = self.strides
        for slot, query_index in enumerate(plan.distinct):
            query = plan.queries[query_index]
            for device in range(m):
                flats = [
                    int(np.dot(np.asarray(bucket, dtype=np.int64), strides))
                    for bucket in self.method.qualified_on_device(
                        device, query
                    )
                ]
                plan.slices[(slot, device)] = np.asarray(
                    flats, dtype=np.int64
                )
                plan.counts[slot, device] = len(flats)
