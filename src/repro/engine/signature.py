"""Vectorised query signatures: a pattern mask plus a packed value word.

Every batched path needs to ask "have I seen this query before?" many times
per call — deduplication in the planner, exact-probe keys in the result
cache.  Hashing a ``PartialMatchQuery`` directly costs a tuple hash per
probe and cannot be computed for a whole batch at once, so the engine keys
queries by a two-integer *signature* instead:

``mask``
    bit *i* set exactly when field *i* is specified — the complement of the
    query's pattern, as one machine word;
``packed``
    the specified values folded through the file's row-major bucket strides
    (unspecified fields contribute 0).

``(mask, packed)`` determines the query: two queries over the same file
system are equal iff their signatures are equal.  For a whole batch the
signatures come out of one NumPy pass over the stacked value matrix; the
scalar fallback covers file systems too large for int64 arithmetic
(``bucket_count >= 2**62`` or more than 62 fields), where plain Python
integers do the same fold exactly.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.query.partial_match import PartialMatchQuery

__all__ = ["pack_query", "pack_queries", "dedupe_queries"]

#: Above this bucket count (or past 62 fields) int64 packing could wrap;
#: the scalar Python-int path takes over.
_INT64_SAFE_BUCKETS = 1 << 62
_INT64_SAFE_FIELDS = 62


def pack_query(
    query: PartialMatchQuery, strides: np.ndarray
) -> tuple[int, int]:
    """Signature of one query as plain Python integers (never overflows)."""
    mask = 0
    packed = 0
    for i, value in enumerate(query.values):
        if value is not None:
            mask |= 1 << i
            packed += value * int(strides[i])
    return mask, packed


def pack_queries(
    queries: Sequence[PartialMatchQuery], strides: np.ndarray
) -> list[tuple[int, int]]:
    """Signatures of a whole batch, one NumPy pass when int64 is safe.

    Returns a list parallel to *queries*; each element equals
    :func:`pack_query` of the same query.
    """
    if not queries:
        return []
    fs = queries[0].filesystem
    n = fs.n_fields
    if n > _INT64_SAFE_FIELDS or fs.bucket_count >= _INT64_SAFE_BUCKETS:
        return [pack_query(query, strides) for query in queries]
    # Stack values with None -> -1, derive mask bits and zero-filled values
    # in one shot; ``vals @ strides`` is the same fold pack_query runs.
    raw = np.asarray(
        [
            [-1 if v is None else v for v in query.values]
            for query in queries
        ],
        dtype=np.int64,
    )
    specified = raw >= 0
    bits = np.left_shift(np.int64(1), np.arange(n, dtype=np.int64))
    masks = (specified * bits[None, :]).sum(axis=1)
    packed = np.where(specified, raw, 0) @ strides
    return list(zip(masks.tolist(), packed.tolist()))


def dedupe_queries(
    queries: Sequence[PartialMatchQuery], strides: np.ndarray
) -> tuple[list[int], list[int]]:
    """Collapse duplicate queries by signature.

    Returns ``(distinct, slot_of)`` where ``distinct`` lists the indices of
    first occurrences (in submission order) and ``slot_of[i]`` maps every
    original query *i* to its position in ``distinct``.
    """
    signatures = pack_queries(queries, strides)
    first_slot: dict[tuple[int, int], int] = {}
    distinct: list[int] = []
    slot_of: list[int] = []
    for index, signature in enumerate(signatures):
        slot = first_slot.get(signature)
        if slot is None:
            slot = len(distinct)
            first_slot[signature] = slot
            distinct.append(index)
        slot_of.append(slot)
    return distinct, slot_of
