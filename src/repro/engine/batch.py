"""The array-native batch engine: many queries, one pass over the devices.

:class:`BatchEngine` executes a batch of partial match queries against a
:class:`~repro.storage.parallel_file.PartitionedFile` and returns, per
query, an :class:`~repro.storage.executor.ExecutionResult` **byte-identical**
to what the serial :class:`~repro.storage.executor.QueryExecutor` produces
— same records in the same order, same per-device bucket counts, same
modelled times — while touching each (device, bucket) pair at most once for
the whole batch:

1. *Plan.*  :class:`~repro.engine.plan.ArrayBatchPlanner` dedupes the batch
   by signature, groups it by pattern and solves each group's inverse
   mapping in one NumPy pass, yielding flat int64 bucket addresses per
   (query, device) plus each device's deduplicated read set.
2. *Fetch.*  Under the file's mutation lock (one consistent snapshot) each
   device's read set is intersected with its *present* set — a sorted flat
   array cached per write version — and only those buckets are pulled from
   the local store, once each.
3. *Assemble.*  Each query's slice is matched into the fetched arrays with
   ``searchsorted``; records concatenate in the serial order (device 0..M-1,
   buckets in enumeration order, store insertion order within a bucket).
   Service times are recomputed from the *planned* per-device counts with
   the device's own cost model, accumulated in device order, so the floats
   come out bit-equal to serial execution.

Failure semantics: a store that verifies reads (e.g.
:class:`~repro.durability.checksummed_store.ChecksummedBucketStore`) raises
on the first corrupt bucket any query in the batch needs — the batch is one
operation, so one bad page fails the batch, where serial execution would
fail only the queries touching it.  The present set uses
``tracked_buckets()`` when available so a dropped page (checksum left
behind) is still read — and still detected — rather than silently skipped.

Telemetry: one ``query.batch`` span per call carrying a ``per_query``
attribute (query, qualified count, per-device buckets) that
``ObservedOptimalityChecker`` can audit exactly like serial
``query.execute`` spans, plus ``engine.*`` counters and histograms.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from itertools import chain

import numpy as np

from repro.engine.plan import ArrayBatchPlan, ArrayBatchPlanner
from repro.hashing.fields import Bucket
from repro.obs import telemetry, trace_span
from repro.obs.clock import now as _now
from repro.query.partial_match import PartialMatchQuery
from repro.storage.executor import ExecutionResult
from repro.storage.parallel_file import PartitionedFile
from repro.util.numbers import ceil_div

__all__ = ["BatchEngine", "BatchExecutionReport"]


@dataclass
class BatchExecutionReport:
    """Per-query results plus batch-level read accounting."""

    #: One result per submitted query (duplicates get their own copies),
    #: each byte-identical to serial execution of that query.
    results: list[ExecutionResult] = field(default_factory=list)
    #: Bucket probes a query-at-a-time run of the batch would make.
    naive_reads: int = 0
    #: Probes after dropping duplicate queries (serial model, per query).
    planned_reads: int = 0
    #: Distinct (device, bucket) pairs the engine actually touched.
    unique_reads: int = 0
    #: Modelled batch wall time: max per-device service time over each
    #: device's deduplicated read set.
    response_time_ms: float = 0.0
    duplicates_removed: int = 0
    plan_ms: float = 0.0
    fetch_ms: float = 0.0

    @property
    def sharing_factor(self) -> float:
        """Naive probes over deduplicated reads (1.0 = no overlap)."""
        if self.unique_reads == 0:
            return 1.0
        return self.naive_reads / self.unique_reads

    @property
    def reads_saved(self) -> int:
        return self.naive_reads - self.unique_reads

    def to_dict(self) -> dict:
        return {
            "queries": len(self.results),
            "duplicates_removed": self.duplicates_removed,
            "naive_reads": self.naive_reads,
            "planned_reads": self.planned_reads,
            "unique_reads": self.unique_reads,
            "sharing_factor": round(self.sharing_factor, 6),
            "response_time_ms": round(self.response_time_ms, 6),
            "results": [result.to_dict() for result in self.results],
        }


class _PresentSet:
    """One device's stored buckets, flat-encoded and sorted.

    ``flats`` is the sorted int64 array of flat addresses; ``buckets[k]``
    is the tuple address of ``flats[k]`` (what the local store is keyed
    by).  Valid for exactly one write version.

    For stores that do *not* verify reads, ``records[k]`` (and
    ``pages[k]`` when the store is page-aware) snapshot the store's
    answers at build time, so a fetch is pure list gathers with no
    per-bucket store calls.  Left ``None`` for verifying stores — their
    per-read CRC check is part of the contract and must run every batch.
    """

    __slots__ = ("version", "flats", "buckets", "records", "pages")

    def __init__(
        self,
        version: int,
        flats: np.ndarray,
        buckets: list[Bucket],
        records: list[tuple[object, ...]] | None = None,
        pages: list[int] | None = None,
    ):
        self.version = version
        self.flats = flats
        self.buckets = buckets
        self.records = records
        self.pages = pages


class BatchEngine:
    """Batched, array-native query execution over a partitioned file.

    >>> from repro import FileSystem, FXDistribution
    >>> fs = FileSystem.of(4, 4, m=4)
    >>> pf = PartitionedFile(FXDistribution(fs))
    >>> __ = pf.insert((1, 2))
    >>> engine = BatchEngine(pf)
    >>> q = pf.query({0: 1})
    >>> report = engine.execute([q, q])    # duplicate planned once
    >>> report.duplicates_removed, len(report.results)
    (1, 2)
    >>> report.results[0].records == report.results[1].records
    True
    """

    def __init__(self, partitioned_file: PartitionedFile):
        self.file = partitioned_file
        self.planner = ArrayBatchPlanner(partitioned_file.method)
        self._present: dict[int, _PresentSet] = {}

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self, queries: Sequence[PartialMatchQuery]
    ) -> BatchExecutionReport:
        """Run the whole batch in one planning + one fetch pass."""
        report = BatchExecutionReport(naive_reads=0)
        if not queries:
            return report
        plan_started = _now()
        plan = self.planner.plan(queries)
        report.plan_ms = (_now() - plan_started) * 1000.0
        report.naive_reads = plan.naive_bucket_reads
        report.planned_reads = plan.planned_reads
        report.unique_reads = plan.unique_reads
        report.duplicates_removed = plan.duplicates_removed

        with trace_span(
            "query.batch",
            queries=len(queries),
            distinct=len(plan.distinct),
            planned_reads=plan.planned_reads,
            unique_reads=plan.unique_reads,
        ) as span:
            try:
                fetch_started = _now()
                fetched = self._fetch_devices(plan, report)
                report.fetch_ms = (_now() - fetch_started) * 1000.0
                distinct_results = self._assemble(plan, fetched)
                report.results = self._fan_out(plan, distinct_results)
            finally:
                self.planner.recycle(plan)
            span.set_attr("response_ms", round(report.response_time_ms, 6))
            span.set_attr(
                "sharing_factor", round(report.sharing_factor, 6)
            )
            span.set_attr(
                "per_query",
                [
                    {
                        "query": result.query.describe(),
                        "qualified": result.query.qualified_count,
                        "buckets_per_device": list(result.buckets_per_device),
                    }
                    for result in report.results
                ],
            )
        metrics = telemetry().metrics
        metrics.add("engine.batches")
        metrics.add("engine.queries", len(queries))
        metrics.add("engine.unique_reads", report.unique_reads)
        metrics.add("engine.reads_saved", report.reads_saved)
        metrics.observe("engine.batch_size", len(queries))
        metrics.observe("engine.plan_ms", report.plan_ms)
        metrics.observe("engine.fetch_ms", report.fetch_ms)
        return report

    def fetch_buckets(
        self, queries: Sequence[PartialMatchQuery]
    ) -> tuple[list[dict[Bucket, tuple[object, ...]]], int]:
        """Bucket-grouped records per query, one batched device pass.

        The cache-fill primitive behind
        :meth:`repro.storage.cache.CachedExecutor.lookup_batch`: returns
        one ``{bucket: records}`` mapping per query — non-empty buckets
        only, which :class:`~repro.storage.cache.CachedLookup` treats the
        same as explicit empties — and the write version the snapshot
        reflects.  Duplicate queries share one planned fetch but get
        independent mappings.
        """
        if not queries:
            return [], self.file.write_version
        plan = self.planner.plan(queries)
        report = BatchExecutionReport()
        with trace_span(
            "query.batch",
            queries=len(queries),
            distinct=len(plan.distinct),
            planned_reads=plan.planned_reads,
            unique_reads=plan.unique_reads,
        ) as span:
            try:
                with self.file.read_locked():
                    version = self.file.write_version
                    fetched = self._fetch_locked(plan, report)
            finally:
                self.planner.recycle(plan)
            span.set_attr(
                "per_query",
                [
                    {
                        "query": query.describe(),
                        "qualified": query.qualified_count,
                        "buckets_per_device": plan.counts[
                            plan.slot_of[index]
                        ].tolist(),
                    }
                    for index, query in enumerate(queries)
                ],
            )
        distinct_maps: list[dict[Bucket, tuple[object, ...]]] = []
        for slot in range(len(plan.distinct)):
            buckets: dict[Bucket, tuple[object, ...]] = {}
            for device in range(self.file.filesystem.m):
                flats, device_buckets, records = fetched[device]
                slice_flats = plan.slices[(slot, device)]
                if slice_flats.size == 0 or flats.size == 0:
                    continue
                positions = np.searchsorted(flats, slice_flats)
                positions = positions.clip(0, flats.size - 1)
                valid = flats[positions] == slice_flats
                for position in positions[valid].tolist():
                    buckets[device_buckets[position]] = records[position]
            distinct_maps.append(buckets)
        return (
            [dict(distinct_maps[slot]) for slot in plan.slot_of],
            version,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _present_set(self, device, version: int) -> _PresentSet:
        """The device's stored buckets as a sorted flat array, cached per
        write version (any mutation invalidates by version mismatch).

        Uses ``tracked_buckets()`` when the store offers it so buckets
        whose page was lost but whose checksum survives are still probed —
        and their corruption surfaced — exactly as a serial read would.
        Out-of-band store surgery that bypasses the file interface must be
        followed by :meth:`invalidate`, the same contract as the result
        cache.
        """
        cached = self._present.get(device.device_id)
        if cached is not None and cached.version == version:
            return cached
        store = device.store
        tracked = getattr(store, "tracked_buckets", None)
        buckets = list(tracked() if tracked else store.buckets())
        if buckets:
            arr = np.asarray(buckets, dtype=np.int64)
            flats = arr @ self.planner.strides
            order = np.argsort(flats, kind="stable")
            flats = flats[order]
            buckets = [buckets[k] for k in order.tolist()]
        else:
            flats = np.empty(0, dtype=np.int64)
        records = pages = None
        if buckets and not getattr(store, "verifies_reads", False):
            # Snapshot the store's answers alongside the addresses: valid
            # for exactly this write version, and only for stores whose
            # reads are side-effect free (no per-read CRC to preserve).
            records = [store.records_in(bucket) for bucket in buckets]
            if hasattr(store, "pages_in"):
                pages = [store.pages_in(bucket) for bucket in buckets]
        present = _PresentSet(version, flats, buckets, records, pages)
        self._present[device.device_id] = present
        return present

    def invalidate(self) -> None:
        """Drop the cached present sets (after out-of-band store surgery)."""
        self._present.clear()

    def _fetch_devices(self, plan: ArrayBatchPlan, report) -> dict:
        with self.file.read_locked():
            return self._fetch_locked(plan, report)

    def _fetch_locked(self, plan: ArrayBatchPlan, report) -> dict:
        """Read each device's deduplicated bucket set once.

        Returns, per device: the sorted flat addresses actually present
        (needed ∩ stored) with their bucket tuples and fetched record
        tuples, all three aligned.  Device service time for the
        batch is modelled over the deduplicated read set, page-aware when
        the store is.
        """
        version = self.file.write_version
        fetched: dict[int, tuple] = {}
        for device in self.file.devices:
            present = self._present_set(device, version)
            mask = plan.masks.get(device.device_id)
            if mask is not None and present.flats.size:
                # Bitmap path: gather the (small, sorted) present set
                # through the request-membership mask — no search needed.
                hit_positions = np.flatnonzero(mask[present.flats])
                hit_flats = present.flats[hit_positions]
            elif mask is None and present.flats.size:
                needed = plan.unique_per_device[device.device_id]
                if needed.size:
                    positions = np.searchsorted(present.flats, needed)
                    positions = positions.clip(0, present.flats.size - 1)
                    valid = present.flats[positions] == needed
                    hit_flats = needed[valid]
                    hit_positions = positions[valid]
                else:
                    hit_flats = np.empty(0, dtype=np.int64)
                    hit_positions = np.empty(0, dtype=np.int64)
            else:
                hit_flats = np.empty(0, dtype=np.int64)
                hit_positions = np.empty(0, dtype=np.int64)
            store = device.store
            page_aware = hasattr(store, "pages_in")
            positions_list = hit_positions.tolist()
            if present.records is not None:
                # Non-verifying store: the present set snapshots every
                # bucket's records (and page counts), so the fetch is
                # pure gathers — no per-bucket store calls.
                buckets = [present.buckets[p] for p in positions_list]
                records = [present.records[p] for p in positions_list]
                returned = sum(map(len, records))
                if present.pages is not None:
                    cost_units = sum(
                        present.pages[p] for p in positions_list
                    )
                else:
                    cost_units = len(buckets)
            else:
                buckets = []
                records = []
                cost_units = 0
                returned = 0
                for position in positions_list:
                    bucket = present.buckets[position]
                    bucket_records = store.records_in(bucket)
                    buckets.append(bucket)
                    records.append(bucket_records)
                    returned += len(bucket_records)
                    if page_aware:
                        cost_units += store.pages_in(bucket)
                if not page_aware:
                    cost_units = len(buckets)
            device.stats.bucket_reads += len(buckets)
            device.stats.records_returned += returned
            service = device.cost_model.service_time(cost_units)
            device.stats.busy_time_ms += service
            report.response_time_ms = max(report.response_time_ms, service)
            fetched[device.device_id] = (hit_flats, buckets, records)
            if buckets:
                metrics = telemetry().metrics
                metrics.add("storage.bucket_reads", len(buckets))
                metrics.add("storage.records_returned", returned)
        return fetched

    def _assemble(
        self, plan: ArrayBatchPlan, fetched: dict
    ) -> list[ExecutionResult]:
        """Rebuild each distinct query's serial-identical result.

        Matching is batched per *device*: every slot's slice is matched
        against the fetched flats in one ``searchsorted``, and each hit is
        routed back to its slot by its offset in the concatenation.  Hits
        stay in slice order within a slot, so the records still
        concatenate in serial enumeration order.
        """
        m = self.file.filesystem.m
        n_slots = len(plan.distinct)
        hits: dict[tuple[int, int], list] = {}
        for device in self.file.devices:
            device_id = device.device_id
            flats, __, records = fetched[device_id]
            if not flats.size:
                continue
            requested, boundaries = plan.requests[device_id]
            if not requested.size:
                continue
            positions = np.minimum(
                np.searchsorted(flats, requested), flats.size - 1
            )
            valid_at = np.flatnonzero(flats[positions] == requested)
            if not valid_at.size:
                continue
            slot_of_hit = np.searchsorted(boundaries, valid_at, side="right")
            for slot, position in zip(
                slot_of_hit.tolist(), positions[valid_at].tolist()
            ):
                hits.setdefault((int(slot), device_id), []).append(
                    records[position]
                )
        results: list[ExecutionResult] = []
        # Service times are a pure function of (device, planned count) and
        # counts repeat heavily across slots — memoise, floats stay
        # bit-equal to per-call computation.
        service_memo: dict[tuple[int, int], float] = {}
        for slot in range(n_slots):
            query = plan.queries[plan.distinct[slot]]
            result = ExecutionResult(query=query, mode="batched")
            planned_row = plan.counts[slot].tolist()
            total = 0.0
            response = 0.0
            for device in self.file.devices:
                device_id = device.device_id
                bucket_records = hits.get((slot, device_id))
                if bucket_records:
                    result.records.extend(
                        chain.from_iterable(bucket_records)
                    )
                # The serial model charges every planned probe, present or
                # not — identical floats come from identical counts.
                key = (device_id, planned_row[device_id])
                service = service_memo.get(key)
                if service is None:
                    service = device.cost_model.service_time(key[1])
                    service_memo[key] = service
                total += service
                if service > response:
                    response = service
            result.buckets_per_device = planned_row
            result.total_service_ms = total
            result.response_time_ms = response
            result.largest_response = max(planned_row, default=0)
            bound = ceil_div(query.qualified_count, m)
            result.strict_optimal = result.largest_response <= bound
            results.append(result)
        return results

    def _fan_out(
        self, plan: ArrayBatchPlan, distinct_results: list[ExecutionResult]
    ) -> list[ExecutionResult]:
        """One independent result per submitted query (duplicates cloned)."""
        used: set[int] = set()
        results: list[ExecutionResult] = []
        for slot in plan.slot_of:
            template = distinct_results[slot]
            if slot not in used:
                used.add(slot)
                results.append(template)
            else:
                results.append(
                    ExecutionResult(
                        query=template.query,
                        records=list(template.records),
                        buckets_per_device=list(template.buckets_per_device),
                        largest_response=template.largest_response,
                        response_time_ms=template.response_time_ms,
                        total_service_ms=template.total_service_ms,
                        strict_optimal=template.strict_optimal,
                        mode="batched",
                    )
                )
        return results
