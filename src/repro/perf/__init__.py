"""Engine fast-path support: counters, memoisation and parallel sweeps.

The serving-path optimisations (vectorised inverse mapping, evaluator
memoisation, parallel optimality sweeps) share three small pieces of
infrastructure, collected here so they stay observable and testable:

* :mod:`repro.perf.counters` — process-wide hit/miss/throughput counters
  behind every cache and fast path (rendered by ``python -m repro perf``),
* :mod:`repro.perf.memo` — an LRU of :class:`PatternEvaluator` instances
  keyed by *method signature*, so behaviourally identical methods share
  their spectra across instances,
* :mod:`repro.perf.parallel` — a deterministic ordered ``parallel_map``
  used by the optimality and assignment-search sweeps.
"""

from repro.perf.counters import (
    PerfCounter,
    counter,
    record_hit,
    record_miss,
    record_work,
    render_report,
    reset_counters,
    snapshot,
)
from repro.perf.memo import method_signature, shared_evaluator
from repro.perf.parallel import parallel_map, resolve_workers

__all__ = [
    "PerfCounter",
    "counter",
    "record_hit",
    "record_miss",
    "record_work",
    "render_report",
    "reset_counters",
    "snapshot",
    "method_signature",
    "shared_evaluator",
    "parallel_map",
    "resolve_workers",
]
