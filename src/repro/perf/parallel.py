"""Deterministic parallel mapping for embarrassingly parallel sweeps.

The optimality census, k-optimality checks and assignment searches all
evaluate an index set of independent work items and then fold the results
in a fixed order.  :func:`parallel_map` fans the evaluation out over a
thread pool while returning results *in input order*, so the serial fold —
and therefore every report, incumbent and history — is byte-identical to
serial execution.  Threads (not processes) because the work is dominated by
NumPy kernels that release the GIL, and because method/evaluator objects
then share their memoised spectra instead of being re-derived per worker.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable
from concurrent.futures import ThreadPoolExecutor
from typing import TypeVar

__all__ = ["parallel_map", "resolve_workers"]

T = TypeVar("T")
R = TypeVar("R")


def resolve_workers(parallel: int | None) -> int:
    """Worker count for a ``parallel=`` option.

    ``None`` or ``1`` mean serial; ``0`` or any negative value mean "one
    per CPU"; ``n >= 2`` is taken literally.
    """
    if parallel is None:
        return 1
    if parallel <= 0:
        return os.cpu_count() or 1
    return parallel


def parallel_map(
    fn: Callable[[T], R], items: Iterable[T], parallel: int | None = None
) -> list[R]:
    """``[fn(x) for x in items]``, optionally over a thread pool.

    Results are always in input order regardless of completion order, and
    the serial path is taken whenever it cannot help (one worker or fewer
    than two items), so callers never pay pool startup for trivial sweeps.
    """
    items = list(items)
    workers = resolve_workers(parallel)
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ThreadPoolExecutor(max_workers=min(workers, len(items))) as executor:
        return list(executor.map(fn, items))
