"""Process-wide memoisation keyed by distribution-method signature.

A separable method's behaviour is fully determined by its group operation,
its file system, and its per-field contribution tables — not by the Python
instance that happens to carry them.  :func:`method_signature` digests those
into a stable hashable key, and :func:`shared_evaluator` uses it to share
one :class:`~repro.analysis.histograms.PatternEvaluator` (whose construction
costs ``O(n M log M)`` spectra) across every behaviourally identical
instance in the process.  The assignment searchers construct thousands of
short-lived ``FXDistribution`` objects, many of them duplicates across
restarts — with the LRU those duplicates cost a dictionary lookup.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Callable

from repro.errors import ConfigurationError
from repro.perf.counters import record_hit, record_miss

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from repro.analysis.histograms import PatternEvaluator
    from repro.distribution.base import SeparableMethod

__all__ = ["LRUCache", "method_signature", "shared_evaluator", "clear_memo"]

#: Evaluators kept alive process-wide; each holds O(n M) floats, so a few
#: dozen covers every sweep while bounding memory.
EVALUATOR_CACHE_SIZE = 64


class LRUCache:
    """A small thread-safe LRU with hit/miss counters.

    Values are computed under the lock by the factory passed to
    :meth:`get_or_create`; factories must be cheap to duplicate (a racing
    thread at worst recomputes, never corrupts).
    """

    def __init__(self, maxsize: int, counter_name: str):
        if maxsize <= 0:
            raise ConfigurationError(f"LRU maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self.counter_name = counter_name
        self._lock = threading.Lock()
        self._data: OrderedDict[object, object] = OrderedDict()

    def get_or_create(self, key: object, factory: Callable[[], object]) -> object:
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                record_hit(self.counter_name)
                return self._data[key]
        # Build outside the lock: factories (evaluator construction) can be
        # expensive and must not serialise unrelated lookups.
        value = factory()
        with self._lock:
            if key in self._data:  # another thread won the race; keep theirs
                self._data.move_to_end(key)
                record_hit(self.counter_name)
                return self._data[key]
            record_miss(self.counter_name)
            self._data[key] = value
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
            return value

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)


def method_signature(method: "SeparableMethod") -> tuple:
    """Stable behavioural key of a separable method.

    ``(combine, M, field sizes, digest of contribution tables)`` — two
    instances with equal signatures map every bucket to the same device.
    Cached on the instance; methods are immutable after construction.
    """
    cached = method.__dict__.get("_perf_signature")
    if cached is not None:
        return cached
    fs = method.filesystem
    digest = hashlib.sha256()
    for i in range(fs.n_fields):
        digest.update(method.contribution_array(i).tobytes())
        digest.update(b"|")
    signature = (
        method.combine,
        fs.m,
        fs.field_sizes,
        digest.hexdigest(),
    )
    method.__dict__["_perf_signature"] = signature
    return signature


_EVALUATORS = LRUCache(EVALUATOR_CACHE_SIZE, "evaluator_lru")


def shared_evaluator(method: "SeparableMethod") -> "PatternEvaluator":
    """The process-wide :class:`PatternEvaluator` for *method*'s signature."""
    from repro.analysis.histograms import PatternEvaluator

    return _EVALUATORS.get_or_create(  # type: ignore[return-value]
        method_signature(method), lambda: PatternEvaluator(method)
    )


def clear_memo() -> None:
    """Drop every memoised evaluator (tests and long-lived servers)."""
    _EVALUATORS.clear()
