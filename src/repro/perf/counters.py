"""Process-wide performance counters for the engine fast paths.

Every cache (evaluator LRU, histogram memo, contribution tables) and every
bulk path (vectorised inverse mapping, batch planner) records into a named
:class:`PerfCounter`.  Counters are deliberately simple — integers behind
one lock — so instrumenting a hot path costs nanoseconds and never changes
results.  ``python -m repro perf report`` renders the registry as a table.

Since the unified telemetry layer landed, the backing store is the shared
:class:`~repro.obs.metrics.MetricsRegistry` (``repro.obs.default_registry``):
this module is now a thin facade whose public API is unchanged, while
``obs report`` / ``obs export`` see the perf counters alongside the span
histograms in one place.
"""

from __future__ import annotations

from repro.obs.metrics import PerfCounter, default_registry

__all__ = [
    "PerfCounter",
    "counter",
    "record_hit",
    "record_miss",
    "record_work",
    "reset_counters",
    "snapshot",
    "render_report",
]


def counter(name: str) -> PerfCounter:
    """The named counter, created on first use."""
    return default_registry().perf_counter(name)


def record_hit(name: str, count: int = 1) -> None:
    default_registry().record_perf_hit(name, count)


def record_miss(name: str, count: int = 1) -> None:
    default_registry().record_perf_miss(name, count)


def record_work(name: str, events: int, seconds: float = 0.0) -> None:
    """Add *events* units of work (and optionally measured *seconds*)."""
    default_registry().record_perf_work(name, events, seconds)


def reset_counters() -> None:
    """Zero the registry (tests and repeated CLI runs)."""
    default_registry().reset_perf()


def snapshot() -> dict[str, PerfCounter]:
    """A point-in-time copy of every counter, keyed by name."""
    return default_registry().snapshot().perf


def render_report(title: str = "Engine perf counters") -> str:
    """Render every counter as a table (empty registry included).

    Rows come from one atomic :func:`snapshot`, so a render racing
    concurrent updates still prints a consistent point-in-time view
    instead of interleaving per-row reads of a moving registry.
    """
    from repro.util.tables import format_table

    captured = snapshot()
    rows = []
    for name in sorted(captured):
        c = captured[name]
        hit_rate = c.hit_rate_or_none
        rate = c.rate_or_none
        rows.append(
            [
                name,
                c.hits,
                c.misses,
                "-" if hit_rate is None else f"{100 * hit_rate:.1f}%",
                c.events,
                "-" if rate is None else f"{rate:,.0f}/s",
            ]
        )
    if not rows:
        rows.append(["(no activity recorded)", 0, 0, "-", 0, "-"])
    return format_table(
        ["counter", "hits", "misses", "hit rate", "events", "throughput"],
        rows,
        title=title,
    )
