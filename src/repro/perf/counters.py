"""Process-wide performance counters for the engine fast paths.

Every cache (evaluator LRU, histogram memo, contribution tables) and every
bulk path (vectorised inverse mapping, batch planner) records into a named
:class:`PerfCounter`.  Counters are deliberately simple — integers behind
one lock — so instrumenting a hot path costs nanoseconds and never changes
results.  ``python -m repro perf report`` renders the registry as a table.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

__all__ = [
    "PerfCounter",
    "counter",
    "record_hit",
    "record_miss",
    "record_work",
    "reset_counters",
    "snapshot",
    "render_report",
]


@dataclass
class PerfCounter:
    """Hit/miss and throughput tallies of one cache or fast path.

    ``hits``/``misses`` count cache lookups; ``events`` counts units of
    work done (e.g. buckets enumerated) over ``seconds`` of measured time,
    so ``rate`` is a throughput in events per second.
    """

    name: str
    hits: int = 0
    misses: int = 0
    events: int = 0
    seconds: float = 0.0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache, in [0, 1]."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    @property
    def rate(self) -> float:
        """Events per second over the measured time (0 when unmeasured)."""
        if self.seconds <= 0.0:
            return 0.0
        return self.events / self.seconds


_LOCK = threading.Lock()
_REGISTRY: dict[str, PerfCounter] = {}


def counter(name: str) -> PerfCounter:
    """The named counter, created on first use."""
    with _LOCK:
        found = _REGISTRY.get(name)
        if found is None:
            found = PerfCounter(name)
            _REGISTRY[name] = found
        return found


def record_hit(name: str, count: int = 1) -> None:
    with _LOCK:
        _REGISTRY.setdefault(name, PerfCounter(name)).hits += count


def record_miss(name: str, count: int = 1) -> None:
    with _LOCK:
        _REGISTRY.setdefault(name, PerfCounter(name)).misses += count


def record_work(name: str, events: int, seconds: float = 0.0) -> None:
    """Add *events* units of work (and optionally measured *seconds*)."""
    with _LOCK:
        found = _REGISTRY.setdefault(name, PerfCounter(name))
        found.events += events
        found.seconds += seconds


def reset_counters() -> None:
    """Zero the registry (tests and repeated CLI runs)."""
    with _LOCK:
        _REGISTRY.clear()


def snapshot() -> dict[str, PerfCounter]:
    """A point-in-time copy of every counter, keyed by name."""
    with _LOCK:
        return {
            name: PerfCounter(
                name=c.name,
                hits=c.hits,
                misses=c.misses,
                events=c.events,
                seconds=c.seconds,
            )
            for name, c in _REGISTRY.items()
        }


def render_report(title: str = "Engine perf counters") -> str:
    """Render every counter as a table (empty registry included)."""
    from repro.util.tables import format_table

    rows = []
    for name in sorted(_REGISTRY):
        c = counter(name)
        rows.append(
            [
                name,
                c.hits,
                c.misses,
                f"{100 * c.hit_rate:.1f}%" if c.lookups else "-",
                c.events,
                f"{c.rate:,.0f}/s" if c.seconds > 0 else "-",
            ]
        )
    if not rows:
        rows.append(["(no activity recorded)", 0, 0, "-", 0, "-"])
    return format_table(
        ["counter", "hits", "misses", "hit rate", "events", "throughput"],
        rows,
        title=title,
    )
