"""Exact per-device response histograms via group convolution.

For a separable method the device of a bucket is a fold of per-field
contributions under a group operation on ``Z_M`` (XOR for FX, addition mod M
for Modulo/GDM).  Writing ``h_i`` for field *i*'s *contribution histogram*
(``h_i[z]`` = number of field values contributing ``z``), a query's
per-device histogram is::

    histogram = translate_by_specified_fold( h_{u1} * h_{u2} * ... * h_{uk} )

where ``*`` is the group convolution over the unspecified fields and the
translation is the group action of the specified fields' folded contribution
(XOR-shift or cyclic rotation).  Two consequences drive everything in
section 5 of the paper:

* the histogram *shape* (hence the largest response size and strict
  optimality) depends only on the query's pattern, and
* it can be computed in ``O(k M log M)`` instead of ``O(|R(q)|)``.

Fast transforms: the Walsh-Hadamard transform diagonalises XOR convolution
and the DFT diagonalises cyclic convolution.  Both run in float; exactness is
preserved because any unspecified field with a *uniform* contribution
histogram (identity on ``F >= M``) forces the whole histogram uniform and is
short-circuited analytically, which keeps the remaining spectral magnitudes
far below 2**53 (see the guard in :meth:`PatternEvaluator._check_magnitude`).
"""

from __future__ import annotations

import math
from collections.abc import Iterable

import numpy as np

from repro.distribution.base import SeparableMethod
from repro.errors import AnalysisError
from repro.query.partial_match import PartialMatchQuery
from repro.util.numbers import ceil_div, is_power_of_two

__all__ = [
    "contribution_histogram",
    "xor_convolve",
    "cyclic_convolve",
    "fwht",
    "pattern_histogram",
    "separable_response_histogram",
    "evaluator_for",
    "PatternEvaluator",
]

#: Safety ceiling for float-exact integer arithmetic in the spectral domain.
_EXACT_FLOAT_LIMIT = 2.0**52


def contribution_histogram(method: SeparableMethod, field_index: int) -> np.ndarray:
    """Histogram over ``Z_M`` of one field's contributions (int64, length M)."""
    m = method.filesystem.m
    table = np.asarray(method.contribution_table(field_index), dtype=np.int64)
    return np.bincount(table, minlength=m).astype(np.int64)


def xor_convolve(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Exact XOR (dyadic) convolution: ``out[i ^ j] += a[i] * b[j]``.

    Direct O(M^2) integer implementation — the reference the spectral path
    is property-tested against.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    m = _common_length(a, b)
    indices = np.arange(m)[:, None] ^ np.arange(m)[None, :]
    products = a[:, None] * b[None, :]
    return np.bincount(indices.ravel(), weights=products.ravel(), minlength=m).astype(
        np.int64
    )


def cyclic_convolve(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Exact cyclic convolution mod M: ``out[(i + j) % M] += a[i] * b[j]``."""
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    m = _common_length(a, b)
    indices = (np.arange(m)[:, None] + np.arange(m)[None, :]) % m
    products = a[:, None] * b[None, :]
    return np.bincount(indices.ravel(), weights=products.ravel(), minlength=m).astype(
        np.int64
    )


def fwht(vector: np.ndarray) -> np.ndarray:
    """Walsh-Hadamard transform (unnormalised), length a power of two.

    Self-inverse up to division by the length; diagonalises XOR convolution:
    ``fwht(a (*) b) == fwht(a) * fwht(b)``.
    """
    vector = np.asarray(vector, dtype=np.float64).copy()
    length = vector.shape[0]
    if not is_power_of_two(length):
        raise AnalysisError(f"FWHT length must be a power of two, got {length}")
    half = 1
    while half < length:
        blocks = vector.reshape(-1, 2 * half)
        left = blocks[:, :half].copy()
        right = blocks[:, half:].copy()
        blocks[:, :half] = left + right
        blocks[:, half:] = left - right
        half *= 2
    return vector


def _common_length(a: np.ndarray, b: np.ndarray) -> int:
    if a.shape != b.shape or a.ndim != 1:
        raise AnalysisError(
            f"convolution operands must be equal-length vectors, "
            f"got shapes {a.shape} and {b.shape}"
        )
    if not is_power_of_two(a.shape[0]):
        raise AnalysisError(f"length must be a power of two, got {a.shape[0]}")
    return a.shape[0]


def evaluator_for(method: SeparableMethod) -> "PatternEvaluator":
    """Return the shared :class:`PatternEvaluator` for *method*.

    Methods are immutable after construction, so evaluators are memoised
    process-wide in an LRU keyed by the method's behavioural signature
    (:func:`repro.perf.memo.shared_evaluator`): two equal methods — e.g.
    the thousands of short-lived ``FXDistribution`` instances an assignment
    search builds — share one set of spectra.  The instance also keeps a
    direct reference so the evaluator survives LRU eviction while its
    method is alive.
    """
    from repro.perf.memo import shared_evaluator

    evaluator = shared_evaluator(method)
    method._pattern_evaluator = evaluator  # type: ignore[attr-defined]
    return evaluator


def pattern_histogram(
    method: SeparableMethod, pattern: Iterable[int]
) -> np.ndarray:
    """Exact per-device histogram for a pattern (specified fold = identity).

    For any concrete query with this unspecified set, the true histogram is
    a group translation of this one, so maxima / minima / sorted loads are
    identical.
    """
    return evaluator_for(method).histogram(frozenset(pattern))


def separable_response_histogram(
    method: SeparableMethod, query: PartialMatchQuery
) -> list[int]:
    """Exact per-device histogram of *query*, with true device labels."""
    m = method.filesystem.m
    base = evaluator_for(method).histogram(query.pattern)
    shift = 0
    if method.combine == "xor":
        for i, v in query.specified_items():
            shift ^= method.field_contribution(i, v)
        return [int(base[d ^ shift]) for d in range(m)]
    for i, v in query.specified_items():
        shift += method.field_contribution(i, v)
    shift %= m
    return [int(base[(d - shift) % m]) for d in range(m)]


class PatternEvaluator:
    """Caches per-field spectra of one method for fast pattern sweeps.

    Construction is O(n M log M); each :meth:`histogram` call is
    O(k M + M log M).  Instances are cheap enough to build per method, and
    the table/figure engines keep one alive for the whole sweep.
    """

    def __init__(self, method: SeparableMethod):
        if method.combine not in ("xor", "add"):
            raise AnalysisError(
                f"PatternEvaluator needs a separable method, got combine="
                f"{method.combine!r}"
            )
        self.method = method
        self.m = method.filesystem.m
        self._sizes = method.filesystem.field_sizes
        self._histograms = [
            contribution_histogram(method, i)
            for i in range(method.filesystem.n_fields)
        ]
        # A field whose contributions cover Z_M uniformly forces the whole
        # convolution uniform; handled analytically (and keeps spectra small).
        self._uniform = [bool(np.all(h == h[0])) for h in self._histograms]
        if method.combine == "xor":
            self._spectra = [fwht(h) for h in self._histograms]
        else:
            self._spectra = [np.fft.rfft(h.astype(np.float64)) for h in self._histograms]
        #: Memoised histograms by pattern; at most 2**n entries of length M.
        self._pattern_cache: dict[frozenset[int], np.ndarray] = {}

    # ------------------------------------------------------------------
    # Core evaluation
    # ------------------------------------------------------------------
    def histogram(self, pattern: frozenset[int]) -> np.ndarray:
        """Per-device histogram for one unspecified-field set.

        Usually int64; falls back to an object (big-int) array when a
        uniform load per device would overflow 64 bits.  Results are
        memoised per pattern (hit rate under the ``pattern_histogram``
        counter) and returned read-only — copy before mutating.
        """
        from repro.perf.counters import record_hit, record_miss

        pattern = frozenset(pattern)
        cached = self._pattern_cache.get(pattern)
        if cached is not None:
            record_hit("pattern_histogram")
            return cached
        record_miss("pattern_histogram")
        result = self._compute_histogram(pattern)
        result.setflags(write=False)
        self._pattern_cache[pattern] = result
        return result

    def _compute_histogram(self, pattern: frozenset[int]) -> np.ndarray:
        self._check_pattern(pattern)
        qualified = math.prod(self._sizes[i] for i in pattern)
        uniform_value = self._uniform_load(pattern, qualified)
        if uniform_value is not None:
            if uniform_value <= np.iinfo(np.int64).max:
                return np.full(self.m, uniform_value, dtype=np.int64)
            return np.full(self.m, uniform_value, dtype=object)
        active = [i for i in pattern if not self._uniform[i]]
        if not active:
            # Exact match: one qualified bucket, landing on device 0 in the
            # untranslated (shape-only) frame.
            out = np.zeros(self.m, dtype=np.int64)
            out[0] = 1
            return out
        self._check_magnitude(active)
        if self.method.combine == "xor":
            spectrum = np.ones(self.m, dtype=np.float64)
            for i in active:
                spectrum *= self._spectra[i]
            values = fwht(spectrum) / self.m
        else:
            spectrum = np.ones(self.m // 2 + 1, dtype=np.complex128)
            for i in active:
                spectrum *= self._spectra[i]
            values = np.fft.irfft(spectrum, n=self.m)
        result = np.rint(values).astype(np.int64)
        if int(result.sum()) != qualified:
            raise AnalysisError(
                "spectral rounding failed consistency check "
                f"(sum {int(result.sum())} != |R(q)| {qualified})"
            )
        return result

    def largest_response(self, pattern: frozenset[int]) -> int:
        """``max_i r_i(q)`` for any query with this pattern."""
        pattern = frozenset(pattern)
        self._check_pattern(pattern)
        qualified = math.prod(self._sizes[i] for i in pattern)
        uniform_value = self._uniform_load(pattern, qualified)
        if uniform_value is not None:
            return uniform_value
        return int(self.histogram(pattern).max())

    def is_strict_optimal(self, pattern: frozenset[int]) -> bool:
        """Empirical strict optimality of every query with this pattern."""
        pattern = frozenset(pattern)
        qualified = math.prod(self._sizes[i] for i in pattern)
        return self.largest_response(pattern) <= ceil_div(qualified, self.m)

    def _uniform_load(self, pattern: frozenset[int], qualified: int) -> int | None:
        """Per-device load when some unspecified field is uniform, else None.

        A uniform factor makes the whole convolution uniform, so the load is
        exactly ``|R(q)| / M`` (kept as a Python int: it can exceed 64 bits
        for wide patterns over large fields).
        """
        if not any(self._uniform[i] for i in pattern):
            return None
        value, remainder = divmod(qualified, self.m)
        if remainder:
            raise AnalysisError(
                "uniform field with non-divisible product; contribution "
                "histogram was not actually uniform"
            )
        return value

    # ------------------------------------------------------------------
    # Guards
    # ------------------------------------------------------------------
    def _check_pattern(self, pattern: frozenset[int]) -> None:
        n = len(self._sizes)
        for i in pattern:
            if not 0 <= i < n:
                raise AnalysisError(f"pattern names field {i}, file has {n}")

    def _check_magnitude(self, active: list[int]) -> None:
        bound = math.prod(self._sizes[i] for i in active)
        if bound > _EXACT_FLOAT_LIMIT:
            raise AnalysisError(
                f"product of non-uniform unspecified field sizes ({bound}) "
                "exceeds the float-exact range; spectral evaluation would "
                "not be exact"
            )
