"""Load-skew metrics for allocations and query classes.

The paper's evaluation reports one skew statistic (the largest response
size).  Operators of a real array care about a few more, all derivable from
the same exact histograms:

* **load factor** of a query — largest response divided by the ideal
  ``ceil(|R(q)| / M)`` (1.0 means strict optimal),
* **expected largest response / load factor** under the independence query
  model with specification probability ``p``,
* **static balance** of the bucket allocation itself (max/mean and Gini
  coefficient of device bucket counts).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.histograms import evaluator_for
from repro.analysis.optim_prob import pattern_probability
from repro.distribution.base import DistributionMethod, SeparableMethod
from repro.errors import AnalysisError
from repro.query.patterns import all_patterns
from repro.util.numbers import ceil_div

__all__ = [
    "SkewSummary",
    "pattern_load_factor",
    "expected_largest_response",
    "expected_load_factor",
    "static_balance",
    "gini",
    "skew_summary",
]


def pattern_load_factor(method: SeparableMethod, pattern: frozenset[int]) -> float:
    """Largest response over the optimal floor for one pattern (>= 1.0)."""
    fs = method.filesystem
    qualified = math.prod(fs.field_sizes[i] for i in pattern)
    bound = ceil_div(qualified, fs.m)
    return evaluator_for(method).largest_response(pattern) / bound


def expected_largest_response(method: SeparableMethod, p: float = 0.5) -> float:
    """E[max_i r_i(q)] under the paper's independent-specification model."""
    fs = method.filesystem
    evaluator = evaluator_for(method)
    total = 0.0
    for pattern in all_patterns(fs.n_fields):
        weight = pattern_probability(pattern, fs.n_fields, p)
        if weight:
            total += weight * evaluator.largest_response(pattern)
    return total


def expected_load_factor(method: SeparableMethod, p: float = 0.5) -> float:
    """E[load factor]: 1.0 iff the method is perfect optimal."""
    fs = method.filesystem
    total = 0.0
    for pattern in all_patterns(fs.n_fields):
        weight = pattern_probability(pattern, fs.n_fields, p)
        if weight:
            total += weight * pattern_load_factor(method, pattern)
    return total


def gini(values: list[int] | list[float]) -> float:
    """Gini coefficient of a non-negative distribution (0 = equal)."""
    if not values:
        raise AnalysisError("gini of an empty list")
    if any(v < 0 for v in values):
        raise AnalysisError("gini requires non-negative values")
    total = sum(values)
    if total == 0:
        return 0.0
    ordered = sorted(values)
    n = len(ordered)
    cumulative = 0.0
    for rank, value in enumerate(ordered, start=1):
        cumulative += rank * value
    return (2.0 * cumulative) / (n * total) - (n + 1.0) / n


def static_balance(method: DistributionMethod) -> tuple[float, float]:
    """(max/mean, gini) of the whole-grid device bucket counts.

    Enumerates the grid, so intended for analysis-scale file systems.
    """
    counts = [len(buckets) for buckets in method.distribute()]
    mean = sum(counts) / len(counts)
    if mean == 0:
        raise AnalysisError("empty file system")
    return max(counts) / mean, gini(counts)


@dataclass(frozen=True)
class SkewSummary:
    """One method's skew profile on one file system."""

    method_name: str
    expected_largest_response: float
    expected_load_factor: float
    worst_load_factor: float
    optimal_fraction: float

    def row(self) -> list[object]:
        return [
            self.method_name,
            round(self.expected_largest_response, 2),
            round(self.expected_load_factor, 3),
            round(self.worst_load_factor, 2),
            f"{100 * self.optimal_fraction:.1f}%",
        ]


def skew_summary(method: SeparableMethod, p: float = 0.5) -> SkewSummary:
    """Full skew profile: expectations, worst case and optimal fraction."""
    fs = method.filesystem
    evaluator = evaluator_for(method)
    expected_response = 0.0
    expected_factor = 0.0
    worst_factor = 1.0
    optimal = 0.0
    for pattern in all_patterns(fs.n_fields):
        weight = pattern_probability(pattern, fs.n_fields, p)
        factor = pattern_load_factor(method, pattern)
        worst_factor = max(worst_factor, factor)
        if weight:
            expected_response += weight * evaluator.largest_response(pattern)
            expected_factor += weight * factor
        if factor <= 1.0:
            optimal += pattern_probability(pattern, fs.n_fields, 0.5)
    return SkewSummary(
        method_name=method.name or type(method).__name__,
        expected_largest_response=expected_response,
        expected_load_factor=expected_factor,
        worst_load_factor=worst_factor,
        optimal_fraction=optimal,
    )
