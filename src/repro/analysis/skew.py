"""Load-skew metrics for allocations and query classes.

The paper's evaluation reports one skew statistic (the largest response
size).  Operators of a real array care about a few more, all derivable from
the same exact histograms:

* **load factor** of a query — largest response divided by the ideal
  ``ceil(|R(q)| / M)`` (1.0 means strict optimal),
* **expected largest response / load factor** under a pluggable
  :class:`~repro.analysis.query_model.QueryModel` — the paper's
  independence model with specification probability ``p`` by default, or
  an observed-mix model (:class:`~repro.adaptive.EmpiricalQueryModel`)
  via the ``model=`` argument,
* **static balance** of the bucket allocation itself (max/mean and Gini
  coefficient of device bucket counts).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.histograms import evaluator_for
from repro.analysis.query_model import IndependenceModel, QueryModel
from repro.distribution.base import DistributionMethod, SeparableMethod
from repro.errors import AnalysisError
from repro.query.patterns import all_patterns
from repro.util.numbers import ceil_div

__all__ = [
    "SkewSummary",
    "pattern_load_factor",
    "expected_largest_response",
    "expected_load_factor",
    "static_balance",
    "gini",
    "skew_summary",
]


def pattern_load_factor(method: SeparableMethod, pattern: frozenset[int]) -> float:
    """Largest response over the optimal floor for one pattern (>= 1.0)."""
    fs = method.filesystem
    qualified = math.prod(fs.field_sizes[i] for i in pattern)
    bound = ceil_div(qualified, fs.m)
    return evaluator_for(method).largest_response(pattern) / bound


def expected_largest_response(
    method: SeparableMethod, p: float = 0.5, model: QueryModel | None = None
) -> float:
    """E[max_i r_i(q)] under *model* (default: independence with prob. *p*).

    An explicit *model* overrides *p*; the sweep covers only the model's
    support, so an empirical model pays for its observed patterns alone.
    """
    fs = method.filesystem
    evaluator = evaluator_for(method)
    if model is None:
        model = IndependenceModel(p)
    total = 0.0
    for pattern in model.patterns(fs.n_fields):
        weight = model.pattern_weight(pattern, fs.n_fields)
        if weight:
            total += weight * evaluator.largest_response(pattern)
    return total


def expected_load_factor(
    method: SeparableMethod, p: float = 0.5, model: QueryModel | None = None
) -> float:
    """E[load factor] under *model*: 1.0 iff every weighted pattern is
    strict optimal (perfect optimality, restricted to the model's support).
    """
    fs = method.filesystem
    if model is None:
        model = IndependenceModel(p)
    total = 0.0
    for pattern in model.patterns(fs.n_fields):
        weight = model.pattern_weight(pattern, fs.n_fields)
        if weight:
            total += weight * pattern_load_factor(method, pattern)
    return total


def gini(values: list[int] | list[float]) -> float:
    """Gini coefficient of a non-negative distribution (0 = equal)."""
    if not values:
        raise AnalysisError("gini of an empty list")
    if any(v < 0 for v in values):
        raise AnalysisError("gini requires non-negative values")
    total = sum(values)
    if total == 0:
        return 0.0
    ordered = sorted(values)
    n = len(ordered)
    cumulative = 0.0
    for rank, value in enumerate(ordered, start=1):
        cumulative += rank * value
    return (2.0 * cumulative) / (n * total) - (n + 1.0) / n


def static_balance(method: DistributionMethod) -> tuple[float, float]:
    """(max/mean, gini) of the whole-grid device bucket counts.

    Enumerates the grid, so intended for analysis-scale file systems.
    """
    counts = [len(buckets) for buckets in method.distribute()]
    mean = sum(counts) / len(counts)
    if mean == 0:
        raise AnalysisError("empty file system")
    return max(counts) / mean, gini(counts)


@dataclass(frozen=True)
class SkewSummary:
    """One method's skew profile on one file system."""

    method_name: str
    expected_largest_response: float
    expected_load_factor: float
    worst_load_factor: float
    optimal_fraction: float

    def row(self) -> list[object]:
        return [
            self.method_name,
            round(self.expected_largest_response, 2),
            round(self.expected_load_factor, 3),
            round(self.worst_load_factor, 2),
            f"{100 * self.optimal_fraction:.1f}%",
        ]


def skew_summary(
    method: SeparableMethod, p: float = 0.5, model: QueryModel | None = None
) -> SkewSummary:
    """Full skew profile: expectations, worst case and optimal fraction.

    Expectations and ``optimal_fraction`` are weighted by *model*
    (default: independence with probability *p*); ``worst_load_factor``
    always sweeps all patterns — the worst case does not depend on how
    likely it is.
    """
    fs = method.filesystem
    evaluator = evaluator_for(method)
    if model is None:
        model = IndependenceModel(p)
    expected_response = 0.0
    expected_factor = 0.0
    worst_factor = 1.0
    optimal = 0.0
    for pattern in all_patterns(fs.n_fields):
        weight = model.pattern_weight(pattern, fs.n_fields)
        factor = pattern_load_factor(method, pattern)
        worst_factor = max(worst_factor, factor)
        if weight:
            expected_response += weight * evaluator.largest_response(pattern)
            expected_factor += weight * factor
            if factor <= 1.0:
                optimal += weight
    return SkewSummary(
        method_name=method.name or type(method).__name__,
        expected_largest_response=expected_response,
        expected_load_factor=expected_factor,
        worst_load_factor=worst_factor,
        optimal_fraction=optimal,
    )
