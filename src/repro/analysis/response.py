"""Largest-response-size analysis (paper section 5.2.1, Tables 7-9).

The paper's response-time proxy for symmetric parallel devices is the
*largest response size* ``max_i r_i(q)``; each table entry averages it over
every partial match query with ``k`` unspecified fields.  For separable
methods the value is shared by all queries of one pattern, so the average
reduces to a pattern sweep with each pattern weighted by its number of
concrete queries (``prod`` of the *specified* field sizes — the weights are
equal only when all fields have the same size, which holds in Tables 7-8 but
not in Table 9).
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

from repro.distribution.base import DistributionMethod, SeparableMethod
from repro.errors import AnalysisError
from repro.hashing.fields import FileSystem
from repro.query.patterns import patterns_with_k_unspecified, queries_for_pattern
from repro.util.numbers import ceil_div
from repro.util.tables import format_table

__all__ = [
    "average_largest_response",
    "optimal_largest_response",
    "largest_response_table",
    "ResponseTable",
]

#: Work budget for brute-forcing non-separable methods.
DEFAULT_WORK_LIMIT = 20_000_000


def _pattern_weight(filesystem: FileSystem, pattern: frozenset[int], weighted: bool) -> int:
    """Number of concrete queries sharing *pattern* (or 1 when unweighted)."""
    if not weighted:
        return 1
    sizes = filesystem.field_sizes
    return math.prod(
        sizes[i] for i in range(filesystem.n_fields) if i not in pattern
    )


def average_largest_response(
    method: DistributionMethod,
    k: int,
    weighted: bool = True,
    work_limit: int = DEFAULT_WORK_LIMIT,
) -> float:
    """Average largest response size over all queries with *k* unspecified.

    Exact.  Separable methods use the convolution engine; others enumerate
    queries and buckets under *work_limit*.
    """
    fs = method.filesystem
    total = 0.0
    weight_sum = 0
    if isinstance(method, SeparableMethod):
        from repro.analysis.histograms import evaluator_for

        evaluator = evaluator_for(method)
        for pattern in patterns_with_k_unspecified(fs.n_fields, k):
            weight = _pattern_weight(fs, pattern, weighted)
            total += weight * evaluator.largest_response(pattern)
            weight_sum += weight
        return total / weight_sum
    for pattern in patterns_with_k_unspecified(fs.n_fields, k):
        qualified = math.prod(fs.field_sizes[i] for i in pattern)
        combos = fs.bucket_count // qualified
        if qualified * combos > work_limit:
            raise AnalysisError(
                f"brute-force sweep for pattern {sorted(pattern)} needs "
                f"{qualified * combos} evaluations (> {work_limit})"
            )
        for query in queries_for_pattern(fs, pattern):
            total += method.largest_response(query)
            weight_sum += 1
    return total / weight_sum


def optimal_largest_response(
    filesystem: FileSystem, k: int, weighted: bool = True
) -> float:
    """The paper's "Optimal" column: average of ``ceil(|R(q)| / M)``.

    This is the information-theoretic floor any distribution must respect.
    """
    total = 0.0
    weight_sum = 0
    for pattern in patterns_with_k_unspecified(filesystem.n_fields, k):
        qualified = math.prod(filesystem.field_sizes[i] for i in pattern)
        weight = _pattern_weight(filesystem, pattern, weighted)
        total += weight * ceil_div(qualified, filesystem.m)
        weight_sum += weight
    return total / weight_sum


@dataclass(frozen=True)
class ResponseTable:
    """One reproduced response-size table (paper Tables 7-9 layout).

    ``rows[i]`` corresponds to ``ks[i]`` unspecified fields and holds one
    average per method (column order matches ``columns``), with the optimal
    floor last.
    """

    title: str
    filesystem: FileSystem
    ks: tuple[int, ...]
    columns: tuple[str, ...]
    rows: tuple[tuple[float, ...], ...]

    def column(self, name: str) -> tuple[float, ...]:
        """All row values of one named column."""
        try:
            index = self.columns.index(name)
        except ValueError:
            raise AnalysisError(
                f"no column {name!r}; columns are {self.columns}"
            ) from None
        return tuple(row[index] for row in self.rows)

    def render(self) -> str:
        """Plain-text rendering in the paper's layout."""
        headers = ["k unspecified", *self.columns]
        body = [[k, *row] for k, row in zip(self.ks, self.rows)]
        return format_table(headers, body, title=self.title)


def largest_response_table(
    filesystem: FileSystem,
    methods: Mapping[str, DistributionMethod],
    ks: Sequence[int] | Iterable[int],
    title: str = "",
    weighted: bool = True,
) -> ResponseTable:
    """Compute a full Tables-7-9-style comparison.

    *methods* maps column names to instantiated distribution methods (all on
    *filesystem*); an ``Optimal`` column is appended automatically.
    """
    ks = tuple(ks)
    for name, method in methods.items():
        if method.filesystem != filesystem:
            raise AnalysisError(
                f"method {name!r} was built on {method.filesystem.describe()}, "
                f"table targets {filesystem.describe()}"
            )
    rows = []
    for k in ks:
        row = [
            average_largest_response(method, k, weighted=weighted)
            for method in methods.values()
        ]
        row.append(optimal_largest_response(filesystem, k, weighted=weighted))
        rows.append(tuple(row))
    return ResponseTable(
        title=title or f"Average largest response size ({filesystem.describe()})",
        filesystem=filesystem,
        ks=ks,
        columns=(*methods.keys(), "Optimal"),
        rows=tuple(rows),
    )
