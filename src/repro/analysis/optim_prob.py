"""Probability of strict optimality (paper section 5.1, Figures 1-4).

Under the paper's query model — every field independently specified with the
same probability ``p`` — the probability that a random partial match query is
strict optimal is a weighted fraction of the ``2**n`` specification patterns
(``p = 0.5`` makes all patterns equally likely, which is how the figures'
"percentage of strict optimal distribution for all possible partial match
queries" reads).

The paper computes the figures *from the sufficient conditions* of each
method, not from ground truth; we provide both:

* :func:`sufficient_optimality_series` — FX's section 4.2 rule vs Modulo's
  [DuSo82] condition, reproducing the figures,
* :func:`exact_optimality_series` — exact per-pattern optimality via the
  convolution engine, quantifying how conservative the conditions are.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

from repro.core.fx import FXDistribution
from repro.core.theorems import (
    fx_strict_optimal_sufficient,
    modulo_strict_optimal_sufficient,
)
from repro.distribution.base import SeparableMethod
from repro.distribution.modulo import ModuloDistribution
from repro.errors import AnalysisError
from repro.hashing.fields import FileSystem
from repro.query.patterns import SpecPattern, all_patterns

__all__ = [
    "pattern_probability",
    "optimal_pattern_fraction",
    "fx_sufficient_fraction",
    "modulo_sufficient_fraction",
    "exact_fraction",
    "OptimalitySeries",
    "sufficient_optimality_series",
    "exact_optimality_series",
]


def pattern_probability(pattern: SpecPattern, n_fields: int, p: float) -> float:
    """Probability of one specification pattern under the independence model.

    *p* is the per-field specification probability; the pattern lists the
    *unspecified* fields.
    """
    if not 0.0 <= p <= 1.0:
        raise AnalysisError(f"specification probability {p} outside [0, 1]")
    unspecified = len(pattern)
    return (p ** (n_fields - unspecified)) * ((1.0 - p) ** unspecified)


def optimal_pattern_fraction(
    n_fields: int,
    predicate: Callable[[SpecPattern], bool],
    p: float = 0.5,
) -> float:
    """Probability that a random query's pattern satisfies *predicate*.

    With ``p = 0.5`` this is the plain fraction of optimal patterns.
    """
    total = 0.0
    for pattern in all_patterns(n_fields):
        if predicate(pattern):
            total += pattern_probability(pattern, n_fields, p)
    return total


def fx_sufficient_fraction(fx: FXDistribution, p: float = 0.5) -> float:
    """Fraction of queries certified optimal by the section 4.2 rule."""
    return optimal_pattern_fraction(
        fx.filesystem.n_fields,
        lambda pattern: fx_strict_optimal_sufficient(fx, pattern),
        p=p,
    )


def modulo_sufficient_fraction(filesystem: FileSystem, p: float = 0.5) -> float:
    """Fraction of queries certified optimal by Modulo's [DuSo82] condition."""
    return optimal_pattern_fraction(
        filesystem.n_fields,
        lambda pattern: modulo_strict_optimal_sufficient(filesystem, pattern),
        p=p,
    )


def exact_fraction(method: SeparableMethod, p: float = 0.5) -> float:
    """Exact fraction of strict-optimal queries (ground truth)."""
    from repro.analysis.histograms import evaluator_for

    evaluator = evaluator_for(method)
    return optimal_pattern_fraction(
        method.filesystem.n_fields, evaluator.is_strict_optimal, p=p
    )


@dataclass(frozen=True)
class OptimalitySeries:
    """One reproduced figure: percentage of optimal queries per x value.

    ``x`` is the paper's abscissa ("number of fields whose sizes are less
    than M"); each named series holds percentages in [0, 100].
    """

    title: str
    x_label: str
    x: tuple[int, ...]
    series: dict[str, tuple[float, ...]]

    def render(self) -> str:
        from repro.util.tables import format_table

        headers = [self.x_label, *self.series.keys()]
        rows = [
            [x_value, *(values[i] for values in self.series.values())]
            for i, x_value in enumerate(self.x)
        ]
        return format_table(headers, rows, title=self.title)


def sufficient_optimality_series(
    filesystems: Sequence[FileSystem],
    fx_builder: Callable[[FileSystem], FXDistribution],
    x_values: Iterable[int] | None = None,
    p: float = 0.5,
    title: str = "",
) -> OptimalitySeries:
    """Reproduce one figure from the methods' sufficient conditions.

    *filesystems* is the sweep (one per x value, typically with an
    increasing count of small fields); *fx_builder* instantiates the FX
    method under test for each.
    """
    x = tuple(x_values) if x_values is not None else tuple(range(len(filesystems)))
    if len(x) != len(filesystems):
        raise AnalysisError(f"{len(x)} x values for {len(filesystems)} file systems")
    fd = []
    md = []
    for fs in filesystems:
        fd.append(100.0 * fx_sufficient_fraction(fx_builder(fs), p=p))
        md.append(100.0 * modulo_sufficient_fraction(fs, p=p))
    return OptimalitySeries(
        title=title or "Percentage of strict optimal distribution (sufficient)",
        x_label="fields with F < M",
        x=x,
        series={"FD (FX)": tuple(fd), "MD (Modulo)": tuple(md)},
    )


def exact_optimality_series(
    filesystems: Sequence[FileSystem],
    fx_builder: Callable[[FileSystem], FXDistribution],
    x_values: Iterable[int] | None = None,
    p: float = 0.5,
    title: str = "",
) -> OptimalitySeries:
    """Ground-truth companion of :func:`sufficient_optimality_series`."""
    x = tuple(x_values) if x_values is not None else tuple(range(len(filesystems)))
    if len(x) != len(filesystems):
        raise AnalysisError(f"{len(x)} x values for {len(filesystems)} file systems")
    fd = []
    md = []
    for fs in filesystems:
        fd.append(100.0 * exact_fraction(fx_builder(fs), p=p))
        md.append(100.0 * exact_fraction(ModuloDistribution(fs), p=p))
    return OptimalitySeries(
        title=title or "Percentage of strict optimal distribution (exact)",
        x_label="fields with F < M",
        x=x,
        series={"FD (FX)": tuple(fd), "MD (Modulo)": tuple(md)},
    )
