"""Exact analysis and inverse mapping for box queries.

The convolution reduction of :mod:`repro.analysis.histograms` never used
the fact that an unspecified field ranges over its *whole* domain — only
that fields are independent.  For a box query the per-field factor is the
contribution histogram restricted to the allowed values, so the per-device
histogram is still one exact group convolution, and the strict-optimality
definition (no device above ``ceil(|box| / M)``) carries over verbatim.

Inverse mapping likewise: enumerate all constrained-but-one fields over
their allowed sets, solve the last field's contribution, and intersect the
solutions with its allowed set.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.distribution.base import SeparableMethod
from repro.errors import AnalysisError
from repro.query.box import BoxQuery
from repro.util.numbers import ceil_div

__all__ = [
    "box_response_histogram",
    "box_largest_response",
    "box_is_strict_optimal",
    "box_sufficient_optimal",
    "box_qualified_on_device",
]


def _restricted_histogram(
    method: SeparableMethod, field_index: int, values: tuple[int, ...]
) -> np.ndarray:
    """Contribution histogram of one field over its allowed values only."""
    m = method.filesystem.m
    histogram = np.zeros(m, dtype=np.int64)
    for value in values:
        histogram[method.field_contribution(field_index, value)] += 1
    return histogram


def box_response_histogram(
    method: SeparableMethod, box: BoxQuery
) -> list[int]:
    """Exact per-device counts of the box's qualified buckets."""
    if box.filesystem != method.filesystem:
        raise AnalysisError("box query targets a different file system")
    from repro.analysis.histograms import cyclic_convolve, xor_convolve

    m = method.filesystem.m
    convolve = xor_convolve if method.combine == "xor" else cyclic_convolve
    histogram = np.zeros(m, dtype=np.int64)
    histogram[0] = 1
    for field_index, values in enumerate(box.allowed):
        histogram = convolve(
            histogram, _restricted_histogram(method, field_index, values)
        )
    return [int(v) for v in histogram]


def box_largest_response(method: SeparableMethod, box: BoxQuery) -> int:
    """``max_i r_i`` over the box's qualified buckets."""
    return max(box_response_histogram(method, box))


def box_is_strict_optimal(method: SeparableMethod, box: BoxQuery) -> bool:
    """The paper's optimality bound, applied to the general query class."""
    bound = ceil_div(box.qualified_count, method.filesystem.m)
    return box_largest_response(method, box) <= bound


def box_sufficient_optimal(method: SeparableMethod, box: BoxQuery) -> bool:
    """A Theorem-2/3-style *sufficient* condition for box optimality.

    If any single field's restricted contribution histogram is uniform over
    the devices, the whole convolution is uniform, hence strict optimal.
    For FX with identity on a field of size ``F >= M`` this covers every
    aligned allowed block whose length is a multiple of ``M`` — the box
    analogue of Theorem 2.  Sound but far from complete: the exact check is
    :func:`box_is_strict_optimal`.
    """
    if box.filesystem != method.filesystem:
        raise AnalysisError("box query targets a different file system")
    for field_index, values in enumerate(box.allowed):
        histogram = _restricted_histogram(method, field_index, values)
        if histogram[0] > 0 and bool(np.all(histogram == histogram[0])):
            return True
    return False


def box_qualified_on_device(
    method: SeparableMethod, device: int, box: BoxQuery
):
    """Yield the box's qualified buckets residing on *device*.

    Same output-sensitive strategy as partial match inverse mapping:
    enumerate every constrained field but the one with the largest allowed
    set, solve that field's contribution and intersect with its set.
    """
    fs = method.filesystem
    if box.filesystem != fs:
        raise AnalysisError("box query targets a different file system")
    if not 0 <= device < fs.m:
        raise AnalysisError(f"device {device} outside [0, {fs.m})")
    m = fs.m

    solve_field = max(
        range(fs.n_fields), key=lambda i: (len(box.allowed[i]), i)
    )
    other_fields = [i for i in range(fs.n_fields) if i != solve_field]
    solve_index: dict[int, list[int]] = {}
    for value in box.allowed[solve_field]:
        contribution = method.field_contribution(solve_field, value)
        solve_index.setdefault(contribution, []).append(value)
    tables = {
        i: [method.field_contribution(i, v) for v in box.allowed[i]]
        for i in other_fields
    }

    axes = [range(len(box.allowed[i])) for i in other_fields]
    for choice in itertools.product(*axes):
        if method.combine == "xor":
            acc = 0
            for i, position in zip(other_fields, choice):
                acc ^= tables[i][position]
            needed = acc ^ device
        else:
            acc = 0
            for i, position in zip(other_fields, choice):
                acc += tables[i][position]
            needed = (device - acc) % m
        for solve_value in solve_index.get(needed, ()):
            bucket: list[int] = [0] * fs.n_fields
            for i, position in zip(other_fields, choice):
                bucket[i] = box.allowed[i][position]
            bucket[solve_field] = solve_value
            yield tuple(bucket)
