"""Adversarial workload search: how bad can one query get?

Averages hide tails.  For partial match the worst *pattern* falls out of
the optimality census, but for box queries the space is exponential, so
this module searches it: steepest-ascent hill climbing over per-field
ranges (each field carries a ``(start, width)`` window or is left
unconstrained), maximising the load factor
``largest_response / ceil(|box| / M)``.

Deterministic given the seed; restarts escape local maxima.  Used to
compare methods by their *worst found* range query, complementing the
average-case numbers in ``benchmarks/bench_box_queries.py``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.analysis.box import box_largest_response
from repro.distribution.base import SeparableMethod
from repro.errors import AnalysisError
from repro.query.box import BoxQuery
from repro.util.numbers import ceil_div

__all__ = ["AdversarialBox", "worst_box_search", "load_factor"]


def load_factor(method: SeparableMethod, box: BoxQuery) -> float:
    """``largest_response / ceil(|box| / M)`` — 1.0 means strict optimal."""
    bound = ceil_div(box.qualified_count, method.filesystem.m)
    return box_largest_response(method, box) / bound


@dataclass
class AdversarialBox:
    """Worst box found for one method."""

    box: BoxQuery
    factor: float
    evaluations: int
    history: list[tuple[int, float]] = field(default_factory=list)


# A window is (start, width); width == size means the field is unconstrained.
_Window = tuple[int, int]


def _windows_to_box(method: SeparableMethod, windows: list[_Window]) -> BoxQuery:
    allowed = []
    for size, (start, width) in zip(method.filesystem.field_sizes, windows):
        allowed.append(tuple(range(start, start + width)))
    return BoxQuery(method.filesystem, tuple(allowed))


def _neighbours(size: int, window: _Window) -> list[_Window]:
    """Single-field moves: shift by one, grow/shrink by one."""
    start, width = window
    candidates = [
        (start - 1, width),
        (start + 1, width),
        (start, width - 1),
        (start, width + 1),
        (start - 1, width + 1),
    ]
    return [
        (s, w)
        for s, w in candidates
        if 1 <= w <= size and 0 <= s and s + w <= size
    ]


def worst_box_search(
    method: SeparableMethod,
    restarts: int = 5,
    seed: int = 0,
) -> AdversarialBox:
    """Hill-climb range windows to maximise the load factor.

    Each restart draws a random window per field, then repeatedly applies
    the best single-field move until no move improves.  The incumbent over
    all restarts is returned with its search history.

    >>> from repro import FileSystem, ModuloDistribution
    >>> fs = FileSystem.of(8, 8, m=8)
    >>> result = worst_box_search(ModuloDistribution(fs), restarts=2)
    >>> result.factor >= 1.0
    True
    """
    if restarts < 1:
        raise AnalysisError("need at least one restart")
    fs = method.filesystem
    rng = random.Random(seed)

    best: AdversarialBox | None = None
    evaluations = 0
    history: list[tuple[int, float]] = []

    def evaluate(windows: list[_Window]) -> float:
        nonlocal evaluations, best
        box = _windows_to_box(method, windows)
        factor = load_factor(method, box)
        evaluations += 1
        if best is None or factor > best.factor:
            best = AdversarialBox(
                box=box, factor=factor, evaluations=evaluations
            )
            history.append((evaluations, factor))
        return factor

    for __ in range(restarts):
        windows: list[_Window] = []
        for size in fs.field_sizes:
            width = rng.randint(1, size)
            start = rng.randint(0, size - width)
            windows.append((start, width))
        current = evaluate(windows)
        improved = True
        while improved:
            improved = False
            best_move: tuple[int, _Window] | None = None
            best_score = current
            for i, size in enumerate(fs.field_sizes):
                for candidate in _neighbours(size, windows[i]):
                    trial = list(windows)
                    trial[i] = candidate
                    score = evaluate(trial)
                    if score > best_score:
                        best_score = score
                        best_move = (i, candidate)
            if best_move is not None:
                windows[best_move[0]] = best_move[1]
                current = best_score
                improved = True
    assert best is not None
    best.evaluations = evaluations
    best.history = history
    return best
