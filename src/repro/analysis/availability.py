"""Availability analysis for chained replica placement.

With one backup on the next device, data survives any failure set that
contains no *adjacent pair* (cyclically, at the replica offset).  This
module provides the combinatorics and expectations an operator needs:

* :func:`survivable` — does a concrete failure set lose data?
* :func:`count_survivable_sets` — how many k-failure sets are survivable
  (via the classic cycle-independent-set count),
* :func:`survival_probability` — probability that k random simultaneous
  failures lose nothing,
* :func:`expected_degraded_load_factor` — the read-load multiplier on the
  hottest device with one device down (2.0 under chained placement: the
  neighbour absorbs the whole failed share),
* :func:`reroute_histogram` / :func:`response_time_under_failure` /
  :func:`degraded_response_curve` — the runtime-facing quantities: what a
  query's per-device load, modelled response time and served fraction
  become once a failure set is applied (with or without chained replicas).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from itertools import combinations, islice

from repro.distribution.base import DistributionMethod
from repro.distribution.replicated import ChainedReplicaScheme
from repro.errors import AnalysisError
from repro.storage.costs import DeviceCostModel, UnitCostModel

__all__ = [
    "survivable",
    "count_survivable_sets",
    "survival_probability",
    "expected_degraded_load_factor",
    "reroute_histogram",
    "response_time_under_failure",
    "DegradedResponsePoint",
    "degraded_response_curve",
]


def survivable(scheme: ChainedReplicaScheme, failed: set[int]) -> bool:
    """True when no bucket has both its replicas in *failed*.

    A bucket's replicas are ``(d, d + offset mod M)``; every device is a
    primary for some bucket whenever the base method is surjective (all
    separable methods here are), so the condition reduces to: no failed
    device whose offset-neighbour is also failed.
    """
    m = scheme.filesystem.m
    for device in failed:
        if not 0 <= device < m:
            raise AnalysisError(f"no device {device}")
        if (device + scheme.offset) % m in failed:
            return False
    return True


def count_survivable_sets(m: int, k: int) -> int:
    """Number of k-subsets of a length-m cycle with no adjacent pair.

    Classic identity: ``m / (m - k) * C(m - k, k)`` for ``k < m`` (and 0
    for ``k > m/2`` automatically).  Applies to offset 1; any offset
    coprime to ``m`` relabels the cycle, so the count is the same.

    >>> count_survivable_sets(8, 2)
    20
    """
    if m < 1 or k < 0:
        raise AnalysisError("need m >= 1, k >= 0")
    if k == 0:
        return 1
    if k > m // 2:
        return 0
    return m * math.comb(m - k, k) // (m - k)


def survival_probability(scheme: ChainedReplicaScheme, k: int) -> float:
    """P(no data loss | exactly k uniformly-random devices failed)."""
    m = scheme.filesystem.m
    if not 0 <= k <= m:
        raise AnalysisError(f"k={k} outside [0, {m}]")
    if math.gcd(scheme.offset, m) == 1:
        good = count_survivable_sets(m, k)
    else:
        # offset shares a factor with M: the replica graph splits into
        # gcd cycles; count by brute force (M is small in any deployment
        # where this matters analytically).
        if math.comb(m, k) > 5_000_000:
            raise AnalysisError(
                "brute-force counting too large for this M and k"
            )
        good = sum(
            1
            for failed in combinations(range(m), k)
            if survivable(scheme, set(failed))
        )
    return good / math.comb(m, k)


def expected_degraded_load_factor(scheme: ChainedReplicaScheme) -> float:
    """Hottest-device read multiplier with one failed device.

    Chained placement reroutes the failed device's entire primary share to
    one neighbour.  Under a balanced base distribution every device holds
    ``1/M`` of the reads, so the neighbour serves ``2/M`` — a 2x local
    multiplier independent of ``M`` (full mirroring onto a dedicated pair
    would also be 2x but on *every* query even without failures; striping
    the backup copies differently is the classic refinement).
    """
    if scheme.filesystem.m < 2:
        raise AnalysisError("need at least two devices")
    return 2.0


# ----------------------------------------------------------------------
# Response time and completeness under failures (the runtime's analytics)
# ----------------------------------------------------------------------
def reroute_histogram(
    histogram: list[int],
    failed: set[int],
    offset: int | None = None,
) -> tuple[list[int], int]:
    """Apply a failure set to a per-device response histogram.

    With chained replicas (*offset* given) each failed device's load moves
    to its backup ``(d + offset) mod M`` when that backup is alive;
    without, or when the backup is failed too, the load is *lost*.
    Returns ``(degraded histogram, lost bucket count)``.

    >>> reroute_histogram([2, 2, 2, 2], {1}, offset=1)
    ([2, 0, 4, 2], 0)
    >>> reroute_histogram([2, 2, 2, 2], {1})
    ([2, 0, 2, 2], 2)
    """
    m = len(histogram)
    if any(not 0 <= d < m for d in failed):
        raise AnalysisError(f"failure set {sorted(failed)} outside [0, {m})")
    degraded = list(histogram)
    lost = 0
    for device in sorted(failed):
        load = degraded[device]
        if load == 0:
            continue
        degraded[device] = 0
        backup = None if offset is None else (device + offset) % m
        if backup is None or backup in failed:
            lost += load
        else:
            degraded[backup] += load
    return degraded, lost


def response_time_under_failure(
    method: DistributionMethod,
    query,
    failed: set[int],
    scheme: ChainedReplicaScheme | None = None,
    cost_model: DeviceCostModel | None = None,
) -> tuple[float, float]:
    """Modelled (response time, completeness) of one query under failures.

    Response time is the paper's max-over-devices service time, computed
    on the degraded histogram; *scheme* (built over *method*) enables the
    chained failover re-route.
    """
    if scheme is not None and scheme.base is not method:
        raise AnalysisError(
            "the replica scheme must be built over the analysed method"
        )
    cost_model = cost_model or UnitCostModel()
    histogram = method.response_histogram(query)
    qualified = sum(histogram)
    degraded, lost = reroute_histogram(
        histogram, set(failed), None if scheme is None else scheme.offset
    )
    response = max(
        (cost_model.service_time(count) for count in degraded), default=0.0
    )
    completeness = 1.0 - lost / qualified if qualified else 1.0
    return response, completeness


@dataclass(frozen=True)
class DegradedResponsePoint:
    """One point of a degraded-operation curve: k failures and the means."""

    k: int
    survival: float
    mean_response_ms: float
    mean_completeness: float

    def row(self) -> list:
        return [
            self.k,
            round(self.survival, 4),
            round(self.mean_response_ms, 2),
            round(self.mean_completeness, 4),
        ]


def _failure_sets(m: int, k: int, max_sets: int, seed: int):
    """All k-subsets when few, else a seeded sample of distinct ones."""
    total = math.comb(m, k)
    if total <= max_sets:
        return [set(s) for s in combinations(range(m), k)]
    rng = random.Random(seed)
    seen: set[frozenset[int]] = set()
    while len(seen) < max_sets:
        seen.add(frozenset(rng.sample(range(m), k)))
    return [set(s) for s in islice(sorted(seen, key=sorted), max_sets)]


def degraded_response_curve(
    method: DistributionMethod,
    queries,
    k_values,
    scheme: ChainedReplicaScheme | None = None,
    cost_model: DeviceCostModel | None = None,
    max_sets: int = 20,
    seed: int = 0,
) -> list[DegradedResponsePoint]:
    """Mean response time and completeness as failures accumulate.

    For each ``k`` the failure sets are enumerated exhaustively when there
    are at most *max_sets* of them and sampled (seeded) otherwise; every
    set is crossed with every query in *queries*.  ``survival`` is the
    exact no-data-loss probability under chained replication, and the
    all-or-nothing ``k == 0`` indicator without replicas.
    """
    m = method.filesystem.m
    queries = list(queries)
    if not queries:
        raise AnalysisError("need at least one query")
    points = []
    for k in k_values:
        if not 0 <= k <= m:
            raise AnalysisError(f"k={k} outside [0, {m}]")
        if scheme is not None:
            survival = survival_probability(scheme, k)
        else:
            survival = 1.0 if k == 0 else 0.0
        responses: list[float] = []
        completenesses: list[float] = []
        for failure_set in _failure_sets(m, k, max_sets, seed):
            for query in queries:
                response, completeness = response_time_under_failure(
                    method, query, failure_set, scheme, cost_model
                )
                responses.append(response)
                completenesses.append(completeness)
        points.append(
            DegradedResponsePoint(
                k=k,
                survival=survival,
                mean_response_ms=sum(responses) / len(responses),
                mean_completeness=sum(completenesses) / len(completenesses),
            )
        )
    return points
