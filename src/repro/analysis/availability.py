"""Availability analysis for chained replica placement.

With one backup on the next device, data survives any failure set that
contains no *adjacent pair* (cyclically, at the replica offset).  This
module provides the combinatorics and expectations an operator needs:

* :func:`survivable` — does a concrete failure set lose data?
* :func:`count_survivable_sets` — how many k-failure sets are survivable
  (via the classic cycle-independent-set count),
* :func:`survival_probability` — probability that k random simultaneous
  failures lose nothing,
* :func:`expected_degraded_load_factor` — the read-load multiplier on the
  hottest device with one device down (2.0 under chained placement: the
  neighbour absorbs the whole failed share).
"""

from __future__ import annotations

import math
from itertools import combinations

from repro.distribution.replicated import ChainedReplicaScheme
from repro.errors import AnalysisError

__all__ = [
    "survivable",
    "count_survivable_sets",
    "survival_probability",
    "expected_degraded_load_factor",
]


def survivable(scheme: ChainedReplicaScheme, failed: set[int]) -> bool:
    """True when no bucket has both its replicas in *failed*.

    A bucket's replicas are ``(d, d + offset mod M)``; every device is a
    primary for some bucket whenever the base method is surjective (all
    separable methods here are), so the condition reduces to: no failed
    device whose offset-neighbour is also failed.
    """
    m = scheme.filesystem.m
    for device in failed:
        if not 0 <= device < m:
            raise AnalysisError(f"no device {device}")
        if (device + scheme.offset) % m in failed:
            return False
    return True


def count_survivable_sets(m: int, k: int) -> int:
    """Number of k-subsets of a length-m cycle with no adjacent pair.

    Classic identity: ``m / (m - k) * C(m - k, k)`` for ``k < m`` (and 0
    for ``k > m/2`` automatically).  Applies to offset 1; any offset
    coprime to ``m`` relabels the cycle, so the count is the same.

    >>> count_survivable_sets(8, 2)
    20
    """
    if m < 1 or k < 0:
        raise AnalysisError("need m >= 1, k >= 0")
    if k == 0:
        return 1
    if k > m // 2:
        return 0
    return m * math.comb(m - k, k) // (m - k)


def survival_probability(scheme: ChainedReplicaScheme, k: int) -> float:
    """P(no data loss | exactly k uniformly-random devices failed)."""
    m = scheme.filesystem.m
    if not 0 <= k <= m:
        raise AnalysisError(f"k={k} outside [0, {m}]")
    if math.gcd(scheme.offset, m) == 1:
        good = count_survivable_sets(m, k)
    else:
        # offset shares a factor with M: the replica graph splits into
        # gcd cycles; count by brute force (M is small in any deployment
        # where this matters analytically).
        if math.comb(m, k) > 5_000_000:
            raise AnalysisError(
                "brute-force counting too large for this M and k"
            )
        good = sum(
            1
            for failed in combinations(range(m), k)
            if survivable(scheme, set(failed))
        )
    return good / math.comb(m, k)


def expected_degraded_load_factor(scheme: ChainedReplicaScheme) -> float:
    """Hottest-device read multiplier with one failed device.

    Chained placement reroutes the failed device's entire primary share to
    one neighbour.  Under a balanced base distribution every device holds
    ``1/M`` of the reads, so the neighbour serves ``2/M`` — a 2x local
    multiplier independent of ``M`` (full mirroring onto a dedicated pair
    would also be 2x but on *every* query even without failures; striping
    the backup copies differently is the classic refinement).
    """
    if scheme.filesystem.m < 2:
        raise AnalysisError("need at least two devices")
    return 2.0
