"""CPU cost model for address computation (paper section 5.2.2).

For main-memory databases the paper argues that bucket-distribution and
inverse-mapping arithmetic dominates, and compares methods by instruction
cycle counts on an MC68000 (XOR 8, ADD 4, AND 4, n-bit shift 6 + 2n,
multiply 70 cycles), concluding FX costs about a third of GDM.

The model mirrors the paper's optimised code sketches:

* FX — each U/IU1/IU2 multiplication is by a power of two, so it compiles to
  a shift; the fold is ``n - 1`` XORs and ``T_M`` is one AND.
* GDM — multipliers are odd/prime, so each field needs a true multiply;
  ``n - 1`` ADDs and one AND (modulo by power-of-two M).
* Modulo — ``n - 1`` ADDs and one AND.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.fx import FXDistribution
from repro.core.transforms import (
    FieldTransform,
    IU1Transform,
    IU2Transform,
    IdentityTransform,
    UTransform,
)
from repro.distribution.base import DistributionMethod
from repro.distribution.gdm import GDMDistribution
from repro.distribution.modulo import ModuloDistribution
from repro.errors import AnalysisError
from repro.util.numbers import ilog2

__all__ = ["InstructionCosts", "CYCLE_TABLES", "CpuCostModel"]


@dataclass(frozen=True)
class InstructionCosts:
    """Register-to-register cycle counts of one processor.

    ``shift(bits)`` models a variable shift as ``shift_base +
    shift_per_bit * bits`` (the MC68000's ``6 + 2n``).
    """

    name: str
    xor: int
    add: int
    and_: int
    mul: int
    shift_base: int
    shift_per_bit: int

    def shift(self, bits: int) -> int:
        if bits < 0:
            raise AnalysisError(f"negative shift width {bits}")
        return self.shift_base + self.shift_per_bit * bits


#: Cycle tables quoted (MC68000) or approximated (80286) by the paper.
CYCLE_TABLES: dict[str, InstructionCosts] = {
    "mc68000": InstructionCosts(
        name="MC68000", xor=8, add=4, and_=4, mul=70, shift_base=6, shift_per_bit=2
    ),
    # 80286 register-op timings; the paper notes the inter-operation ratios
    # are "almost similar" to the 68000's.
    "i80286": InstructionCosts(
        name="i80286", xor=2, add=2, and_=2, mul=21, shift_base=5, shift_per_bit=1
    ),
}


class CpuCostModel:
    """Cycle-count estimates for the distribution methods of this library.

    >>> from repro.hashing.fields import FileSystem
    >>> fs = FileSystem.of(8, 8, 8, m=32)
    >>> model = CpuCostModel.for_processor("mc68000")
    >>> fx = FXDistribution(fs)
    >>> gdm = GDMDistribution(fs, multipliers=(2, 3, 5))
    >>> model.address_cycles(fx) < model.address_cycles(gdm)
    True
    """

    def __init__(self, costs: InstructionCosts):
        self.costs = costs

    @classmethod
    def for_processor(cls, name: str) -> "CpuCostModel":
        try:
            return cls(CYCLE_TABLES[name])
        except KeyError:
            raise AnalysisError(
                f"unknown processor {name!r}; known: {sorted(CYCLE_TABLES)}"
            ) from None

    # ------------------------------------------------------------------
    # Per-transform costs
    # ------------------------------------------------------------------
    def transform_cycles(self, transform: FieldTransform) -> int:
        """Cycles to compute ``X_j(J_j)`` from a register-resident value."""
        costs = self.costs
        if isinstance(transform, IdentityTransform):
            return 0
        if isinstance(transform, UTransform):
            return costs.shift(ilog2(transform.d1))
        if isinstance(transform, IU2Transform):
            cycles = costs.shift(ilog2(transform.d1)) + costs.xor
            if transform.d2:
                cycles += costs.shift(ilog2(transform.d2)) + costs.xor
            return cycles
        if isinstance(transform, IU1Transform):
            return costs.shift(ilog2(transform.d1)) + costs.xor
        raise AnalysisError(
            f"no cost model for transform {type(transform).__name__}"
        )

    # ------------------------------------------------------------------
    # Per-method address computation
    # ------------------------------------------------------------------
    def address_cycles(self, method: DistributionMethod) -> int:
        """Cycles to map one bucket address to its device."""
        costs = self.costs
        n = method.filesystem.n_fields
        if isinstance(method, FXDistribution):
            transform_total = sum(
                self.transform_cycles(t) for t in method.transforms
            )
            return transform_total + (n - 1) * costs.xor + costs.and_
        if isinstance(method, GDMDistribution):
            return n * costs.mul + (n - 1) * costs.add + costs.and_
        if isinstance(method, ModuloDistribution):
            return (n - 1) * costs.add + costs.and_
        raise AnalysisError(
            f"no cost model for method {type(method).__name__}"
        )

    def inverse_step_cycles(self, method: DistributionMethod) -> int:
        """Cycles to solve the last unspecified field for one enumeration
        step of inverse mapping (section 5.2's other fast path).

        FX solves by one XOR plus an inverse transform (shifts/XORs); GDM
        needs a multiply by the precomputed modular inverse; Modulo one
        subtract (modelled as an add) — each followed by the ``T_M`` AND.
        """
        costs = self.costs
        if isinstance(method, FXDistribution):
            worst_transform = max(
                (self.transform_cycles(t) for t in method.transforms),
                default=0,
            )
            return costs.xor + worst_transform + costs.and_
        if isinstance(method, GDMDistribution):
            return costs.add + costs.mul + costs.and_
        if isinstance(method, ModuloDistribution):
            return costs.add + costs.and_
        raise AnalysisError(
            f"no cost model for method {type(method).__name__}"
        )

    def ratio(
        self, numerator: DistributionMethod, denominator: DistributionMethod
    ) -> float:
        """Address-computation cycle ratio between two methods."""
        return self.address_cycles(numerator) / self.address_cycles(denominator)
