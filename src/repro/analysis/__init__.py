"""Exact evaluation engine and cost models for the paper's section 5.

``histograms``
    Group-convolution machinery: per-device response histograms of partial
    match queries under any separable method, computed exactly without
    enumerating buckets.
``response``
    Average largest-response-size sweeps (Tables 7-9).
``optim_prob``
    Probability/percentage of strict optimality (Figures 1-4), both by the
    paper's sufficient conditions and exactly.
``cpu_cost``
    Instruction-cycle model of address computation (section 5.2.2).
``skew``
    Load-skew metrics beyond the paper's largest-response-size.
``ascii_chart``
    Dependency-free chart rendering for the report.
"""

from repro.analysis.adversary import AdversarialBox, load_factor, worst_box_search
from repro.analysis.availability import (
    count_survivable_sets,
    expected_degraded_load_factor,
    survivable,
    survival_probability,
)
from repro.analysis.ascii_chart import render_chart, render_series
from repro.analysis.box import (
    box_is_strict_optimal,
    box_largest_response,
    box_qualified_on_device,
    box_response_histogram,
)
from repro.analysis.cpu_cost import CYCLE_TABLES, CpuCostModel, InstructionCosts
from repro.analysis.histograms import (
    PatternEvaluator,
    cyclic_convolve,
    pattern_histogram,
    separable_response_histogram,
    xor_convolve,
)
from repro.analysis.optim_prob import (
    exact_optimality_series,
    optimal_pattern_fraction,
    sufficient_optimality_series,
)
from repro.analysis.query_model import IndependenceModel, QueryModel
from repro.analysis.skew import (
    SkewSummary,
    expected_largest_response,
    expected_load_factor,
    gini,
    skew_summary,
    static_balance,
)
from repro.analysis.response import (
    ResponseTable,
    average_largest_response,
    largest_response_table,
    optimal_largest_response,
)

__all__ = [
    "PatternEvaluator",
    "xor_convolve",
    "cyclic_convolve",
    "pattern_histogram",
    "separable_response_histogram",
    "average_largest_response",
    "optimal_largest_response",
    "largest_response_table",
    "ResponseTable",
    "optimal_pattern_fraction",
    "sufficient_optimality_series",
    "exact_optimality_series",
    "CpuCostModel",
    "InstructionCosts",
    "CYCLE_TABLES",
    "AdversarialBox",
    "survivable",
    "survival_probability",
    "count_survivable_sets",
    "expected_degraded_load_factor",
    "worst_box_search",
    "load_factor",
    "box_response_histogram",
    "box_largest_response",
    "box_is_strict_optimal",
    "box_qualified_on_device",
    "render_chart",
    "render_series",
    "QueryModel",
    "IndependenceModel",
    "SkewSummary",
    "skew_summary",
    "expected_largest_response",
    "expected_load_factor",
    "static_balance",
    "gini",
]
