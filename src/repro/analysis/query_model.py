"""Query models: probability distributions over specification patterns.

The paper's evaluation assumes one query model — every field independently
specified with probability ``p`` — and every closed-form expectation in
:mod:`repro.analysis.skew` was historically hard-wired to it.  Closing the
adaptive-declustering loop (ROADMAP item 3) needs a second model: the
*observed* pattern distribution a :class:`~repro.obs.QueryMixProfile`
records.  This module defines the small interface both share:

* :class:`QueryModel` — ``pattern_weight`` (probability of one unspecified
  set) plus ``patterns`` (the support, in a deterministic order), and
* :class:`IndependenceModel` — the paper's model, delegating to
  :func:`repro.analysis.optim_prob.pattern_probability`.

The empirical counterpart lives in :mod:`repro.adaptive.bridge`
(:class:`~repro.adaptive.EmpiricalQueryModel`), built from observed
indicator patterns; both plug into
:func:`~repro.analysis.skew.expected_largest_response` and
:func:`~repro.analysis.skew.expected_load_factor` via their ``model=``
argument.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterator

from repro.query.patterns import SpecPattern, all_patterns

__all__ = ["QueryModel", "IndependenceModel"]


class QueryModel(ABC):
    """A probability distribution over the ``2**n`` specification patterns.

    Weights are expected to sum to 1 over :meth:`patterns` (the analysis
    functions do not renormalise); a model may put zero weight on most
    patterns, in which case :meth:`patterns` should enumerate only the
    support so sweeps stay proportional to it.
    """

    @abstractmethod
    def pattern_weight(self, pattern: SpecPattern, n_fields: int) -> float:
        """Probability of a query having *pattern* as its unspecified set."""

    @abstractmethod
    def patterns(self, n_fields: int) -> Iterator[SpecPattern]:
        """The model's support, in a deterministic order."""

    def describe(self) -> str:
        """Human-readable one-liner for reports."""
        return type(self).__name__


class IndependenceModel(QueryModel):
    """The paper's model: each field specified independently with prob. *p*.

    >>> model = IndependenceModel(0.5)
    >>> model.pattern_weight(frozenset({0}), 2)
    0.25
    """

    def __init__(self, p: float = 0.5):
        # Validation happens in pattern_probability on first use as well,
        # but failing at construction gives the better error site.
        from repro.analysis.optim_prob import pattern_probability

        pattern_probability(frozenset(), 1, p)
        self.p = p

    def pattern_weight(self, pattern: SpecPattern, n_fields: int) -> float:
        from repro.analysis.optim_prob import pattern_probability

        return pattern_probability(pattern, n_fields, self.p)

    def patterns(self, n_fields: int) -> Iterator[SpecPattern]:
        return all_patterns(n_fields)

    def describe(self) -> str:
        return f"independence(p={self.p})"
