"""ASCII line charts for the report (no plotting dependencies offline).

Renders an :class:`~repro.analysis.optim_prob.OptimalitySeries` — or any
set of named numeric series over shared x values — as a fixed-size ASCII
grid, so EXPERIMENTS.md can carry a visual of Figures 1-4 alongside the
numeric tables.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.errors import AnalysisError

__all__ = ["render_chart", "render_series"]

#: Marker characters assigned to series in declaration order.
_MARKERS = "*o+x#@"


def render_chart(
    x_values: Sequence[int],
    series: Mapping[str, Sequence[float]],
    height: int = 16,
    y_min: float | None = None,
    y_max: float | None = None,
    y_label: str = "",
) -> str:
    """Plot the named *series* over *x_values* as ASCII.

    Each x value gets one column (spaced); collisions print the marker of
    the later series.  Returns a multi-line string ending with a legend.
    """
    if height < 4:
        raise AnalysisError("chart height must be at least 4")
    if not series:
        raise AnalysisError("nothing to plot")
    for name, values in series.items():
        if len(values) != len(x_values):
            raise AnalysisError(
                f"series {name!r} has {len(values)} points for "
                f"{len(x_values)} x values"
            )
    if len(series) > len(_MARKERS):
        raise AnalysisError(f"at most {len(_MARKERS)} series supported")

    all_values = [v for values in series.values() for v in values]
    low = min(all_values) if y_min is None else y_min
    high = max(all_values) if y_max is None else y_max
    if high == low:
        high = low + 1.0

    col_width = 4
    width = col_width * len(x_values)
    grid = [[" "] * width for __ in range(height)]

    def row_of(value: float) -> int:
        scaled = (value - low) / (high - low)
        return min(height - 1, max(0, round((height - 1) * (1.0 - scaled))))

    for marker, (name, values) in zip(_MARKERS, series.items()):
        for i, value in enumerate(values):
            grid[row_of(value)][i * col_width + 1] = marker

    lines = []
    for r, row in enumerate(grid):
        if r == 0:
            label = f"{high:7.1f} |"
        elif r == height - 1:
            label = f"{low:7.1f} |"
        else:
            label = "        |"
        lines.append(label + "".join(row).rstrip())
    axis = "        +" + "-" * width
    lines.append(axis)
    ticks = "         "
    for x in x_values:
        ticks += str(x).ljust(col_width)
    lines.append(ticks.rstrip())
    legend = "   ".join(
        f"{marker} {name}" for marker, name in zip(_MARKERS, series.keys())
    )
    if y_label:
        legend = f"{y_label};  {legend}"
    lines.append("        " + legend)
    return "\n".join(lines)


def render_series(optimality_series, height: int = 16) -> str:
    """Convenience wrapper for an OptimalitySeries (0-100% y range)."""
    return render_chart(
        optimality_series.x,
        optimality_series.series,
        height=height,
        y_min=0.0,
        y_max=100.0,
        y_label="% strict optimal",
    )
