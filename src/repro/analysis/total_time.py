"""End-to-end response-time synthesis (sections 5.2.1 + 5.2.2 combined).

The paper analyses the two response-time components separately: the largest
response size (dominant on parallel disks) and the CPU cycles of address
computation / inverse mapping (dominant in main-memory databases).  This
module combines them into one modelled number per query class::

    T(q) = address_cycles                      # route the query once
         + inverse_steps(q) * inverse_cycles   # each device solves its share
         + largest_response(q) * bucket_cycles # local retrieval, in parallel

with every term priced in processor cycles and the per-device work taken at
the *most loaded* device (symmetric interconnect, as in section 5.2.1).
``inverse_steps`` is the enumeration count of the algebraic inverse mapping:
``|R(q)| / F_solved`` with the largest unspecified field solved.

The combined table makes the paper's qualitative argument quantitative: for
main-memory systems, GDM pays its multiply on *every* inverse-mapping step,
so its CPU gap versus FX grows with the response size rather than staying a
fixed per-query constant.
"""

from __future__ import annotations

import math
from collections.abc import Mapping

from repro.analysis.cpu_cost import CpuCostModel
from repro.analysis.histograms import evaluator_for
from repro.distribution.base import DistributionMethod, SeparableMethod
from repro.errors import AnalysisError
from repro.hashing.fields import FileSystem
from repro.query.patterns import patterns_with_k_unspecified
from repro.util.tables import format_table

__all__ = ["TotalTimeModel", "total_time_table"]

#: Local per-bucket retrieval cost (hash probe + copy), in cycles.  The
#: comparison is insensitive to the exact value; it is shared by all
#: methods.
DEFAULT_BUCKET_CYCLES = 40.0


class TotalTimeModel:
    """Cycles-per-query model for one method on one processor."""

    def __init__(
        self,
        method: DistributionMethod,
        cpu: CpuCostModel | None = None,
        bucket_cycles: float = DEFAULT_BUCKET_CYCLES,
    ):
        if not isinstance(method, SeparableMethod):
            raise AnalysisError(
                "total-time model needs a separable method (exact histogram "
                "and algebraic inverse mapping)"
            )
        self.method = method
        self.cpu = cpu or CpuCostModel.for_processor("mc68000")
        self.bucket_cycles = bucket_cycles

    def inverse_steps(self, pattern: frozenset[int]) -> int:
        """Enumeration count of inverse mapping for one pattern.

        The solver enumerates all unspecified fields but the largest one
        (see :mod:`repro.core.inverse`).
        """
        sizes = self.method.filesystem.field_sizes
        fields = sorted(pattern)
        if not fields:
            return 1
        qualified = math.prod(sizes[i] for i in fields)
        solved = max(sizes[i] for i in fields)
        return qualified // solved

    def query_cycles(self, pattern: frozenset[int]) -> float:
        """Modelled cycles for one query with the given pattern."""
        evaluator = evaluator_for(self.method)
        largest = evaluator.largest_response(pattern)
        return (
            self.cpu.address_cycles(self.method)
            + self.inverse_steps(pattern) * self.cpu.inverse_step_cycles(self.method)
            + largest * self.bucket_cycles
        )

    def average_cycles(self, k: int) -> float:
        """Average modelled cycles over all patterns with *k* unspecified."""
        fs = self.method.filesystem
        total = 0.0
        count = 0
        for pattern in patterns_with_k_unspecified(fs.n_fields, k):
            total += self.query_cycles(pattern)
            count += 1
        return total / count


def total_time_table(
    filesystem: FileSystem,
    methods: Mapping[str, DistributionMethod],
    ks: tuple[int, ...] = (1, 2, 3, 4),
    processor: str = "mc68000",
    bucket_cycles: float = DEFAULT_BUCKET_CYCLES,
) -> str:
    """Render the combined response-time comparison as a text table."""
    cpu = CpuCostModel.for_processor(processor)
    models = {
        name: TotalTimeModel(method, cpu=cpu, bucket_cycles=bucket_cycles)
        for name, method in methods.items()
    }
    rows = []
    for k in ks:
        row: list[object] = [k]
        for model in models.values():
            row.append(round(model.average_cycles(k)))
        rows.append(row)
    return format_table(
        ["k unspecified", *models.keys()],
        rows,
        title=(
            f"Modelled cycles per query on {cpu.costs.name} "
            f"({filesystem.describe()})"
        ),
    )
